//! `hfast-analyze` — capture and analyze communication traces.
//!
//! The offline workflow the paper used (profile on the production machine,
//! analyze later), as a CLI:
//!
//! ```text
//! hfast-analyze capture <app> <procs> <trace-file>   # run a kernel, save trace
//! hfast-analyze report <trace-file>                  # analyze a saved trace
//! hfast-analyze apps                                 # list available kernels
//! ```

use std::process::ExitCode;

use hfast::apps::{all_apps, profile_app};
use hfast::core::{
    classify, ClassifyConfig, CostComparison, CostModel, PaperLinear, ProvisionConfig, Provisioner,
};
use hfast::ipm::{from_text, render, to_text};
use hfast::topology::render_ascii;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hfast-analyze capture <app> <procs> <trace-file>\n  \
         hfast-analyze report <trace-file>\n  hfast-analyze apps"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("apps") => {
            for app in all_apps() {
                let m = app.meta();
                println!("{:<9} {} ({})", m.name, m.problem, m.discipline);
            }
            ExitCode::SUCCESS
        }
        Some("capture") => {
            let [_, name, procs, path] = args.as_slice() else {
                return usage();
            };
            let Ok(procs) = procs.parse::<usize>() else {
                eprintln!("invalid processor count {procs:?}");
                return ExitCode::from(2);
            };
            if procs == 0 || procs > 4096 {
                eprintln!("processor count must be between 1 and 4096, got {procs}");
                return ExitCode::from(2);
            }
            let Some(app) = all_apps()
                .into_iter()
                .find(|a| a.name().eq_ignore_ascii_case(name))
            else {
                eprintln!("unknown app {name:?}; try `hfast-analyze apps`");
                return ExitCode::from(2);
            };
            let outcome = match profile_app(app.as_ref(), procs) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("profiled run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(path, to_text(&outcome.steady)) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "captured {} at P={procs}: {} calls → {path}",
                outcome.name,
                outcome.steady.total_calls()
            );
            ExitCode::SUCCESS
        }
        Some("report") => {
            let [_, path] = args.as_slice() else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let profile = match from_text(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", render(path, &profile));
            let graph = profile.comm_graph();
            println!("\nvolume matrix:");
            print!("{}", render_ascii(&graph, graph.n().div_ceil(48).max(1)));
            let verdict = classify(&graph, &ClassifyConfig::default());
            println!("\nclassification: {} — {}", verdict.case, verdict.rationale);
            println!("prescription:   {}", verdict.case.prescription());
            let prov = PaperLinear.provision(&graph, ProvisionConfig::default());
            let cmp = CostComparison::of(&prov, &CostModel::default());
            println!(
                "\nHFAST provisioning: {} blocks, {:.0} packet ports/node, \
                 cost ratio vs fat tree {:.2}",
                prov.total_blocks(),
                prov.block_ports_per_node(),
                cmp.ratio()
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
