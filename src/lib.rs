//! # hfast — Hybrid Flexibly Assignable Switch Topology
//!
//! Facade crate for the HFAST reproduction (Shalf, Kamil, Oliker, Skinner,
//! SC|05): re-exports the whole workspace under one roof so the examples and
//! downstream users can depend on a single crate.
//!
//! * [`mpi`] — threaded message-passing runtime with an MPI-like API.
//! * [`ipm`] — IPM-style low-overhead communication profiling layer.
//! * [`apps`] — communication kernels of the six studied applications.
//! * [`topology`] — communication graphs, TDC analysis, thresholding.
//! * [`core`] — the HFAST architecture: switches, provisioning, cost models.
//! * [`netsim`] — discrete-event simulator for fat-tree/torus/HFAST fabrics.
//! * [`obs`] — zero-dependency observability: counters, histograms, traces,
//!   and the `HFAST_OBS` JSON Lines export switch.
//! * [`trace`] — causal span tracing across ranks and fabric links, Perfetto
//!   export, and congestion analysis behind the `HFAST_TRACE` switch.

#![warn(missing_docs)]

pub use hfast_apps as apps;
pub use hfast_core as core;
pub use hfast_ipm as ipm;
pub use hfast_mpi as mpi;
pub use hfast_netsim as netsim;
pub use hfast_obs as obs;
pub use hfast_topology as topology;
pub use hfast_trace as trace;
