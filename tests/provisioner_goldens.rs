//! PR-7 regression pins: `PaperLinear` behind the `Provisioner` trait must
//! be bit-identical to the pre-refactor `Provisioning::per_node` path on
//! every study application's steady-state graph, and both must match the
//! PR-6 digests recorded when the trait was introduced (the same table
//! `provision_bakeoff --check` enforces).

use hfast::apps::{all_apps, profile_app};
use hfast::core::{PaperLinear, ProvisionConfig, Provisioner, Provisioning};

/// `Provisioning::digest()` of the paper heuristic on each app at P = 64,
/// default config, recorded at the PR-6/PR-7 boundary.
const GOLDENS: &[(&str, u64)] = &[
    ("Cactus", 0x7c73906c2ec77bdd),
    ("LBMHD", 0x2278b65cc94b773d),
    ("GTC", 0xdaf434118fd5579d),
    ("SuperLU", 0x732ece61ea5fef5d),
    ("PMEMD", 0x70d56ff85bbe06f6),
    ("PARATEC", 0x70d56ff85bbe06f6),
];

#[test]
fn paper_linear_is_bit_identical_on_all_six_apps() {
    for app in &all_apps() {
        let outcome = profile_app(app.as_ref(), 64).expect("profiles at 64 ranks");
        let graph = outcome.steady.comm_graph();
        let via_trait = PaperLinear.provision(&graph, ProvisionConfig::default());
        #[allow(deprecated)]
        let pre_refactor = Provisioning::per_node(&graph, ProvisionConfig::default());
        assert_eq!(
            via_trait.digest(),
            pre_refactor.digest(),
            "{}: trait vs pre-refactor shim",
            app.name()
        );
        let golden = GOLDENS
            .iter()
            .find(|(n, _)| *n == app.name())
            .unwrap_or_else(|| panic!("{} missing from golden table", app.name()))
            .1;
        assert_eq!(via_trait.digest(), golden, "{}: PR-6 golden", app.name());
    }
}
