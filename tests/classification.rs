//! Integration: the §5.2 per-application analysis — each code lands in the
//! case the paper assigns it, and the §2.5 hypothesis checks out.

use hfast::apps::{profile_app, Cactus, CommKernel, Gtc, Lbmhd, Paratec, Pmemd, SuperLu};
use hfast::core::{classify, CaseClass, ClassifyConfig, PaperLinear, ProvisionConfig, Provisioner};
use hfast::topology::{detect_structure, StructureClass, BDP_CUTOFF};

fn class_of(app: &dyn CommKernel, procs: usize) -> CaseClass {
    let out = profile_app(app, procs).expect("profiled run");
    classify(&out.steady.comm_graph(), &ClassifyConfig::default()).case
}

#[test]
fn cactus_is_case_i() {
    // "Cactus displays a bounded TDC independent of run size, with a
    // communication topology that isomorphically maps to a regular mesh."
    assert_eq!(class_of(&Cactus::new(2), 64), CaseClass::CaseI);
    let out = profile_app(&Cactus::new(2), 64).unwrap();
    assert_eq!(
        detect_structure(&out.steady.comm_graph(), BDP_CUTOFF),
        StructureClass::Mesh3D(4, 4, 4)
    );
}

#[test]
fn lbmhd_is_case_ii() {
    // "LBMHD also displays a low degree of connectivity, but … the
    // structure is not isomorphic to a regular mesh."
    assert_eq!(class_of(&Lbmhd::new(2), 64), CaseClass::CaseII);
    let out = profile_app(&Lbmhd::new(2), 64).unwrap();
    assert_eq!(
        detect_structure(&out.steady.comm_graph(), BDP_CUTOFF),
        StructureClass::Irregular
    );
}

#[test]
fn gtc_is_case_iii_at_scale() {
    // "GTC … has a maximum TDC that is quite higher than the average due to
    // important connections that are not isomorphic to a mesh."
    assert_eq!(class_of(&Gtc::default(), 256), CaseClass::CaseIII);
}

#[test]
fn superlu_is_case_iii() {
    // TDC scales with √P: bounded well below P but above one switch block.
    assert_eq!(class_of(&SuperLu::default(), 256), CaseClass::CaseIII);
}

#[test]
fn pmemd_is_case_iii_at_scale() {
    // Max TDC stays at P while the average is bounded — the flagship case
    // for flexibly assignable switch blocks.
    assert_eq!(class_of(&Pmemd::new(1), 256), CaseClass::CaseIII);
}

#[test]
fn paratec_is_case_iv() {
    // "PARATEC is an example where the HFAST solution is inappropriate."
    assert_eq!(class_of(&Paratec::new(1), 64), CaseClass::CaseIV);
}

#[test]
fn hypothesis_summary_holds() {
    // §5.2's conclusion: "only one of the six codes … maps isomorphically
    // to a 3D mesh (case i). Only one … fully utilizes the FCN (case iv).
    // The preponderance of codes can benefit from an adaptive network."
    let verdicts = [
        class_of(&Cactus::new(2), 64),
        class_of(&Lbmhd::new(2), 64),
        class_of(&Gtc::default(), 256),
        class_of(&SuperLu::default(), 256),
        class_of(&Pmemd::new(1), 256),
        class_of(&Paratec::new(1), 64),
    ];
    let count = |c: CaseClass| verdicts.iter().filter(|&&v| v == c).count();
    assert_eq!(count(CaseClass::CaseI), 1);
    assert_eq!(count(CaseClass::CaseIV), 1);
    assert_eq!(
        count(CaseClass::CaseII) + count(CaseClass::CaseIII),
        4,
        "four of six codes want an adaptive interconnect"
    );
}

#[test]
fn provisioning_handles_every_study_app() {
    // §5's bottom line: HFAST can be provisioned for every code (even
    // case iv, albeit uneconomically).
    let apps: Vec<Box<dyn CommKernel>> = vec![
        Box::new(Cactus::new(2)),
        Box::new(Lbmhd::new(2)),
        Box::new(Gtc::default()),
        Box::new(SuperLu::default()),
        Box::new(Pmemd::new(1)),
        Box::new(Paratec::new(1)),
    ];
    for app in apps {
        let out = profile_app(app.as_ref(), 64).expect("profiled run");
        let g = out.steady.comm_graph();
        let prov = PaperLinear.provision(&g, ProvisionConfig::default());
        prov.validate(&g)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
    }
}
