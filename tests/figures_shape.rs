//! Integration: shape assertions for the paper's figures that are not
//! single-number tables — buffer-size CDFs (Figures 3-4) and the
//! thresholding curves (Figures 5-10).

use hfast::apps::{all_apps, profile_app, Gtc, Paratec, SuperLu};
use hfast::topology::{tdc_sweep, BufferHistogram, BDP_CUTOFF, PAPER_CUTOFFS};

#[test]
fn figure3_collective_buffers_are_small() {
    // "about 90% of the collective messages are 2 KB or less … almost half
    // of all collective calls use buffers less than 100 bytes."
    let mut combined = BufferHistogram::new();
    for app in all_apps() {
        let out = profile_app(app.as_ref(), 64).expect("profiled run");
        combined.merge(&out.steady.collective_buffer_histogram());
    }
    let at_2k = combined.fraction_at_or_below(2048);
    assert!(
        at_2k >= 0.9,
        "Figure 3: ≥90% ≤ 2KB, got {:.1}%",
        100.0 * at_2k
    );
    let at_100 = combined.fraction_at_or_below(100);
    assert!(
        at_100 >= 0.4,
        "Figure 3: roughly half < 100 B, got {:.1}%",
        100.0 * at_100
    );
}

#[test]
fn figure4_ptp_buffers_span_wide_range() {
    // "unlike collectives, point-to-point messaging uses a wide range of
    // buffers, as well as large message sizes."
    let mut large_seen = false;
    for app in all_apps() {
        let out = profile_app(app.as_ref(), 64).expect("profiled run");
        let hist = out.steady.ptp_buffer_histogram();
        if hist.max().unwrap_or(0) >= (100 << 10) {
            large_seen = true;
        }
    }
    assert!(large_seen, "some codes move ≥100 KB point-to-point buffers");
}

#[test]
fn figure5_gtc_curves() {
    // GTC P=256: max drops 17 → 10 across the 2 KB cutoff; the curves are
    // non-increasing in the cutoff.
    let out = profile_app(&Gtc::default(), 256).expect("profiled run");
    let g = out.steady.comm_graph();
    let sweep = tdc_sweep(&g, &PAPER_CUTOFFS);
    assert!(sweep.windows(2).all(|w| w[1].1.max <= w[0].1.max));
    let at = |cutoff: u64| {
        sweep
            .iter()
            .find(|(c, _)| *c == cutoff)
            .expect("cutoff in sweep")
            .1
    };
    assert_eq!(at(0).max, 17);
    assert_eq!(at(512).max, 17, "512 B bookkeeping still counted at 512");
    assert_eq!(at(BDP_CUTOFF).max, 10);
    assert_eq!(at(8 << 10).max, 2, "only the 128 KB ring above 4 KB");
}

#[test]
fn figure8_superlu_sqrt_p_scaling() {
    // Thresholded TDC ∝ √P: 6 at 16, 14 at 64, 30 at 256.
    let mut measured = vec![];
    for procs in [16usize, 64, 256] {
        let out = profile_app(&SuperLu::default(), procs).expect("profiled run");
        let g = out.steady.comm_graph();
        measured.push(hfast::topology::tdc(&g, BDP_CUTOFF).max);
    }
    assert_eq!(measured, vec![6, 14, 30]);
    for (i, procs) in [16usize, 64, 256].iter().enumerate() {
        let sqrt_p = (*procs as f64).sqrt() as usize;
        assert_eq!(measured[i], 2 * (sqrt_p - 1));
    }
}

#[test]
fn figure10_paratec_insensitive_below_32k() {
    // "Only with a relatively large message size cutoff of 32 KB do we see
    // any reduction in the number of communicating partners."
    let out = profile_app(&Paratec::new(1), 64).expect("profiled run");
    let g = out.steady.comm_graph();
    let sweep = tdc_sweep(&g, &PAPER_CUTOFFS);
    for (cutoff, s) in &sweep {
        if *cutoff <= 32 << 10 {
            assert_eq!(s.max, 63, "no reduction at cutoff {cutoff}");
        }
    }
    let above = sweep
        .iter()
        .find(|(c, _)| *c == 64 << 10)
        .expect("64k in sweep")
        .1;
    assert!(above.max < 63, "reduction appears above 32 KB");
}

#[test]
fn thresholding_never_increases_tdc_for_any_app() {
    for app in all_apps() {
        let out = profile_app(app.as_ref(), 64).expect("profiled run");
        let g = out.steady.comm_graph();
        let sweep = tdc_sweep(&g, &PAPER_CUTOFFS);
        for w in sweep.windows(2) {
            assert!(
                w[1].1.max <= w[0].1.max && w[1].1.avg <= w[0].1.avg + 1e-12,
                "{}: TDC must be monotone in the cutoff",
                app.name()
            );
        }
    }
}
