//! Integration: the profiling pipeline is deterministic.
//!
//! Thread scheduling varies between runs, but the *messaging statistics* —
//! call counts, buffer sizes, volume matrices — must not: every number the
//! reproduction reports has to be reproducible bit-for-bit (timing fields
//! excluded, which is why profiles are compared through their reduced
//! views rather than raw call durations).

use hfast::apps::{all_apps, profile_app, CommKernel, Synthetic};
use hfast::ipm::CommProfile;

/// Aggregated (call name, buffer size, count) entries.
type CallFingerprint = Vec<(String, u64, u64)>;
/// Directed (src, dst, bytes, count, max_msg) volume entries.
type VolumeFingerprint = Vec<(usize, usize, u64, u64, u64)>;

/// The schedule-independent reduction of a profile.
fn fingerprint(p: &CommProfile) -> (CallFingerprint, VolumeFingerprint) {
    let mut entries: Vec<(String, u64, u64)> = p
        .entries
        .iter()
        .filter(|e| !e.kind.is_transport())
        .map(|e| (e.kind.mpi_name().to_string(), e.bytes, e.stats.count))
        .collect();
    entries.sort();
    let n = p.size;
    let volume: Vec<(usize, usize, u64, u64, u64)> = p
        .api_volume
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_active())
        .map(|(i, s)| (i / n, i % n, s.bytes, s.count, s.max_msg))
        .collect();
    (entries, volume)
}

fn assert_deterministic(app: &dyn CommKernel, procs: usize) {
    let a = profile_app(app, procs).expect("first run");
    let b = profile_app(app, procs).expect("second run");
    assert_eq!(
        fingerprint(&a.steady),
        fingerprint(&b.steady),
        "{} at P={procs} must produce identical messaging statistics",
        app.name()
    );
}

#[test]
fn all_study_apps_are_deterministic_at_p16() {
    for app in all_apps() {
        assert_deterministic(app.as_ref(), 16);
    }
}

#[test]
fn cactus_deterministic_at_p64() {
    assert_deterministic(&hfast::apps::Cactus::new(4), 64);
}

#[test]
fn synthetic_deterministic_across_runs_and_seeds() {
    assert_deterministic(&Synthetic::new(11, 4, 8192), 16);
    // Different seeds produce different topologies.
    let a = profile_app(&Synthetic::new(1, 4, 8192), 16).unwrap();
    let b = profile_app(&Synthetic::new(2, 4, 8192), 16).unwrap();
    assert_ne!(
        fingerprint(&a.steady).1,
        fingerprint(&b.steady).1,
        "seeds must matter"
    );
}
