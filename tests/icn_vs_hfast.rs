//! Integration: the paper's §2.2/§2.5 comparison between the
//! bounded-degree ICN and HFAST, on the measured application topologies.
//!
//! "Of these codes, if the maximum TDC is bounded by a low degree, then
//! bounded-degree approaches such as ICN will be sufficient. For
//! applications where the average TDC is bounded by a small number, while
//! the maximum TDC is arbitrarily large, the more flexible HFAST approach
//! to allocating packet-switch resources is warranted."

use hfast::apps::{profile_app, Gtc, Lbmhd, Pmemd};
use hfast::core::{icn_embed, IcnConfig, IcnError, PaperLinear, ProvisionConfig, Provisioner};

#[test]
fn lbmhd_fits_the_bounded_degree_icn() {
    // Case ii: uniform degree 12 < k = 16 → ICN suffices.
    let out = profile_app(&Lbmhd::new(2), 64).expect("profiled run");
    let g = out.steady.comm_graph();
    let emb = icn_embed(&g, &IcnConfig::default()).expect("case-ii code embeds");
    assert!(emb.blocks > 0);
    // HFAST of course handles it too.
    PaperLinear
        .provision(&g, ProvisionConfig::default())
        .validate(&g)
        .unwrap();
}

#[test]
fn gtc_leaders_overflow_the_icn_but_not_hfast() {
    // Case iii at P=256: leader max TDC 17 (unthresholded) exceeds k = 16.
    let out = profile_app(&Gtc::default(), 256).expect("profiled run");
    let g = out.steady.comm_graph();
    let err = icn_embed(
        &g,
        &IcnConfig {
            block_size: 16,
            cutoff: 0,
        },
    )
    .unwrap_err();
    assert!(matches!(err, IcnError::DegreeOverflow { degree: 17, .. }));
    // HFAST assigns the leaders extra blocks and routes everything.
    let prov = PaperLinear.provision(
        &g,
        ProvisionConfig {
            block_ports: 16,
            cutoff: 0,
        },
    );
    prov.validate(&g).unwrap();
    let leader_cluster = &prov.clusters[prov.node_cluster[0]];
    assert!(
        leader_cluster.blocks.len() >= 2,
        "high-TDC leader gets a block chain"
    );
}

#[test]
fn pmemd_overflows_any_practical_icn() {
    // Case iii: max TDC = P−1 after thresholding — no fixed block size
    // short of P accommodates the hot rank.
    let out = profile_app(&Pmemd::new(1), 64).expect("profiled run");
    let g = out.steady.comm_graph();
    for k in [8usize, 16, 32] {
        assert!(
            icn_embed(
                &g,
                &IcnConfig {
                    block_size: k,
                    cutoff: 2048
                }
            )
            .is_err(),
            "k = {k} must overflow"
        );
    }
    // HFAST provisions it with chained blocks.
    let prov = PaperLinear.provision(&g, ProvisionConfig::default());
    prov.validate(&g).unwrap();
    assert!(prov.total_blocks() > 64, "block trees for degree-63 nodes");
}
