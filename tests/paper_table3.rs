//! Integration: reproduce paper Table 3 at both study sizes.
//!
//! These tests assert the *published* numbers (TDC at the 2 KB cutoff,
//! call-bucket split, median buffer sizes) against the measured profiles of
//! the six calibrated kernels — the core quantitative claim of the
//! reproduction.

use hfast::apps::{profile_app, Cactus, CommKernel, Gtc, Lbmhd, Paratec, Pmemd, SuperLu};
use hfast::ipm::CommProfile;
use hfast::topology::{tdc, BDP_CUTOFF};

struct Expect {
    procs: usize,
    tdc_max: usize,
    tdc_avg: f64,
    avg_tol: f64,
    ptp_pct: f64,
    ptp_tol: f64,
    median_ptp: u64,
    median_col: u64,
}

fn check(app: &dyn CommKernel, e: &Expect) {
    let out = profile_app(app, e.procs).expect("profiled run");
    let steady: &CommProfile = &out.steady;
    let g = steady.comm_graph();
    let cut = tdc(&g, BDP_CUTOFF);
    assert_eq!(
        cut.max,
        e.tdc_max,
        "{} P={}: TDC max (paper {})",
        app.name(),
        e.procs,
        e.tdc_max
    );
    assert!(
        (cut.avg - e.tdc_avg).abs() <= e.avg_tol,
        "{} P={}: TDC avg {:.2} vs paper {:.1}",
        app.name(),
        e.procs,
        cut.avg,
        e.tdc_avg
    );
    let ptp = 100.0 * steady.ptp_call_fraction();
    assert!(
        (ptp - e.ptp_pct).abs() <= e.ptp_tol,
        "{} P={}: %PTP {:.1} vs paper {:.1}",
        app.name(),
        e.procs,
        ptp,
        e.ptp_pct
    );
    assert_eq!(
        steady.ptp_buffer_histogram().median().unwrap_or(0),
        e.median_ptp,
        "{} P={}: median PTP buffer",
        app.name(),
        e.procs
    );
    assert_eq!(
        steady.collective_buffer_histogram().median().unwrap_or(0),
        e.median_col,
        "{} P={}: median collective buffer",
        app.name(),
        e.procs
    );
    assert_eq!(steady.overflow, 0, "profile must not overflow");
}

#[test]
fn cactus_64() {
    check(
        &Cactus::default(),
        &Expect {
            procs: 64,
            tdc_max: 6,
            tdc_avg: 5.0,
            avg_tol: 0.6, // 4x4x4 mesh averages 4.5; the paper rounds to 5
            ptp_pct: 99.4,
            ptp_tol: 0.5,
            median_ptp: 300 << 10,
            median_col: 8,
        },
    );
}

#[test]
fn cactus_256() {
    check(
        &Cactus::default(),
        &Expect {
            procs: 256,
            tdc_max: 6,
            tdc_avg: 5.0,
            avg_tol: 0.3, // 4x8x8 mesh averages exactly 5.0
            ptp_pct: 99.5,
            ptp_tol: 0.5,
            median_ptp: 300 << 10,
            median_col: 8,
        },
    );
}

#[test]
fn lbmhd_64() {
    check(
        &Lbmhd::default(),
        &Expect {
            procs: 64,
            tdc_max: 12,
            tdc_avg: 11.5,
            avg_tol: 0.6,
            ptp_pct: 99.8,
            ptp_tol: 0.3,
            median_ptp: 811 << 10,
            median_col: 8,
        },
    );
}

#[test]
fn lbmhd_256() {
    check(
        &Lbmhd::default(),
        &Expect {
            procs: 256,
            tdc_max: 12,
            tdc_avg: 11.8,
            avg_tol: 0.4,
            ptp_pct: 99.9,
            ptp_tol: 0.3,
            median_ptp: 848 << 10,
            median_col: 8,
        },
    );
}

#[test]
fn gtc_64() {
    check(
        &Gtc::default(),
        &Expect {
            procs: 64,
            tdc_max: 2,
            tdc_avg: 2.0,
            avg_tol: 0.01,
            ptp_pct: 42.0,
            ptp_tol: 2.0,
            median_ptp: 128 << 10,
            median_col: 100,
        },
    );
}

#[test]
fn gtc_256() {
    check(
        &Gtc::default(),
        &Expect {
            procs: 256,
            tdc_max: 10,
            tdc_avg: 4.0,
            avg_tol: 0.2,
            ptp_pct: 40.2,
            ptp_tol: 4.0,
            median_ptp: 128 << 10,
            median_col: 100,
        },
    );
}

#[test]
fn gtc_256_unthresholded_max_is_17() {
    let out = profile_app(&Gtc::default(), 256).expect("profiled run");
    let g = out.steady.comm_graph();
    assert_eq!(tdc(&g, 0).max, 17, "paper: max TDC 17 before the cutoff");
}

#[test]
fn superlu_64() {
    check(
        &SuperLu::default(),
        &Expect {
            procs: 64,
            tdc_max: 14,
            tdc_avg: 14.0,
            avg_tol: 0.01,
            ptp_pct: 89.8,
            ptp_tol: 3.0,
            median_ptp: 64,
            median_col: 24,
        },
    );
}

#[test]
fn superlu_256() {
    check(
        &SuperLu::default(),
        &Expect {
            procs: 256,
            tdc_max: 30,
            tdc_avg: 30.0,
            avg_tol: 0.01,
            ptp_pct: 92.8,
            ptp_tol: 4.0,
            median_ptp: 48,
            median_col: 24,
        },
    );
}

#[test]
fn superlu_unthresholded_connectivity_scales_with_p() {
    for procs in [64usize, 256] {
        let out = profile_app(&SuperLu::default(), procs).expect("profiled run");
        let g = out.steady.comm_graph();
        assert_eq!(
            tdc(&g, 0).max,
            procs - 1,
            "paper: connectivity equals P without thresholding"
        );
    }
}

#[test]
fn pmemd_64() {
    check(
        &Pmemd::new(1),
        &Expect {
            procs: 64,
            tdc_max: 63,
            tdc_avg: 63.0,
            avg_tol: 0.01,
            ptp_pct: 99.1,
            ptp_tol: 1.5,
            median_ptp: 4662, // paper rounds to "6k"; decay model gives ~4.7k
            median_col: 768,
        },
    );
}

#[test]
fn pmemd_256() {
    let out = profile_app(&Pmemd::new(1), 256).expect("profiled run");
    let g = out.steady.comm_graph();
    let cut = tdc(&g, BDP_CUTOFF);
    assert_eq!(cut.max, 255, "paper: hot rank keeps max TDC at 255");
    assert!(
        (cut.avg - 55.0).abs() < 2.5,
        "paper: avg TDC ≈ 55, got {:.1}",
        cut.avg
    );
    assert_eq!(
        out.steady.ptp_buffer_histogram().median(),
        Some(72),
        "paper: 72 B median at P=256"
    );
}

#[test]
fn paratec_64() {
    check(
        &Paratec::new(1),
        &Expect {
            procs: 64,
            tdc_max: 63,
            tdc_avg: 63.0,
            avg_tol: 0.01,
            ptp_pct: 99.5,
            ptp_tol: 0.5,
            median_ptp: 64,
            median_col: 8,
        },
    );
}

#[test]
fn paratec_256() {
    let out = profile_app(&Paratec::new(1), 256).expect("profiled run");
    let steady = &out.steady;
    let g = steady.comm_graph();
    // Insensitive to thresholding up to 32 KB (paper Figure 10).
    for cutoff in [0u64, BDP_CUTOFF, 32 << 10] {
        let s = tdc(&g, cutoff);
        assert_eq!((s.max, s.min), (255, 255), "cutoff {cutoff}");
    }
    assert_eq!(steady.ptp_buffer_histogram().median(), Some(64));
}
