//! End-to-end tests of the `hfast-analyze` CLI through a real process
//! boundary (the surface a user scripts against).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // Cargo builds test binaries into target/<profile>/deps; the CLI binary
    // lives one level up.
    let mut path = std::env::current_exe().expect("test executable path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.join("hfast-analyze")
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn hfast-analyze");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage() {
    let (code, _out, err) = run(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("usage"));
}

#[test]
fn apps_lists_all_six() {
    let (code, out, _) = run(&["apps"]);
    assert_eq!(code, 0);
    for app in ["Cactus", "LBMHD", "GTC", "SuperLU", "PMEMD", "PARATEC"] {
        assert!(out.contains(app), "missing {app} in:\n{out}");
    }
}

#[test]
fn capture_and_report_roundtrip() {
    let dir = std::env::temp_dir().join(format!("hfast-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("cactus.trace");
    let trace_str = trace.to_str().unwrap();

    let (code, out, err) = run(&["capture", "cactus", "27", trace_str]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("captured Cactus at P=27"));
    assert!(trace.exists());

    let (code, out, _) = run(&["report", trace_str]);
    assert_eq!(code, 0);
    assert!(out.contains("IPM profile"));
    assert!(out.contains("TDC @ 2k cutoff: max 6"), "{out}");
    assert!(out.contains("classification: case i"));
    assert!(out.contains("HFAST provisioning: 27 blocks"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (code, _, err) = run(&["capture", "nosuchapp", "8", "/tmp/x"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown app"));

    let (code, _, err) = run(&["capture", "cactus", "0", "/tmp/x"]);
    assert_eq!(code, 2);
    assert!(err.contains("between 1 and 4096"));

    let (code, _, err) = run(&["report", "/definitely/not/a/file"]);
    assert_eq!(code, 1);
    assert!(err.contains("cannot read"));

    let dir = std::env::temp_dir();
    let garbage = dir.join(format!("hfast-garbage-{}.trace", std::process::id()));
    std::fs::write(&garbage, "not a trace\n").unwrap();
    let (code, _, err) = run(&["report", garbage.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(err.contains("cannot parse"));
    std::fs::remove_file(&garbage).ok();
}
