//! Integration: the full cross-crate pipeline — profile an application,
//! persist and reload the trace, build the topology, provision HFAST, and
//! replay the traffic in the network simulator.

use hfast::apps::{profile_app, Lbmhd};
use hfast::core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast::ipm::{from_text, to_text};
use hfast::netsim::{traffic, Fabric, FatTreeFabric, HfastFabric, Simulation};
use hfast::topology::{tdc, BDP_CUTOFF};

#[test]
fn profile_to_simulation_pipeline() {
    // 1. Profile.
    let outcome = profile_app(&Lbmhd::new(4), 64).expect("profiled run");

    // 2. Persist and reload the profile (the offline-analysis workflow).
    let text = to_text(&outcome.steady);
    let reloaded = from_text(&text).expect("roundtrip");
    assert_eq!(reloaded, outcome.steady);

    // 3. Topology analysis on the reloaded profile.
    let graph = reloaded.comm_graph();
    let summary = tdc(&graph, BDP_CUTOFF);
    assert_eq!(summary.max, 12);

    // 4. Provision and validate.
    let prov = PaperLinear.provision(&graph, ProvisionConfig::default());
    prov.validate(&graph).expect("all hot edges provisioned");
    assert_eq!(prov.total_blocks(), 64, "TDC 12 < 15: one block per node");

    // 5. Replay on the provisioned fabric and on a fat tree.
    let flows = traffic::flows_from_graph(&graph, BDP_CUTOFF);
    assert_eq!(flows.len(), 64 * 12, "12 partners each, both directions");
    let hfast = HfastFabric::new(prov);
    let stats = Simulation::new(&hfast).run(&flows).stats;
    assert_eq!(stats.unrouted, 0, "every hot flow has a dedicated circuit");
    assert_eq!(stats.completed, flows.len());
    assert_eq!(stats.avg_hops, 3.0, "constant-depth paths");

    let ft = FatTreeFabric::new(64, 8).expect("valid shape");
    let ft_stats = Simulation::new(&ft).run(&flows).stats;
    assert_eq!(ft_stats.completed, flows.len());
    assert!(
        ft_stats.avg_hops > stats.avg_hops,
        "the scattered pattern forces the fat tree through multiple layers"
    );
}

#[test]
fn wire_graph_replay_includes_collective_transport() {
    // The wire graph carries collective-internal flows; the PTP graph does
    // not. Replaying the wire graph must produce at least as much traffic.
    let outcome = profile_app(&Lbmhd::new(16), 16).expect("profiled run");
    let ptp_flows = traffic::flows_from_graph(&outcome.steady.comm_graph(), 0);
    let wire_flows = traffic::flows_from_graph(&outcome.steady.wire_graph(), 0);
    assert!(wire_flows.len() >= ptp_flows.len());
}

#[test]
fn fabric_trait_objects_interoperate() {
    let outcome = profile_app(&Lbmhd::new(2), 16).expect("profiled run");
    let graph = outcome.steady.comm_graph();
    let flows = traffic::flows_from_graph(&graph, BDP_CUTOFF);
    let fabrics: Vec<Box<dyn Fabric>> = vec![
        Box::new(FatTreeFabric::new(16, 8).expect("valid shape")),
        Box::new(HfastFabric::new(
            PaperLinear.provision(&graph, ProvisionConfig::default()),
        )),
    ];
    for fabric in fabrics {
        let stats = Simulation::new(fabric.as_ref()).run(&flows).stats;
        assert_eq!(stats.completed, flows.len(), "{}", fabric.name());
    }
}
