//! Integration: the single-pass multi-cutoff TDC sweep produces numbers
//! identical to independent per-cutoff `tdc()` calls on every study
//! application's measured communication graph (the data behind Figures
//! 5-10's (b) panels).

use hfast::apps::{all_apps, profile_app};
use hfast::topology::{tdc, tdc_sweep, tdc_sweep_csr, CsrGraph, PAPER_CUTOFFS};

#[test]
fn sweep_matches_independent_tdc_on_every_app_graph() {
    for app in all_apps() {
        let outcome = profile_app(app.as_ref(), 64).expect("profile");
        let graph = outcome.steady.comm_graph();
        let sweep = tdc_sweep(&graph, &PAPER_CUTOFFS);
        let csr_sweep = tdc_sweep_csr(&CsrGraph::from_graph(&graph, 0), &PAPER_CUTOFFS);
        assert_eq!(sweep.len(), PAPER_CUTOFFS.len());
        assert_eq!(
            sweep,
            csr_sweep,
            "{}: CSR and dense sweeps agree",
            app.name()
        );
        for (&cutoff, (swept_cutoff, summary)) in PAPER_CUTOFFS.iter().zip(&sweep) {
            assert_eq!(cutoff, *swept_cutoff);
            assert_eq!(
                *summary,
                tdc(&graph, cutoff),
                "{} at cutoff {cutoff}",
                app.name()
            );
        }
    }
}
