//! Span records, causal contexts, and the shared recorder.
//!
//! A [`SpanContext`] is the four-word stamp that rides inside an
//! `hfast-mpi` message envelope: trace id, span id, parent span id, and a
//! Lamport logical clock. Every id derives from logical clocks — rank
//! counters on the MPI side, the event-loop sequence on the simulator
//! side — so identical runs produce identical traces regardless of
//! wall-clock or thread scheduling.
//!
//! Spans from different subsystems land in one [`TraceRecorder`] keyed by
//! [`Track`]: rank timelines, per-link timelines, and the engine/reconfig
//! control tracks. The Perfetto exporter turns each track into a thread
//! row; the analyzer folds the link tracks into congestion timelines.

use std::sync::Mutex;

/// Bit marking engine-allocated span ids; rank ids never set it.
pub const ENGINE_SPAN_BASE: u64 = 1 << 63;

/// Bit marking server-allocated span ids (daemon request spans); disjoint
/// from both the engine bit and the rank id range.
pub const SERVER_SPAN_BASE: u64 = 1 << 62;

/// Span id for the `counter`-th span opened by `rank`.
///
/// Rank ids live in `[(rank+1) << 32, (rank+2) << 32)`; two ranks can
/// never collide and the zero id is reserved for "no parent".
#[inline]
pub fn rank_span_id(rank: usize, counter: u64) -> u64 {
    ((rank as u64 + 1) << 32) | (counter & 0xFFFF_FFFF)
}

/// Span id for the `counter`-th span allocated by the (single-threaded)
/// simulator event loop or reconfig engine. Disjoint from every rank id.
#[inline]
pub fn engine_span_id(counter: u64) -> u64 {
    ENGINE_SPAN_BASE | counter
}

/// Span id for the `counter`-th span allocated by a serving daemon
/// (request / parse / execute / respond spans). Disjoint from engine ids
/// (bit 63 unset) and from rank ids (ranks would need to exceed 2³⁰).
#[inline]
pub fn server_span_id(counter: u64) -> u64 {
    SERVER_SPAN_BASE | (counter & (SERVER_SPAN_BASE - 1))
}

/// Bit marking fleet-router span ids; disjoint from the engine, server,
/// and client bases so the stitcher can tell which process family
/// allocated an id without any side table.
pub const ROUTER_SPAN_BASE: u64 = 1 << 61;

/// Bit marking fleet-client root span ids (the origin of a cross-process
/// trace); disjoint from every other base.
pub const CLIENT_SPAN_BASE: u64 = 1 << 60;

/// Span id for the `counter`-th span allocated by a fleet router.
#[inline]
pub fn router_span_id(counter: u64) -> u64 {
    ROUTER_SPAN_BASE | (counter & (CLIENT_SPAN_BASE - 1))
}

/// Span id for the `counter`-th root span originated by a fleet client.
#[inline]
pub fn client_span_id(counter: u64) -> u64 {
    CLIENT_SPAN_BASE | (counter & (CLIENT_SPAN_BASE - 1))
}

/// The compact causal stamp a fleet request carries across process
/// boundaries, riding in the v2 wire envelope as
/// `{"v":2,"trace":{"id":…,"parent":…},…}`.
///
/// Unlike the in-process [`SpanContext`] there is no Lamport clock: each
/// process times its own spans on its own monotonic clock, and the
/// stitcher groups them by process rather than merging clocks. Only
/// identity (which trace) and causality (which remote span to parent
/// under) cross the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace this request belongs to (the fleet client's root span id).
    pub trace_id: u64,
    /// Span in the sending process the receiver should parent under.
    pub parent_id: u64,
}

impl TraceContext {
    /// The context a receiver should forward after recording `span_id`
    /// as its own child span: same trace, deeper parent.
    pub fn deepen(&self, span_id: u64) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            parent_id: span_id,
        }
    }
}

/// The causal stamp carried inside a message envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace this span belongs to (one per world/simulation run).
    pub trace_id: u64,
    /// This span's id (see [`rank_span_id`] / [`engine_span_id`]).
    pub span_id: u64,
    /// Parent span id, 0 for roots.
    pub parent_id: u64,
    /// Lamport clock: send increments, recv takes `max(local, stamp) + 1`.
    pub clock: u64,
}

impl SpanContext {
    /// A root context (no parent) at logical time `clock`.
    pub fn root(trace_id: u64, span_id: u64, clock: u64) -> Self {
        SpanContext {
            trace_id,
            span_id,
            parent_id: 0,
            clock,
        }
    }

    /// A child of `self` with a fresh span id at logical time `clock`.
    pub fn child(&self, span_id: u64, clock: u64) -> Self {
        SpanContext {
            trace_id: self.trace_id,
            span_id,
            parent_id: self.span_id,
            clock,
        }
    }
}

/// The timeline a span renders on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// One per MPI rank thread.
    Rank(usize),
    /// One per fabric link (simulator hop spans).
    Link(usize),
    /// The simulator event loop (flow lifecycles, fault instants).
    Engine,
    /// The reconfiguration engine (sync points, repatches).
    Reconfig,
    /// One per serving-daemon connection (request lifecycle spans).
    Server(usize),
    /// The fleet client originating cross-process root spans.
    Client,
    /// One per fleet-router client connection (routing spans).
    Router(usize),
}

/// One closed span (or instant, when `dur_ns == 0`) on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Timeline this span belongs to.
    pub track: Track,
    /// Span name (`send`, `recv`, `flow`, `hop`, ...).
    pub name: &'static str,
    /// Start, nanoseconds on the track's clock (MPI: monotonic-per-world
    /// microstep derived from logical clocks; simulator: virtual time).
    pub t_ns: u64,
    /// Duration; 0 marks an instant annotation.
    pub dur_ns: u64,
    /// This span's id (0 allowed for pure annotations).
    pub span_id: u64,
    /// Causal parent's span id, 0 for roots.
    pub parent_id: u64,
    /// Numeric payload fields (kept numeric for determinism and size).
    pub fields: Vec<(&'static str, u64)>,
}

/// Thread-safe, unbounded collector of [`SpanRecord`]s for one run.
///
/// Unbounded on purpose: unlike the `hfast-obs` ring (an always-on
/// low-cost monitor), the recorder only exists when `HFAST_TRACE` asked
/// for a full capture, and the exporters need every span to reconstruct
/// causality. Recording is a mutex push; contention is irrelevant next to
/// the channel send it piggybacks on.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Appends one span record.
    pub fn record(&self, span: SpanRecord) {
        self.spans
            .lock()
            .expect("trace recorder poisoned")
            .push(span);
    }

    /// Appends a span built from parts.
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        track: Track,
        name: &'static str,
        t_ns: u64,
        dur_ns: u64,
        span_id: u64,
        parent_id: u64,
        fields: Vec<(&'static str, u64)>,
    ) {
        self.record(SpanRecord {
            track,
            name,
            t_ns,
            dur_ns,
            span_id,
            parent_id,
            fields,
        });
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace recorder poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out all spans in a deterministic order: sorted by
    /// `(track, t_ns, span_id, name)`. Recording order depends on thread
    /// interleaving; the sort restores the determinism contract for
    /// exports.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut spans = self.spans.lock().expect("trace recorder poisoned").clone();
        spans.sort_by(|a, b| {
            (a.track, a.t_ns, a.span_id, a.name).cmp(&(b.track, b.t_ns, b.span_id, b.name))
        });
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_id_spaces_are_disjoint() {
        let rank_ids: Vec<u64> = (0..8).map(|r| rank_span_id(r, 5)).collect();
        for (i, &a) in rank_ids.iter().enumerate() {
            assert_ne!(a, 0);
            assert_eq!(a & ENGINE_SPAN_BASE, 0, "rank ids never set the engine bit");
            for &b in &rank_ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_ne!(engine_span_id(5), rank_span_id(0, 5));
        assert_eq!(engine_span_id(7) & ENGINE_SPAN_BASE, ENGINE_SPAN_BASE);
        assert_ne!(server_span_id(5), engine_span_id(5));
        assert_ne!(server_span_id(5), rank_span_id(0, 5));
        assert_eq!(server_span_id(9) & ENGINE_SPAN_BASE, 0);
        assert_eq!(server_span_id(9) & SERVER_SPAN_BASE, SERVER_SPAN_BASE);
        let all = [
            rank_span_id(0, 5),
            engine_span_id(5),
            server_span_id(5),
            router_span_id(5),
            client_span_id(5),
        ];
        for (i, &a) in all.iter().enumerate() {
            for &b in &all[i + 1..] {
                assert_ne!(a, b, "span id spaces overlap");
            }
        }
        assert_eq!(router_span_id(3) & ROUTER_SPAN_BASE, ROUTER_SPAN_BASE);
        assert_eq!(client_span_id(3) & CLIENT_SPAN_BASE, CLIENT_SPAN_BASE);
    }

    #[test]
    fn trace_context_deepens_without_changing_trace() {
        let ctx = TraceContext {
            trace_id: client_span_id(1),
            parent_id: client_span_id(1),
        };
        let next = ctx.deepen(router_span_id(1));
        assert_eq!(next.trace_id, ctx.trace_id);
        assert_eq!(next.parent_id, router_span_id(1));
    }

    #[test]
    fn context_child_links_parent() {
        let root = SpanContext::root(9, rank_span_id(0, 1), 1);
        let child = root.child(rank_span_id(1, 1), 4);
        assert_eq!(child.trace_id, 9);
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(child.clock, 4);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let rec = TraceRecorder::new();
        rec.record_span(Track::Link(3), "hop", 10, 5, 2, 1, vec![]);
        rec.record_span(Track::Rank(0), "send", 20, 5, 1, 0, vec![("bytes", 64)]);
        rec.record_span(Track::Rank(0), "send", 5, 5, 3, 0, vec![]);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].t_ns, 5, "rank track first, time-ordered");
        assert_eq!(snap[1].t_ns, 20);
        assert_eq!(snap[2].track, Track::Link(3));
        assert_eq!(rec.snapshot(), snap, "snapshot is reproducible");
    }
}
