//! # hfast-trace — causal span tracing across ranks and fabric
//!
//! `hfast-obs` (PR 2) answers *how much* — counters, histograms,
//! aggregate timelines. This crate answers *why a particular flow was
//! slow*: a [`SpanContext`] stamped into every `hfast-mpi` message
//! envelope links each recv/wait span to the send that caused it across
//! rank threads; the `hfast-netsim` engine opens child spans for each
//! flow's lifecycle (per-link hops with queueing delay, fault kills,
//! retries, repatches); `hfast-core::reconfig` sync points emit spans
//! tying circuit changes to the flows they reroute. Everything lands in
//! one [`TraceRecorder`] and pays off twice:
//!
//! * [`perfetto::export`] — a Chrome trace-event JSON document (open in
//!   Perfetto or `chrome://tracing`) with ranks, links, and the
//!   engine/reconfig control flow as tracks, plus flow arrows on the
//!   causal edges; [`flame::aggregate`] folds the same spans into
//!   flamegraph-style self/total times per call kind.
//! * [`analyzer`] — per-link congestion folding (busy/wait totals, peak
//!   queue depth, utilization and queue-depth timelines) behind the
//!   `hotspots` bin's hotspot ranking.
//!
//! ## The `HFAST_TRACE` switch
//!
//! Mirrors `HFAST_OBS`: off by default, probed once, a relaxed atomic
//! load afterwards — the disabled path at a stamp site is one load and a
//! branch.
//!
//! | `HFAST_TRACE`          | behaviour                                    |
//! |------------------------|----------------------------------------------|
//! | unset, empty, `0`      | disabled (no stamps, no spans, no output)    |
//! | `1`, `true`, `stderr`  | enabled; exports write to stderr             |
//! | anything else          | enabled; treated as a path, JSON written     |
//!
//! ## Determinism
//!
//! Span ids derive from logical clocks — per-rank send counters and the
//! simulator's event sequence — never wall-clock or a global RNG, so two
//! identical runs produce identical traces. Exports never touch stdout:
//! experiment output stays byte-identical across `HFAST_THREADS` settings
//! with tracing on or off.

#![warn(missing_docs)]

pub mod analyzer;
pub mod flame;
pub mod json;
pub mod perfetto;
pub mod span;
pub mod stitch;

pub use analyzer::{
    congestion_trees, queue_depth_timeline, rank_hotspots, utilization_spread,
    utilization_timeline, CongestionTree, LinkLoad, UtilizationSpread,
};
pub use flame::{aggregate, CallAgg};
pub use json::{parse, JsonValue};
pub use perfetto::{export, validate, TraceStats};
pub use span::{
    client_span_id, engine_span_id, rank_span_id, router_span_id, server_span_id, SpanContext,
    SpanRecord, TraceContext, TraceRecorder, Track, CLIENT_SPAN_BASE, ENGINE_SPAN_BASE,
    ROUTER_SPAN_BASE, SERVER_SPAN_BASE,
};
pub use stitch::{render_jsonl, stitch, trace_tree, StitchStats, TreeStats};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = not yet probed, 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True if causal tracing is switched on via `HFAST_TRACE`.
///
/// The environment is consulted once per process; afterwards this is a
/// relaxed atomic load, cheap enough for the per-message stamp sites.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = switch_is_on(std::env::var("HFAST_TRACE").ok().as_deref());
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Pure parser behind [`enabled`]: is this `HFAST_TRACE` value "on"?
pub fn switch_is_on(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
    }
}

/// Writes an exported trace document to the destination `HFAST_TRACE`
/// names: stderr for `1`/`true`/`stderr`, otherwise the value is a file
/// path (overwritten — a trace is one document, not an appendable log).
/// No-op when tracing is disabled. Never writes to stdout.
pub fn write_to_env_sink(document: &str) {
    if !enabled() {
        return;
    }
    match std::env::var("HFAST_TRACE").ok().as_deref().map(str::trim) {
        Some("1") | Some("true") | Some("stderr") => {
            eprint!("{document}");
        }
        Some(path) if !path.is_empty() && path != "0" => {
            if let Err(e) = std::fs::write(path, document) {
                eprintln!("hfast-trace: cannot write {path}: {e}");
            }
        }
        _ => {}
    }
}

/// Exports a process's spans to the `HFAST_TRACE` destination in the
/// format its extension asks for: a path ending in `.jsonl` gets the
/// [`stitch::render_jsonl`] interchange (for cross-process stitching by
/// `fleet_trace`), anything else the single-process Perfetto document.
/// No-op when tracing is disabled.
pub fn export_to_env_sink(process: &str, spans: &[span::SpanRecord]) {
    if !enabled() {
        return;
    }
    let wants_jsonl = matches!(
        std::env::var("HFAST_TRACE").ok().as_deref().map(str::trim),
        Some(p) if p.ends_with(".jsonl")
    );
    let doc = if wants_jsonl {
        stitch::render_jsonl(process, spans)
    } else {
        perfetto::export(spans)
    };
    write_to_env_sink(&doc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_parsing() {
        assert!(!switch_is_on(None));
        assert!(!switch_is_on(Some("")));
        assert!(!switch_is_on(Some("  ")));
        assert!(!switch_is_on(Some("0")));
        assert!(switch_is_on(Some("1")));
        assert!(switch_is_on(Some("true")));
        assert!(switch_is_on(Some("stderr")));
        assert!(switch_is_on(Some("/tmp/trace.json")));
    }

    #[test]
    fn enabled_is_stable_across_calls() {
        let first = enabled();
        for _ in 0..100 {
            assert_eq!(enabled(), first);
        }
    }

    #[test]
    fn spans_to_perfetto_end_to_end() {
        let rec = TraceRecorder::new();
        let send = rank_span_id(0, 1);
        rec.record_span(Track::Rank(0), "send", 0, 10, send, 0, vec![("bytes", 8)]);
        rec.record_span(
            Track::Rank(1),
            "recv",
            5,
            10,
            rank_span_id(1, 1),
            send,
            vec![("bytes", 8)],
        );
        let doc = export(&rec.snapshot());
        let stats = validate(&doc).unwrap();
        assert_eq!(stats.rank_tracks, 2);
        assert_eq!(stats.orphan_recvs, 0);
    }
}
