//! Flamegraph-style self/total aggregation per span name.
//!
//! Spans on one track nest by interval containment (a `hop` inside its
//! `flow`, a `wait` inside a collective). Folding them gives the classic
//! flamegraph numbers: *total* time (span durations summed) and *self*
//! time (total minus time spent in nested child spans on the same track),
//! per span name across all tracks.

use std::collections::BTreeMap;

use crate::span::SpanRecord;

/// Aggregated self/total times for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallAgg {
    /// Span name.
    pub name: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Sum of durations.
    pub total_ns: u64,
    /// Sum of durations minus nested same-track child time.
    pub self_ns: u64,
}

/// Folds spans into per-name self/total aggregates, sorted by descending
/// total time (name breaks ties).
///
/// Nesting is inferred per track from interval containment: while the
/// stack top ends at or before the next span starts it is popped; the
/// remaining top, if any, is the parent and loses the child's duration
/// from its self time. Instants (`dur_ns == 0`) are ignored.
pub fn aggregate(spans: &[SpanRecord]) -> Vec<CallAgg> {
    // Group span indices per track.
    let mut by_track: BTreeMap<_, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.dur_ns > 0 {
            by_track.entry(s.track).or_default().push(i);
        }
    }

    let mut agg: BTreeMap<&'static str, CallAgg> = BTreeMap::new();
    for (_, mut idxs) in by_track {
        // Earlier start first; at equal starts the longer span encloses.
        idxs.sort_by_key(|&i| (spans[i].t_ns, u64::MAX - spans[i].dur_ns));
        let mut child_time: Vec<u64> = vec![0; idxs.len()];
        let mut stack: Vec<usize> = Vec::new(); // indices into idxs
        for pos in 0..idxs.len() {
            let s = &spans[idxs[pos]];
            while let Some(&top) = stack.last() {
                let t = &spans[idxs[top]];
                if t.t_ns + t.dur_ns <= s.t_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&parent) = stack.last() {
                child_time[parent] += s.dur_ns;
            }
            stack.push(pos);
        }
        for (pos, &i) in idxs.iter().enumerate() {
            let s = &spans[i];
            let e = agg.entry(s.name).or_insert(CallAgg {
                name: s.name,
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            e.count += 1;
            e.total_ns += s.dur_ns;
            e.self_ns += s.dur_ns.saturating_sub(child_time[pos]);
        }
    }

    let mut out: Vec<CallAgg> = agg.into_values().collect();
    out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Track;

    fn span(track: Track, name: &'static str, t: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            track,
            name,
            t_ns: t,
            dur_ns: dur,
            span_id: 0,
            parent_id: 0,
            fields: vec![],
        }
    }

    #[test]
    fn nested_child_subtracts_from_parent_self() {
        let spans = vec![
            span(Track::Rank(0), "allreduce", 0, 100),
            span(Track::Rank(0), "send", 10, 30),
            span(Track::Rank(0), "recv", 50, 20),
        ];
        let agg = aggregate(&spans);
        let all = agg.iter().find(|a| a.name == "allreduce").unwrap();
        assert_eq!(all.total_ns, 100);
        assert_eq!(all.self_ns, 50, "100 - 30 - 20");
        let send = agg.iter().find(|a| a.name == "send").unwrap();
        assert_eq!(send.self_ns, 30, "leaf keeps all its time");
        assert_eq!(agg[0].name, "allreduce", "sorted by total desc");
    }

    #[test]
    fn sibling_tracks_do_not_nest() {
        let spans = vec![
            span(Track::Rank(0), "send", 0, 100),
            span(Track::Rank(1), "recv", 10, 50),
        ];
        let agg = aggregate(&spans);
        let send = agg.iter().find(|a| a.name == "send").unwrap();
        assert_eq!(send.self_ns, 100, "other track's span is not a child");
    }

    #[test]
    fn back_to_back_spans_are_siblings() {
        let spans = vec![
            span(Track::Rank(0), "a", 0, 10),
            span(Track::Rank(0), "b", 10, 10),
        ];
        let agg = aggregate(&spans);
        for a in &agg {
            assert_eq!(a.self_ns, a.total_ns);
        }
    }

    #[test]
    fn instants_are_ignored() {
        let spans = vec![
            span(Track::Rank(0), "send", 0, 10),
            span(Track::Rank(0), "fault", 5, 0),
        ];
        let agg = aggregate(&spans);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].name, "send");
        assert_eq!(agg[0].self_ns, 10);
    }
}
