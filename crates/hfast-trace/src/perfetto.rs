//! Chrome trace-event (Perfetto-loadable) JSON export.
//!
//! One run becomes one browsable timeline: ranks are threads of process 1,
//! fabric links threads of process 2, and the simulator/reconfig control
//! tracks threads of process 3. Spans emit as `ph:"X"` complete events
//! (timestamps in microseconds, as the format requires), instants as
//! `ph:"i"`, and cross-track causality (send → recv, flow → hop) as
//! `ph:"s"`/`ph:"f"` flow arrows so Perfetto draws the message edges.
//!
//! [`validate`] re-parses an exported document with the in-repo JSON
//! parser and checks the structural contract the acceptance criteria
//! name: valid JSON, at least one track per rank and per used link, and
//! no recv span without its send parent.

use std::collections::{BTreeMap, BTreeSet};

use hfast_obs::JsonObj;

use crate::json::{self, JsonValue};
use crate::span::{SpanRecord, Track};

/// `(pid, tid)` coordinates of a track in the exported document.
pub fn track_coords(track: Track) -> (u64, u64) {
    match track {
        Track::Rank(r) => (1, r as u64),
        Track::Link(l) => (2, l as u64),
        Track::Engine => (3, 0),
        Track::Reconfig => (3, 1),
        Track::Server(c) => (4, c as u64),
        Track::Client => (5, 0),
        Track::Router(c) => (6, c as u64),
    }
}

fn track_label(track: Track) -> String {
    match track {
        Track::Rank(r) => format!("rank {r}"),
        Track::Link(l) => format!("link {l}"),
        Track::Engine => "event loop".to_string(),
        Track::Reconfig => "reconfig".to_string(),
        Track::Server(c) => format!("conn {c}"),
        Track::Client => "client".to_string(),
        Track::Router(c) => format!("route {c}"),
    }
}

fn process_label(pid: u64) -> &'static str {
    match pid {
        1 => "ranks",
        2 => "links",
        4 => "server",
        5 => "client",
        6 => "router",
        _ => "engine",
    }
}

/// Microseconds with nanosecond precision, as trace-event `ts`/`dur`.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders spans as a complete Chrome trace-event JSON document.
///
/// Deterministic: the caller should pass a [`TraceRecorder::snapshot`]
/// (already sorted); this function adds no ordering of its own beyond
/// sorted metadata.
///
/// [`TraceRecorder::snapshot`]: crate::span::TraceRecorder::snapshot
pub fn export(spans: &[SpanRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len() * 2 + 16);

    // Metadata: name every process and track that appears.
    let tracks: BTreeSet<Track> = spans.iter().map(|s| s.track).collect();
    let pids: BTreeSet<u64> = tracks.iter().map(|&t| track_coords(t).0).collect();
    for pid in &pids {
        events.push(
            JsonObj::new()
                .str("ph", "M")
                .str("name", "process_name")
                .u64("pid", *pid)
                .u64("tid", 0)
                .raw(
                    "args",
                    &JsonObj::new().str("name", process_label(*pid)).finish(),
                )
                .finish(),
        );
    }
    for track in &tracks {
        let (pid, tid) = track_coords(*track);
        events.push(
            JsonObj::new()
                .str("ph", "M")
                .str("name", "thread_name")
                .u64("pid", pid)
                .u64("tid", tid)
                .raw(
                    "args",
                    &JsonObj::new().str("name", &track_label(*track)).finish(),
                )
                .finish(),
        );
    }

    // Span/instant events.
    let mut span_sites: BTreeMap<u64, (Track, u64)> = BTreeMap::new();
    for s in spans {
        if s.span_id != 0 {
            span_sites.entry(s.span_id).or_insert((s.track, s.t_ns));
        }
    }
    for s in spans {
        let (pid, tid) = track_coords(s.track);
        let mut args = JsonObj::new();
        if s.span_id != 0 {
            args = args.u64("span", s.span_id);
        }
        if s.parent_id != 0 {
            args = args.u64("parent", s.parent_id);
        }
        for (k, v) in &s.fields {
            args = args.u64(k, *v);
        }
        let mut obj = JsonObj::new()
            .str("ph", if s.dur_ns > 0 { "X" } else { "i" })
            .str("name", s.name)
            .str("cat", "hfast")
            .u64("pid", pid)
            .u64("tid", tid)
            .raw("ts", &us(s.t_ns));
        if s.dur_ns > 0 {
            obj = obj.raw("dur", &us(s.dur_ns));
        } else {
            obj = obj.str("s", "t");
        }
        events.push(obj.raw("args", &args.finish()).finish());

        // Causal arrow when the parent lives on another track.
        if s.parent_id != 0 && s.span_id != 0 {
            if let Some(&(ptrack, pts)) = span_sites.get(&s.parent_id) {
                if ptrack != s.track {
                    let (ppid, ptid) = track_coords(ptrack);
                    events.push(
                        JsonObj::new()
                            .str("ph", "s")
                            .str("name", "causal")
                            .str("cat", "causal")
                            .u64("id", s.span_id)
                            .u64("pid", ppid)
                            .u64("tid", ptid)
                            .raw("ts", &us(pts))
                            .finish(),
                    );
                    events.push(
                        JsonObj::new()
                            .str("ph", "f")
                            .str("bp", "e")
                            .str("name", "causal")
                            .str("cat", "causal")
                            .u64("id", s.span_id)
                            .u64("pid", pid)
                            .u64("tid", tid)
                            .raw("ts", &us(s.t_ns))
                            .finish(),
                    );
                }
            }
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(ev);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Structural statistics of an exported document, from [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Distinct rank tracks (process 1 threads with events).
    pub rank_tracks: usize,
    /// Distinct link tracks (process 2 threads with events).
    pub link_tracks: usize,
    /// Non-metadata events.
    pub events: usize,
    /// `recv`-family spans whose `parent` arg is present in the document.
    pub linked_recvs: usize,
    /// `recv`-family spans with no parent or a dangling parent id.
    pub orphan_recvs: usize,
}

/// Parses an exported document and checks the trace-event contract.
///
/// Errors on malformed JSON or a missing `traceEvents` array. A recv
/// counts as *linked* when its `args.parent` names a span id defined by
/// some other event in the document.
pub fn validate(document: &str) -> Result<TraceStats, String> {
    let root = json::parse(document)?;
    let events = root
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut span_ids: BTreeSet<u64> = BTreeSet::new();
    for ev in events {
        if let Some(id) = ev
            .get("args")
            .and_then(|a| a.get("span"))
            .and_then(JsonValue::as_u64)
        {
            span_ids.insert(id);
        }
    }

    let mut rank_tracks = BTreeSet::new();
    let mut link_tracks = BTreeSet::new();
    let mut stats = TraceStats {
        rank_tracks: 0,
        link_tracks: 0,
        events: 0,
        linked_recvs: 0,
        orphan_recvs: 0,
    };
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        if ph == "M" {
            continue;
        }
        stats.events += 1;
        let pid = ev.get("pid").and_then(JsonValue::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(JsonValue::as_u64).unwrap_or(0);
        match pid {
            1 => {
                rank_tracks.insert(tid);
            }
            2 => {
                link_tracks.insert(tid);
            }
            _ => {}
        }
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
        if matches!(name, "recv" | "wait" | "sendrecv_recv") {
            let parent = ev
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(JsonValue::as_u64);
            match parent {
                Some(p) if span_ids.contains(&p) => stats.linked_recvs += 1,
                _ => stats.orphan_recvs += 1,
            }
        }
    }
    stats.rank_tracks = rank_tracks.len();
    stats.link_tracks = link_tracks.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{rank_span_id, TraceRecorder};

    fn sample() -> Vec<SpanRecord> {
        let rec = TraceRecorder::new();
        let send = rank_span_id(0, 1);
        let recv = rank_span_id(1, 1);
        rec.record_span(
            Track::Rank(0),
            "send",
            100,
            50,
            send,
            0,
            vec![("bytes", 64)],
        );
        rec.record_span(
            Track::Rank(1),
            "recv",
            200,
            80,
            recv,
            send,
            vec![("bytes", 64)],
        );
        rec.record_span(Track::Link(7), "hop", 120, 30, 0, send, vec![("wait", 5)]);
        rec.record_span(Track::Engine, "fault", 150, 0, 0, 0, vec![("link", 7)]);
        rec.snapshot()
    }

    #[test]
    fn export_is_valid_and_complete() {
        let doc = export(&sample());
        let stats = validate(&doc).expect("valid trace JSON");
        assert_eq!(stats.rank_tracks, 2);
        assert_eq!(stats.link_tracks, 1);
        assert_eq!(stats.linked_recvs, 1);
        assert_eq!(stats.orphan_recvs, 0);
        assert!(stats.events >= 4);
        assert!(doc.contains(r#""ph":"s""#), "flow arrow start");
        assert!(doc.contains(r#""ph":"f""#), "flow arrow finish");
        assert!(doc.contains(r#""name":"rank 1""#), "thread metadata");
        assert!(doc.contains(r#""name":"links""#), "process metadata");
    }

    #[test]
    fn timestamps_are_microseconds() {
        let doc = export(&sample());
        // 100 ns → 0.100 µs.
        assert!(doc.contains(r#""ts":0.100"#), "ns→µs conversion: {doc}");
    }

    #[test]
    fn orphan_recv_is_counted() {
        let rec = TraceRecorder::new();
        rec.record_span(
            Track::Rank(0),
            "recv",
            10,
            5,
            rank_span_id(0, 1),
            999,
            vec![],
        );
        let stats = validate(&export(&rec.snapshot())).unwrap();
        assert_eq!(stats.orphan_recvs, 1);
        assert_eq!(stats.linked_recvs, 0);
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(export(&sample()), export(&sample()));
    }
}
