//! Cross-process trace stitching: many per-process span files, one
//! Perfetto document.
//!
//! A fleet request crosses at least three processes — client, router,
//! shard — and each records spans on its own [`TraceRecorder`] with its
//! own monotonic clock. Every process dumps its spans as JSON Lines
//! ([`render_jsonl`]: one header line naming the process, one line per
//! span); [`stitch`] merges any number of such files into a single
//! trace-event document with one Perfetto *process group* per input file
//! (client / router / shard-N), re-namespacing the only colliding id
//! space (every shard allocates from [`SERVER_SPAN_BASE`]) while leaving
//! the cross-process parent references — client- and router-space ids,
//! unique by construction — untouched. The causal chain the
//! `TraceContext` carried over the wire therefore survives the merge:
//! one request renders as one tree spanning every process it touched.
//!
//! Two encoding details keep ids exact end to end. Span ids carry their
//! allocator's base bit (up to 2⁶³), beyond the 53-bit integer range a
//! JSON number survives, so the JSONL interchange writes `span`/`parent`
//! as hex *strings*; and the stitched document renumbers every id into a
//! small dense range, so `args.span`/`args.parent` stay exact for any
//! consumer — including Perfetto's own JavaScript.
//!
//! [`TraceRecorder`]: crate::span::TraceRecorder

use std::collections::BTreeMap;

use hfast_obs::JsonObj;

use crate::json::{self, JsonValue};
use crate::span::{SpanRecord, Track, ENGINE_SPAN_BASE, SERVER_SPAN_BASE};

/// `(kind label, index)` of a track, the JSONL serialization of [`Track`].
fn track_parts(track: Track) -> (&'static str, u64) {
    match track {
        Track::Rank(r) => ("rank", r as u64),
        Track::Link(l) => ("link", l as u64),
        Track::Engine => ("engine", 0),
        Track::Reconfig => ("reconfig", 0),
        Track::Server(c) => ("server", c as u64),
        Track::Client => ("client", 0),
        Track::Router(c) => ("router", c as u64),
    }
}

fn kind_code(kind: &str) -> Option<u64> {
    Some(match kind {
        "rank" => 1,
        "link" => 2,
        "engine" => 3,
        "reconfig" => 4,
        "server" => 5,
        "client" => 6,
        "router" => 7,
        _ => return None,
    })
}

/// Renders one process's spans as the JSONL interchange [`stitch`]
/// consumes: a header line `{"process":"<label>"}` followed by one line
/// per span. Deterministic for a [`snapshot`]-ordered input. Field
/// values are emitted as plain numbers and should stay below 2⁵³; span
/// and parent ids are hex strings and cover the full `u64` range.
///
/// [`snapshot`]: crate::span::TraceRecorder::snapshot
pub fn render_jsonl(process: &str, spans: &[SpanRecord]) -> String {
    let mut out = JsonObj::new().str("process", process).finish();
    out.push('\n');
    for s in spans {
        let (kind, idx) = track_parts(s.track);
        let mut fields = JsonObj::new();
        for (k, v) in &s.fields {
            fields = fields.u64(k, *v);
        }
        out.push_str(
            &JsonObj::new()
                .str("track", kind)
                .u64("idx", idx)
                .str("name", s.name)
                .u64("t_ns", s.t_ns)
                .u64("dur_ns", s.dur_ns)
                .str("span", &format!("{:x}", s.span_id))
                .str("parent", &format!("{:x}", s.parent_id))
                .raw("fields", &fields.finish())
                .finish(),
        );
        out.push('\n');
    }
    out
}

/// One span parsed back out of the JSONL interchange, ids already
/// namespaced per input process.
struct StitchSpan {
    pid: u64,
    tid: u64,
    name: String,
    t_ns: u64,
    dur_ns: u64,
    span_id: u64,
    parent_id: u64,
    fields: Vec<(String, u64)>,
}

/// Structural statistics of a stitched document, from [`stitch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StitchStats {
    /// Input files merged (one Perfetto process group each).
    pub processes: usize,
    /// Non-metadata events emitted.
    pub events: usize,
    /// Spans with a non-zero id.
    pub spans: usize,
    /// Spans with no parent (tree roots).
    pub roots: usize,
    /// Spans whose parent id resolves nowhere in the merged document.
    pub orphans: usize,
}

/// Is this id in the per-shard server space that must be namespaced?
fn is_server_space(id: u64) -> bool {
    id & ENGINE_SPAN_BASE == 0 && id & SERVER_SPAN_BASE != 0
}

/// Namespaces a server-space id into process `pid`'s private range.
/// Client/router/rank/engine ids pass through untouched — they are the
/// cross-process parent references and must stay resolvable.
fn remap(id: u64, pid: u64) -> u64 {
    if is_server_space(id) {
        id | (pid << 48)
    } else {
        id
    }
}

fn need_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("span line missing u64 {key:?}"))
}

fn need_hex_id(v: &JsonValue, key: &str) -> Result<u64, String> {
    let s = v
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("span line missing hex {key:?}"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex id {s:?} for {key:?}: {e}"))
}

/// Merges per-process JSONL span files (in [`render_jsonl`] form) into
/// one validated Perfetto trace-event document.
///
/// Input order fixes process ids (first file → pid 1) — pass client,
/// router, shards for a stable layout. Returns the document plus its
/// [`StitchStats`]; errors on malformed input or if the merged document
/// fails to re-parse.
pub fn stitch(docs: &[&str]) -> Result<(String, StitchStats), String> {
    let mut labels: Vec<String> = Vec::with_capacity(docs.len());
    let mut spans: Vec<StitchSpan> = Vec::new();
    for (i, doc) in docs.iter().enumerate() {
        let pid = i as u64 + 1;
        let mut lines = doc.lines().filter(|l| !l.trim().is_empty());
        let header = json::parse(lines.next().ok_or("empty span file")?)?;
        labels.push(
            header
                .get("process")
                .and_then(JsonValue::as_str)
                .ok_or("span file missing process header")?
                .to_string(),
        );
        for line in lines {
            let v = json::parse(line)?;
            let kind = v
                .get("track")
                .and_then(JsonValue::as_str)
                .ok_or("span line missing track")?;
            let code = kind_code(kind).ok_or_else(|| format!("unknown track kind {kind:?}"))?;
            let idx = need_u64(&v, "idx")?;
            let mut fields = Vec::new();
            if let Some(JsonValue::Obj(pairs)) = v.get("fields") {
                for (k, fv) in pairs {
                    if let Some(n) = fv.as_u64() {
                        fields.push((k.clone(), n));
                    }
                }
            }
            spans.push(StitchSpan {
                pid,
                tid: (code << 24) | (idx & 0xFF_FFFF),
                name: v
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("span line missing name")?
                    .to_string(),
                t_ns: need_u64(&v, "t_ns")?,
                dur_ns: need_u64(&v, "dur_ns")?,
                span_id: remap(need_hex_id(&v, "span")?, pid),
                parent_id: remap(need_hex_id(&v, "parent")?, pid),
                fields,
            });
        }
    }

    // Dense renumbering: every distinct namespaced id becomes a small
    // integer (first-seen order, so the output is deterministic), and the
    // site map records where each id lives for parent resolution and
    // cross-track flow arrows.
    let mut dense: BTreeMap<u64, u64> = BTreeMap::new();
    let mut sites: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for s in &spans {
        if s.span_id != 0 {
            let next = dense.len() as u64 + 1;
            dense.entry(s.span_id).or_insert(next);
            sites.entry(s.span_id).or_insert((s.pid, s.tid, s.t_ns));
        }
    }

    let mut events: Vec<String> = Vec::with_capacity(spans.len() * 2 + docs.len() * 4);
    for (i, label) in labels.iter().enumerate() {
        events.push(
            JsonObj::new()
                .str("ph", "M")
                .str("name", "process_name")
                .u64("pid", i as u64 + 1)
                .u64("tid", 0)
                .raw("args", &JsonObj::new().str("name", label).finish())
                .finish(),
        );
    }
    let mut tracks: BTreeMap<(u64, u64), ()> = BTreeMap::new();
    for s in &spans {
        tracks.entry((s.pid, s.tid)).or_insert(());
    }
    for &(pid, tid) in tracks.keys() {
        events.push(
            JsonObj::new()
                .str("ph", "M")
                .str("name", "thread_name")
                .u64("pid", pid)
                .u64("tid", tid)
                .raw(
                    "args",
                    &JsonObj::new()
                        .str("name", &format!("track {tid:x}"))
                        .finish(),
                )
                .finish(),
        );
    }

    let mut stats = StitchStats {
        processes: docs.len(),
        events: 0,
        spans: 0,
        roots: 0,
        orphans: 0,
    };
    let us = |ns: u64| format!("{}.{:03}", ns / 1000, ns % 1000);
    for s in &spans {
        stats.events += 1;
        if s.span_id != 0 {
            stats.spans += 1;
            if s.parent_id == 0 {
                stats.roots += 1;
            }
        }
        if s.parent_id != 0 && !sites.contains_key(&s.parent_id) {
            stats.orphans += 1;
        }
        let mut args = JsonObj::new();
        if s.span_id != 0 {
            args = args.u64("span", dense[&s.span_id]);
        }
        if s.parent_id != 0 {
            // A dangling parent still gets a dense id: no span defines
            // it, so the reference stays visibly unresolved downstream.
            let next = dense.len() as u64 + 1;
            let p = *dense.entry(s.parent_id).or_insert(next);
            args = args.u64("parent", p);
        }
        for (k, v) in &s.fields {
            args = args.u64(k, *v);
        }
        let mut obj = JsonObj::new()
            .str("ph", if s.dur_ns > 0 { "X" } else { "i" })
            .str("name", &s.name)
            .str("cat", "hfast")
            .u64("pid", s.pid)
            .u64("tid", s.tid)
            .raw("ts", &us(s.t_ns));
        if s.dur_ns > 0 {
            obj = obj.raw("dur", &us(s.dur_ns));
        } else {
            obj = obj.str("s", "t");
        }
        events.push(obj.raw("args", &args.finish()).finish());

        if s.parent_id != 0 && s.span_id != 0 {
            if let Some(&(ppid, ptid, pts)) = sites.get(&s.parent_id) {
                if (ppid, ptid) != (s.pid, s.tid) {
                    events.push(
                        JsonObj::new()
                            .str("ph", "s")
                            .str("name", "causal")
                            .str("cat", "causal")
                            .u64("id", dense[&s.span_id])
                            .u64("pid", ppid)
                            .u64("tid", ptid)
                            .raw("ts", &us(pts))
                            .finish(),
                    );
                    events.push(
                        JsonObj::new()
                            .str("ph", "f")
                            .str("bp", "e")
                            .str("name", "causal")
                            .str("cat", "causal")
                            .u64("id", dense[&s.span_id])
                            .u64("pid", s.pid)
                            .u64("tid", s.tid)
                            .raw("ts", &us(s.t_ns))
                            .finish(),
                    );
                }
            }
        }
    }

    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(ev);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    json::parse(&out).map_err(|e| format!("stitched document invalid: {e}"))?;
    Ok((out, stats))
}

/// Connectivity of one trace inside a stitched document: the events whose
/// `args.trace` field names `trace_id`, checked as a forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Spans stamped with this trace id.
    pub spans: usize,
    /// Trace spans with no parent.
    pub roots: usize,
    /// Trace spans whose parent is not itself part of the trace.
    pub orphans: usize,
}

/// Checks that the spans of `trace_id` in a stitched `document` form
/// trees. `roots == 1 && orphans == 0` means one request rendered as a
/// single connected causal tree.
pub fn trace_tree(document: &str, trace_id: u64) -> Result<TreeStats, String> {
    let root = json::parse(document)?;
    let events = root
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut ids = std::collections::BTreeSet::new();
    let mut members: Vec<(u64, u64)> = Vec::new(); // (span, parent)
    for ev in events {
        let Some(args) = ev.get("args") else { continue };
        if args.get("trace").and_then(JsonValue::as_u64) != Some(trace_id) {
            continue;
        }
        let span = args.get("span").and_then(JsonValue::as_u64).unwrap_or(0);
        let parent = args.get("parent").and_then(JsonValue::as_u64).unwrap_or(0);
        if span != 0 {
            ids.insert(span);
        }
        members.push((span, parent));
    }
    let mut stats = TreeStats {
        spans: members.len(),
        roots: 0,
        orphans: 0,
    };
    for (_, parent) in &members {
        if *parent == 0 {
            stats.roots += 1;
        } else if !ids.contains(parent) {
            stats.orphans += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{client_span_id, router_span_id, server_span_id, TraceRecorder};

    /// Two shards that both allocate `server_span_id(1)`: without
    /// namespacing the merged document would cross their trees.
    #[test]
    fn stitch_namespaces_colliding_server_ids() {
        let trace = 1u64;
        let root = client_span_id(1);
        let client = TraceRecorder::new();
        client.record_span(
            Track::Client,
            "call",
            0,
            400,
            root,
            0,
            vec![("trace", trace)],
        );
        let router = TraceRecorder::new();
        let route = router_span_id(1);
        router.record_span(
            Track::Router(0),
            "route",
            10,
            300,
            route,
            root,
            vec![("trace", trace)],
        );
        let mk_shard = || {
            let rec = TraceRecorder::new();
            let req = server_span_id(1);
            rec.record_span(
                Track::Server(0),
                "request",
                20,
                200,
                req,
                route,
                vec![("trace", trace)],
            );
            rec.record_span(
                Track::Server(0),
                "execute",
                30,
                100,
                server_span_id(2),
                req,
                vec![("trace", trace)],
            );
            rec
        };
        let docs = [
            render_jsonl("client", &client.snapshot()),
            render_jsonl("router", &router.snapshot()),
            render_jsonl("shard-0", &mk_shard().snapshot()),
            render_jsonl("shard-1", &mk_shard().snapshot()),
        ];
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let (doc, stats) = stitch(&refs).expect("stitch");
        assert_eq!(stats.processes, 4);
        assert_eq!(stats.spans, 6);
        assert_eq!(stats.roots, 1, "only the client root is parentless");
        assert_eq!(stats.orphans, 0, "every parent resolves after remap");
        let tree = trace_tree(&doc, trace).unwrap();
        assert_eq!(tree.spans, 6);
        assert_eq!(tree.roots, 1);
        assert_eq!(tree.orphans, 0);
        assert!(doc.contains(r#""name":"shard-1""#), "process groups named");
        assert!(doc.contains(r#""ph":"s""#), "cross-process flow arrows");
    }

    #[test]
    fn ids_above_53_bits_survive_the_round_trip() {
        // A span id with the client base bit and low bits set cannot be
        // represented exactly as an f64; the hex-string interchange plus
        // dense renumbering must keep parent links exact anyway.
        let a = client_span_id(0xABCD_EF01);
        let b = client_span_id(0xABCD_EF02);
        let rec = TraceRecorder::new();
        rec.record_span(Track::Client, "call", 0, 10, a, 0, vec![]);
        rec.record_span(Track::Client, "call", 20, 10, b, a, vec![]);
        let doc = render_jsonl("client", &rec.snapshot());
        let (_, stats) = stitch(&[doc.as_str()]).unwrap();
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.roots, 1);
        assert_eq!(stats.orphans, 0, "near-identical big ids stay distinct");
    }

    #[test]
    fn jsonl_round_trip_is_lossless_enough_to_stitch() {
        let rec = TraceRecorder::new();
        rec.record_span(
            Track::Server(3),
            "request",
            5,
            10,
            server_span_id(1),
            0,
            vec![],
        );
        let doc = render_jsonl("solo", &rec.snapshot());
        let (_, stats) = stitch(&[doc.as_str()]).unwrap();
        assert_eq!(stats.processes, 1);
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.roots, 1);
        assert_eq!(stats.orphans, 0);
    }

    #[test]
    fn stitch_rejects_malformed_input() {
        assert!(stitch(&[""]).is_err());
        assert!(stitch(&["{\"process\":\"p\"}\nnot json"]).is_err());
        assert!(stitch(&["{\"nope\":1}"]).is_err());
    }
}
