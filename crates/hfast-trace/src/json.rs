//! A minimal JSON parser, used to validate exporter output in-repo.
//!
//! The workspace emits JSON through `hfast_obs::JsonObj` but — with the
//! crate registry unreachable — has never had a *parser* to check that
//! what we emit actually parses. The Perfetto exporter's round-trip
//! property test closes that loop: export, [`parse`], and walk the tree.
//! Recursive descent, full escape handling, no allocation tricks; this is
//! a test-and-tooling parser, not a hot path.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected '{}' at byte {}, got {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(pairs)),
                got => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        got.map(|g| g as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                got => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos.saturating_sub(1),
                        got.map(|g| g as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("bad low surrogate".into());
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined).ok_or("bad surrogate pair")?
                        } else {
                            char::from_u32(cp).ok_or("bad \\u escape")?
                        };
                        out.push(c);
                    }
                    got => {
                        return Err(format!(
                            "bad escape {:?} at byte {}",
                            got.map(|g| g as char),
                            self.pos.saturating_sub(1)
                        ))
                    }
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos - 1))
                }
                Some(b) => {
                    // Re-borrow the original slice to copy UTF-8 intact.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(format!("bad UTF-8 lead byte at {start}")),
                        };
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or("truncated UTF-8 sequence")?;
                        let s = std::str::from_utf8(chunk)
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or("truncated \\u escape")?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit at byte {}", self.pos - 1))?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(parse(r#""hi""#).unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b").unwrap(), &JsonValue::Null);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let pair = parse(r#""😀""#).unwrap();
        assert_eq!(pair.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("1 2").is_err(), "trailing data");
        assert!(parse(r#""\ud800x""#).is_err(), "lone surrogate");
        assert!(parse("nul").is_err());
    }

    #[test]
    fn u64_extraction() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn round_trips_jsonobj_output() {
        let line = hfast_obs::JsonObj::new()
            .str("name", "a\"b\\c\nd")
            .u64("bytes", 4096)
            .f64_p("ratio", 1.0 / 3.0, 3)
            .bool("ok", true)
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.333));
        assert_eq!(v.get("ok").unwrap(), &JsonValue::Bool(true));
    }

    #[test]
    fn preserves_multibyte_utf8() {
        let v = parse("\"héllo — ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — ✓"));
    }
}
