//! Congestion analysis over per-link hop spans.
//!
//! The simulator records one `hop` span per message per link (start = when
//! the link began serializing, duration = serialization time, `wait` field
//! = queueing delay before the link freed up). Folding those intervals per
//! link yields the congestion picture Jha et al. argue is the diagnosable
//! unit of interconnect behaviour: busy/wait totals, peak queue depth, and
//! bucketed utilization/queue-depth timelines, ranked into a hotspot
//! table.
//!
//! Credit-mode runs additionally emit `stall` spans (a link's head
//! blocked, waiting for a credit on the downstream link named by the
//! span's `for` field). [`congestion_trees`] folds those into the tree
//! reports of arXiv 1907.05312 — root link, depth, member links, victim
//! counts — and [`utilization_spread`] condenses a hotspot ranking into
//! the two scalars ("how unequal is link load?") the congestion-lab
//! comparisons assert on.

use std::collections::{BTreeMap, BTreeSet};

use crate::span::{SpanRecord, Track};

/// Folded load for one link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoad {
    /// Link id (the fabric's `LinkId`).
    pub link: usize,
    /// Total serialization time on the link.
    pub busy_ns: u64,
    /// Total queueing delay suffered by messages before this link.
    pub wait_ns: u64,
    /// Messages that crossed the link.
    pub messages: u64,
    /// Peak number of messages simultaneously queued or serializing.
    pub peak_queue: usize,
    /// `busy_ns` over the trace horizon (max span end across all links).
    pub utilization: f64,
}

/// True for the serialization spans the load statistics fold. The name
/// check matters since credit-mode runs put `stall` spans on the same
/// link tracks — stalled time is *not* busy time.
fn is_hop(s: &SpanRecord) -> bool {
    s.name == "hop" && s.dur_ns > 0
}

fn hop_intervals(spans: &[SpanRecord]) -> BTreeMap<usize, Vec<&SpanRecord>> {
    let mut by_link: BTreeMap<usize, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        if let Track::Link(l) = s.track {
            if is_hop(s) {
                by_link.entry(l).or_default().push(s);
            }
        }
    }
    by_link
}

fn wait_of(s: &SpanRecord) -> u64 {
    s.fields
        .iter()
        .find(|(k, _)| *k == "wait")
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Folds hop spans into per-link loads, ranked by descending busy time
/// (link id breaks ties). Links with no hop spans do not appear.
pub fn rank_hotspots(spans: &[SpanRecord]) -> Vec<LinkLoad> {
    let by_link = hop_intervals(spans);
    let horizon = by_link
        .values()
        .flat_map(|v| v.iter().map(|s| s.t_ns + s.dur_ns))
        .max()
        .unwrap_or(0);

    let mut loads: Vec<LinkLoad> = by_link
        .into_iter()
        .map(|(link, hops)| {
            let busy_ns: u64 = hops.iter().map(|s| s.dur_ns).sum();
            let wait_ns: u64 = hops.iter().map(|s| wait_of(s)).sum();

            // Peak queue depth: sweep arrivals (+1) and departures (-1);
            // at equal times departures land first so a message arriving
            // exactly as another finishes does not count as overlap.
            let mut edges: Vec<(u64, i32)> = Vec::with_capacity(hops.len() * 2);
            for s in &hops {
                let arrival = s.t_ns.saturating_sub(wait_of(s));
                edges.push((arrival, 1));
                edges.push((s.t_ns + s.dur_ns, -1));
            }
            edges.sort_by_key(|&(t, d)| (t, d));
            let mut depth = 0i32;
            let mut peak = 0i32;
            for (_, d) in edges {
                depth += d;
                peak = peak.max(depth);
            }

            LinkLoad {
                link,
                busy_ns,
                wait_ns,
                messages: hops.len() as u64,
                peak_queue: peak.max(0) as usize,
                utilization: if horizon > 0 {
                    busy_ns as f64 / horizon as f64
                } else {
                    0.0
                },
            }
        })
        .collect();
    loads.sort_by(|a, b| b.busy_ns.cmp(&a.busy_ns).then(a.link.cmp(&b.link)));
    loads
}

/// Fraction of each of `buckets` equal time slices (over `[0, horizon)`)
/// that `link` spent serializing. Empty when the link has no hops or the
/// horizon is zero.
pub fn utilization_timeline(
    spans: &[SpanRecord],
    link: usize,
    horizon_ns: u64,
    buckets: usize,
) -> Vec<f64> {
    if horizon_ns == 0 || buckets == 0 {
        return Vec::new();
    }
    let mut busy = vec![0u64; buckets];
    let width = horizon_ns.div_ceil(buckets as u64).max(1);
    for s in spans {
        if s.track != Track::Link(link) || !is_hop(s) {
            continue;
        }
        let (start, end) = (s.t_ns, s.t_ns + s.dur_ns);
        let first = (start / width) as usize;
        let last = (((end - 1) / width) as usize).min(buckets - 1);
        for (b, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
            let b_start = b as u64 * width;
            let b_end = b_start + width;
            let overlap = end.min(b_end).saturating_sub(start.max(b_start));
            *slot += overlap;
        }
    }
    busy.into_iter().map(|b| b as f64 / width as f64).collect()
}

/// Peak queue depth of `link` within each of `buckets` equal slices of
/// `[0, horizon)`. A message occupies the queue from its arrival
/// (`t_ns - wait`) until its serialization ends.
pub fn queue_depth_timeline(
    spans: &[SpanRecord],
    link: usize,
    horizon_ns: u64,
    buckets: usize,
) -> Vec<usize> {
    if horizon_ns == 0 || buckets == 0 {
        return Vec::new();
    }
    let width = horizon_ns.div_ceil(buckets as u64).max(1);
    let mut edges: Vec<(u64, i32)> = Vec::new();
    for s in spans {
        if s.track != Track::Link(link) || !is_hop(s) {
            continue;
        }
        edges.push((s.t_ns.saturating_sub(wait_of(s)), 1));
        edges.push((s.t_ns + s.dur_ns, -1));
    }
    edges.sort_by_key(|&(t, d)| (t, d));
    let mut out = vec![0usize; buckets];
    let mut depth = 0i32;
    for (t, d) in edges {
        depth += d;
        if d > 0 {
            let b = ((t / width) as usize).min(buckets - 1);
            out[b] = out[b].max(depth.max(0) as usize);
        }
    }
    out
}

/// How unevenly busy time is distributed across the links that carried
/// traffic: the scalar form of "is congestion bounded?".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSpread {
    /// Links that carried at least one hop.
    pub links: usize,
    /// Busiest link's busy time over the mean busy time (1.0 = perfectly
    /// balanced; large = one link does all the work).
    pub max_over_mean: f64,
    /// Gini coefficient of per-link busy time in `[0, 1)`: 0 = equal
    /// load everywhere, →1 = all load on one link.
    pub gini: f64,
}

/// Condenses a [`rank_hotspots`] ranking into its inequality statistics.
/// Zeroed when no link carried traffic.
pub fn utilization_spread(loads: &[LinkLoad]) -> UtilizationSpread {
    let mut busy: Vec<u64> = loads.iter().map(|l| l.busy_ns).collect();
    busy.sort_unstable();
    let total: u64 = busy.iter().sum();
    let n = busy.len();
    if n == 0 || total == 0 {
        return UtilizationSpread {
            links: n,
            max_over_mean: 0.0,
            gini: 0.0,
        };
    }
    let mean = total as f64 / n as f64;
    let max = *busy.last().unwrap() as f64;
    // Gini over the sorted values: 2·Σ(i+1)·x_i / (n·Σx) − (n+1)/n.
    let weighted: f64 = busy
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    let gini = (2.0 * weighted / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64).max(0.0);
    UtilizationSpread {
        links: n,
        max_over_mean: max / mean,
        gini,
    }
}

/// One congestion tree folded out of credit-mode `stall` spans, in the
/// terminology of arXiv 1907.05312: the **root** is the saturated link
/// everything ultimately waits on; member links stalled waiting (directly
/// or transitively) for the root; **victims** are the distinct flows the
/// tree delayed, some of which never traverse the root at all.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionTree {
    /// The saturated link at the bottom of the wait chain (it caused
    /// stalls but never stalled itself).
    pub root: usize,
    /// Longest upstream wait chain, in links (1 = only direct stalls).
    pub depth: usize,
    /// All member links, root included, ascending.
    pub links: Vec<usize>,
    /// Total stalled time summed over the member links.
    pub stall_ns: u64,
    /// Distinct flows delayed by the tree: flows that stalled on a
    /// member link or queued (`wait > 0`) behind one.
    pub victim_flows: usize,
    /// Distinct flows that actually crossed the root link.
    pub root_flows: usize,
    /// Victims that never crossed the root — the tree's collateral
    /// damage, the paper's headline observation.
    pub off_root_victims: usize,
    /// `victim_flows / root_flows` (root flows floored at 1): how far
    /// past its own traffic the hot link's damage spread.
    pub spread_ratio: f64,
}

/// Extracts congestion trees from a snapshot containing credit-mode
/// `stall` spans, sorted by total stalled time descending (root id breaks
/// ties). Ideal-mode traces have no stall spans and yield no trees.
///
/// Wait *cycles* (A stalls for B while B stalls for A, at different
/// times) have no root and are not reported as trees.
pub fn congestion_trees(spans: &[SpanRecord]) -> Vec<CongestionTree> {
    // target link -> the links that stalled waiting for it.
    let mut upstream: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    let mut stalled_links: BTreeSet<usize> = BTreeSet::new();
    let mut stall_ns_by_link: BTreeMap<usize, u64> = BTreeMap::new();
    let mut stall_flows_by_link: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    let mut hop_flows_by_link: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    let mut waited_flows_by_link: BTreeMap<usize, BTreeSet<u64>> = BTreeMap::new();
    let field =
        |s: &SpanRecord, key: &str| s.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
    for s in spans {
        let Track::Link(l) = s.track else { continue };
        match s.name {
            "stall" => {
                let Some(wanted) = field(s, "for") else {
                    continue;
                };
                upstream.entry(wanted as usize).or_default().insert(l);
                stalled_links.insert(l);
                *stall_ns_by_link.entry(l).or_default() += s.dur_ns;
                if let Some(flow) = field(s, "flow") {
                    stall_flows_by_link.entry(l).or_default().insert(flow);
                }
            }
            "hop" => {
                if let Some(flow) = field(s, "flow") {
                    hop_flows_by_link.entry(l).or_default().insert(flow);
                    if field(s, "wait").is_some_and(|w| w > 0) {
                        waited_flows_by_link.entry(l).or_default().insert(flow);
                    }
                }
            }
            _ => {}
        }
    }

    let mut trees: Vec<CongestionTree> = upstream
        .keys()
        .filter(|root| !stalled_links.contains(root))
        .map(|&root| {
            // BFS upstream from the root through the stall edges.
            let mut members: BTreeSet<usize> = BTreeSet::from([root]);
            let mut frontier = vec![root];
            let mut depth = 0usize;
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for l in frontier {
                    for &up in upstream.get(&l).into_iter().flatten() {
                        if members.insert(up) {
                            next.push(up);
                        }
                    }
                }
                if !next.is_empty() {
                    depth += 1;
                }
                frontier = next;
            }

            let stall_ns = members.iter().filter_map(|l| stall_ns_by_link.get(l)).sum();
            let mut victims: BTreeSet<u64> = BTreeSet::new();
            for l in &members {
                if let Some(fs) = stall_flows_by_link.get(l) {
                    victims.extend(fs);
                }
                if let Some(fs) = waited_flows_by_link.get(l) {
                    victims.extend(fs);
                }
            }
            let empty = BTreeSet::new();
            let root_flows = hop_flows_by_link.get(&root).unwrap_or(&empty);
            let off_root_victims = victims.iter().filter(|f| !root_flows.contains(f)).count();
            CongestionTree {
                root,
                depth,
                links: members.into_iter().collect(),
                stall_ns,
                victim_flows: victims.len(),
                root_flows: root_flows.len(),
                off_root_victims,
                spread_ratio: victims.len() as f64 / root_flows.len().max(1) as f64,
            }
        })
        .collect();
    trees.sort_by(|a, b| b.stall_ns.cmp(&a.stall_ns).then(a.root.cmp(&b.root)));
    trees
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(link: usize, t: u64, dur: u64, wait: u64) -> SpanRecord {
        SpanRecord {
            track: Track::Link(link),
            name: "hop",
            t_ns: t,
            dur_ns: dur,
            span_id: 0,
            parent_id: 0,
            fields: vec![("wait", wait)],
        }
    }

    #[test]
    fn ranks_by_busy_time() {
        let spans = vec![
            hop(1, 0, 10, 0),
            hop(2, 0, 30, 5),
            hop(2, 40, 30, 0),
            hop(3, 0, 50, 0),
        ];
        let loads = rank_hotspots(&spans);
        assert_eq!(loads[0].link, 2, "60 ns busy wins");
        assert_eq!(loads[0].busy_ns, 60);
        assert_eq!(loads[0].wait_ns, 5);
        assert_eq!(loads[0].messages, 2);
        assert_eq!(loads[1].link, 3);
        assert_eq!(loads[2].link, 1);
        // Horizon is 70 (link 2's last hop ends at 70).
        assert!((loads[1].utilization - 50.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn peak_queue_counts_overlap() {
        // Three messages contend: arrivals at 0, 0, 5; the link serializes
        // them back to back (10 ns each).
        let spans = vec![hop(4, 0, 10, 0), hop(4, 10, 10, 10), hop(4, 20, 10, 15)];
        let loads = rank_hotspots(&spans);
        assert_eq!(loads[0].peak_queue, 3);
        // Back-to-back without waits: no overlap.
        let serial = vec![hop(5, 0, 10, 0), hop(5, 10, 10, 0)];
        assert_eq!(rank_hotspots(&serial)[0].peak_queue, 1);
    }

    #[test]
    fn utilization_timeline_buckets_overlap() {
        // One 50 ns hop over a 100 ns horizon in 4 buckets of 25 ns.
        let spans = vec![hop(1, 0, 50, 0)];
        let tl = utilization_timeline(&spans, 1, 100, 4);
        assert_eq!(tl.len(), 4);
        assert!((tl[0] - 1.0).abs() < 1e-12);
        assert!((tl[1] - 1.0).abs() < 1e-12);
        assert_eq!(tl[2], 0.0);
        assert_eq!(tl[3], 0.0);
        assert!(utilization_timeline(&spans, 2, 100, 4)
            .iter()
            .all(|&f| f == 0.0));
        assert!(utilization_timeline(&spans, 1, 0, 4).is_empty());
    }

    #[test]
    fn queue_depth_timeline_places_arrivals() {
        let spans = vec![hop(1, 10, 10, 10), hop(1, 20, 10, 15)];
        // Arrivals at 0 and 5; both pending in bucket 0 of [0, 40)/4.
        let tl = queue_depth_timeline(&spans, 1, 40, 4);
        assert_eq!(tl[0], 2);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(rank_hotspots(&[]).is_empty());
        assert!(congestion_trees(&[]).is_empty());
        let spread = utilization_spread(&[]);
        assert_eq!(spread.links, 0);
        assert_eq!(spread.gini, 0.0);
    }

    fn flow_hop(link: usize, flow: u64, wait: u64) -> SpanRecord {
        SpanRecord {
            track: Track::Link(link),
            name: "hop",
            t_ns: 0,
            dur_ns: 10,
            span_id: 0,
            parent_id: 0,
            fields: vec![("wait", wait), ("flow", flow)],
        }
    }

    fn stall(link: usize, flow: u64, wanted: usize, dur: u64) -> SpanRecord {
        SpanRecord {
            track: Track::Link(link),
            name: "stall",
            t_ns: 0,
            dur_ns: dur,
            span_id: 0,
            parent_id: 0,
            fields: vec![("flow", flow), ("for", wanted as u64)],
        }
    }

    #[test]
    fn stall_spans_do_not_count_as_busy_time() {
        let spans = vec![hop(1, 0, 10, 0), stall(1, 7, 2, 100)];
        let loads = rank_hotspots(&spans);
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].busy_ns, 10, "the 100 ns stall is not busy");
        assert_eq!(loads[0].messages, 1);
        let tl = utilization_timeline(&spans, 1, 100, 2);
        assert!(tl[1] < 1e-12, "stall adds nothing to the timeline");
    }

    #[test]
    fn spread_separates_balanced_from_skewed() {
        let balanced: Vec<LinkLoad> = rank_hotspots(&[hop(1, 0, 50, 0), hop(2, 0, 50, 0)]);
        let s = utilization_spread(&balanced);
        assert_eq!(s.links, 2);
        assert!((s.max_over_mean - 1.0).abs() < 1e-12);
        assert!(s.gini < 1e-12);

        let skewed = rank_hotspots(&[hop(1, 0, 90, 0), hop(2, 0, 10, 0)]);
        let s = utilization_spread(&skewed);
        assert!((s.max_over_mean - 1.8).abs() < 1e-12);
        assert!((s.gini - 0.4).abs() < 1e-12, "gini {}", s.gini);
    }

    #[test]
    fn tree_extraction_finds_root_depth_and_victims() {
        // Chain: link 3 stalls for 2, link 2 stalls for 1 — root is 1.
        // Flow 10 crosses the root; flow 11 stalls on link 3 and never
        // touches the root; flow 12 queues behind link 2.
        let spans = vec![
            flow_hop(1, 10, 0),
            flow_hop(2, 12, 5),
            stall(2, 10, 1, 40),
            stall(3, 11, 2, 20),
        ];
        let trees = congestion_trees(&spans);
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.root, 1);
        assert_eq!(t.depth, 2, "3 → 2 → 1");
        assert_eq!(t.links, vec![1, 2, 3]);
        assert_eq!(t.stall_ns, 60);
        assert_eq!(t.victim_flows, 3, "flows 10, 11, 12");
        assert_eq!(t.root_flows, 1, "only flow 10 crossed the root");
        assert_eq!(t.off_root_victims, 2, "flows 11 and 12 never did");
        assert!((t.spread_ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn independent_trees_sort_by_stall_time() {
        let spans = vec![stall(2, 1, 1, 10), stall(5, 2, 4, 99)];
        let trees = congestion_trees(&spans);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].root, 4, "heavier tree first");
        assert_eq!(trees[1].root, 1);
        assert_eq!(trees[0].depth, 1);
    }

    #[test]
    fn wait_cycles_yield_no_tree() {
        let spans = vec![stall(1, 1, 2, 10), stall(2, 2, 1, 10)];
        assert!(congestion_trees(&spans).is_empty(), "no stall-free root");
    }
}
