//! Congestion analysis over per-link hop spans.
//!
//! The simulator records one `hop` span per message per link (start = when
//! the link began serializing, duration = serialization time, `wait` field
//! = queueing delay before the link freed up). Folding those intervals per
//! link yields the congestion picture Jha et al. argue is the diagnosable
//! unit of interconnect behaviour: busy/wait totals, peak queue depth, and
//! bucketed utilization/queue-depth timelines, ranked into a hotspot
//! table.

use std::collections::BTreeMap;

use crate::span::{SpanRecord, Track};

/// Folded load for one link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoad {
    /// Link id (the fabric's `LinkId`).
    pub link: usize,
    /// Total serialization time on the link.
    pub busy_ns: u64,
    /// Total queueing delay suffered by messages before this link.
    pub wait_ns: u64,
    /// Messages that crossed the link.
    pub messages: u64,
    /// Peak number of messages simultaneously queued or serializing.
    pub peak_queue: usize,
    /// `busy_ns` over the trace horizon (max span end across all links).
    pub utilization: f64,
}

fn hop_intervals(spans: &[SpanRecord]) -> BTreeMap<usize, Vec<&SpanRecord>> {
    let mut by_link: BTreeMap<usize, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        if let Track::Link(l) = s.track {
            if s.dur_ns > 0 {
                by_link.entry(l).or_default().push(s);
            }
        }
    }
    by_link
}

fn wait_of(s: &SpanRecord) -> u64 {
    s.fields
        .iter()
        .find(|(k, _)| *k == "wait")
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Folds hop spans into per-link loads, ranked by descending busy time
/// (link id breaks ties). Links with no hop spans do not appear.
pub fn rank_hotspots(spans: &[SpanRecord]) -> Vec<LinkLoad> {
    let by_link = hop_intervals(spans);
    let horizon = by_link
        .values()
        .flat_map(|v| v.iter().map(|s| s.t_ns + s.dur_ns))
        .max()
        .unwrap_or(0);

    let mut loads: Vec<LinkLoad> = by_link
        .into_iter()
        .map(|(link, hops)| {
            let busy_ns: u64 = hops.iter().map(|s| s.dur_ns).sum();
            let wait_ns: u64 = hops.iter().map(|s| wait_of(s)).sum();

            // Peak queue depth: sweep arrivals (+1) and departures (-1);
            // at equal times departures land first so a message arriving
            // exactly as another finishes does not count as overlap.
            let mut edges: Vec<(u64, i32)> = Vec::with_capacity(hops.len() * 2);
            for s in &hops {
                let arrival = s.t_ns.saturating_sub(wait_of(s));
                edges.push((arrival, 1));
                edges.push((s.t_ns + s.dur_ns, -1));
            }
            edges.sort_by_key(|&(t, d)| (t, d));
            let mut depth = 0i32;
            let mut peak = 0i32;
            for (_, d) in edges {
                depth += d;
                peak = peak.max(depth);
            }

            LinkLoad {
                link,
                busy_ns,
                wait_ns,
                messages: hops.len() as u64,
                peak_queue: peak.max(0) as usize,
                utilization: if horizon > 0 {
                    busy_ns as f64 / horizon as f64
                } else {
                    0.0
                },
            }
        })
        .collect();
    loads.sort_by(|a, b| b.busy_ns.cmp(&a.busy_ns).then(a.link.cmp(&b.link)));
    loads
}

/// Fraction of each of `buckets` equal time slices (over `[0, horizon)`)
/// that `link` spent serializing. Empty when the link has no hops or the
/// horizon is zero.
pub fn utilization_timeline(
    spans: &[SpanRecord],
    link: usize,
    horizon_ns: u64,
    buckets: usize,
) -> Vec<f64> {
    if horizon_ns == 0 || buckets == 0 {
        return Vec::new();
    }
    let mut busy = vec![0u64; buckets];
    let width = horizon_ns.div_ceil(buckets as u64).max(1);
    for s in spans {
        if s.track != Track::Link(link) || s.dur_ns == 0 {
            continue;
        }
        let (start, end) = (s.t_ns, s.t_ns + s.dur_ns);
        let first = (start / width) as usize;
        let last = (((end - 1) / width) as usize).min(buckets - 1);
        for (b, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
            let b_start = b as u64 * width;
            let b_end = b_start + width;
            let overlap = end.min(b_end).saturating_sub(start.max(b_start));
            *slot += overlap;
        }
    }
    busy.into_iter().map(|b| b as f64 / width as f64).collect()
}

/// Peak queue depth of `link` within each of `buckets` equal slices of
/// `[0, horizon)`. A message occupies the queue from its arrival
/// (`t_ns - wait`) until its serialization ends.
pub fn queue_depth_timeline(
    spans: &[SpanRecord],
    link: usize,
    horizon_ns: u64,
    buckets: usize,
) -> Vec<usize> {
    if horizon_ns == 0 || buckets == 0 {
        return Vec::new();
    }
    let width = horizon_ns.div_ceil(buckets as u64).max(1);
    let mut edges: Vec<(u64, i32)> = Vec::new();
    for s in spans {
        if s.track != Track::Link(link) || s.dur_ns == 0 {
            continue;
        }
        edges.push((s.t_ns.saturating_sub(wait_of(s)), 1));
        edges.push((s.t_ns + s.dur_ns, -1));
    }
    edges.sort_by_key(|&(t, d)| (t, d));
    let mut out = vec![0usize; buckets];
    let mut depth = 0i32;
    for (t, d) in edges {
        depth += d;
        if d > 0 {
            let b = ((t / width) as usize).min(buckets - 1);
            out[b] = out[b].max(depth.max(0) as usize);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(link: usize, t: u64, dur: u64, wait: u64) -> SpanRecord {
        SpanRecord {
            track: Track::Link(link),
            name: "hop",
            t_ns: t,
            dur_ns: dur,
            span_id: 0,
            parent_id: 0,
            fields: vec![("wait", wait)],
        }
    }

    #[test]
    fn ranks_by_busy_time() {
        let spans = vec![
            hop(1, 0, 10, 0),
            hop(2, 0, 30, 5),
            hop(2, 40, 30, 0),
            hop(3, 0, 50, 0),
        ];
        let loads = rank_hotspots(&spans);
        assert_eq!(loads[0].link, 2, "60 ns busy wins");
        assert_eq!(loads[0].busy_ns, 60);
        assert_eq!(loads[0].wait_ns, 5);
        assert_eq!(loads[0].messages, 2);
        assert_eq!(loads[1].link, 3);
        assert_eq!(loads[2].link, 1);
        // Horizon is 70 (link 2's last hop ends at 70).
        assert!((loads[1].utilization - 50.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn peak_queue_counts_overlap() {
        // Three messages contend: arrivals at 0, 0, 5; the link serializes
        // them back to back (10 ns each).
        let spans = vec![hop(4, 0, 10, 0), hop(4, 10, 10, 10), hop(4, 20, 10, 15)];
        let loads = rank_hotspots(&spans);
        assert_eq!(loads[0].peak_queue, 3);
        // Back-to-back without waits: no overlap.
        let serial = vec![hop(5, 0, 10, 0), hop(5, 10, 10, 0)];
        assert_eq!(rank_hotspots(&serial)[0].peak_queue, 1);
    }

    #[test]
    fn utilization_timeline_buckets_overlap() {
        // One 50 ns hop over a 100 ns horizon in 4 buckets of 25 ns.
        let spans = vec![hop(1, 0, 50, 0)];
        let tl = utilization_timeline(&spans, 1, 100, 4);
        assert_eq!(tl.len(), 4);
        assert!((tl[0] - 1.0).abs() < 1e-12);
        assert!((tl[1] - 1.0).abs() < 1e-12);
        assert_eq!(tl[2], 0.0);
        assert_eq!(tl[3], 0.0);
        assert!(utilization_timeline(&spans, 2, 100, 4)
            .iter()
            .all(|&f| f == 0.0));
        assert!(utilization_timeline(&spans, 1, 0, 4).is_empty());
    }

    #[test]
    fn queue_depth_timeline_places_arrivals() {
        let spans = vec![hop(1, 10, 10, 10), hop(1, 20, 10, 15)];
        // Arrivals at 0 and 5; both pending in bucket 0 of [0, 40)/4.
        let tl = queue_depth_timeline(&spans, 1, 40, 4);
        assert_eq!(tl[0], 2);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(rank_hotspots(&[]).is_empty());
    }
}
