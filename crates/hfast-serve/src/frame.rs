//! Length-prefixed framing over a byte stream.
//!
//! Every message — request or response — is a 4-byte big-endian length
//! followed by that many bytes of UTF-8 JSON. Frames are bounded by
//! [`MAX_FRAME_BYTES`]: an oversized length prefix is rejected *before*
//! any allocation, so a hostile prefix cannot balloon memory, and the
//! reader distinguishes a clean end-of-stream (EOF between frames) from a
//! truncated frame (EOF inside one).
//!
//! [`FrameReader`] is incremental: the server reads under a short socket
//! timeout so it can poll its shutdown flag, and a timeout mid-frame must
//! not lose the bytes already consumed. All partial state lives in the
//! reader, so a `WouldBlock`/`TimedOut` tick is simply retried.

use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (1 MiB) — generous for inline
/// graphs at study sizes, tight enough to bound per-connection memory.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly between frames.
    Eof,
    /// The stream ended mid-frame (prefix or payload cut short).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized(usize),
    /// The payload is not valid UTF-8.
    NotUtf8,
    /// An underlying I/O error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_BYTES} cap")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One step of incremental frame reading.
#[derive(Debug)]
pub enum FramePoll {
    /// A complete frame.
    Frame(String),
    /// A read timeout ticked; no complete frame yet. Retry after checking
    /// whatever the timeout was installed to let you check.
    Pending,
}

/// Incremental frame reader that survives read timeouts without losing
/// partially-read bytes.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Payload length once the prefix is complete.
    target: Option<usize>,
}

impl FrameReader {
    /// A reader positioned between frames.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// True when a frame is partially read (drain decisions key on this:
    /// an idle connection can close, a mid-frame one is owed patience).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty() || self.target.is_some()
    }

    /// Drives the reader until a frame completes, the stream times out
    /// ([`FramePoll::Pending`]), or an error occurs. After an error the
    /// reader must not be reused (the stream position is undefined).
    pub fn poll(&mut self, r: &mut impl Read) -> Result<FramePoll, FrameError> {
        loop {
            // Resolve the prefix as soon as four bytes are in.
            if self.target.is_none() && self.buf.len() >= 4 {
                let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(FrameError::Oversized(len));
                }
                self.target = Some(len);
                self.buf.drain(..4);
            }
            if let Some(len) = self.target {
                if self.buf.len() >= len {
                    let payload: Vec<u8> = self.buf.drain(..len).collect();
                    self.target = None;
                    return String::from_utf8(payload)
                        .map(FramePoll::Frame)
                        .map_err(|_| FrameError::NotUtf8);
                }
            }
            let want = match self.target {
                Some(len) => len - self.buf.len(),
                None => 4 - self.buf.len(),
            };
            let mut chunk = vec![0u8; want.max(1)];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.mid_frame() {
                        FrameError::Truncated
                    } else {
                        FrameError::Eof
                    });
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FramePoll::Pending);
                }
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

/// Reads one frame, blocking until it completes (no-timeout streams).
pub fn read_frame(r: &mut impl Read) -> Result<String, FrameError> {
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(r)? {
            FramePoll::Frame(s) => return Ok(s),
            FramePoll::Pending => continue,
        }
    }
}

/// Writes one frame as a single `write_all` (prefix and payload split
/// over two writes would let Nagle's algorithm hold the payload until
/// the peer ACKs the prefix — a ~40 ms delayed-ACK stall per frame).
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    assert!(bytes.len() <= MAX_FRAME_BYTES, "oversized outgoing frame");
    let mut framed = Vec::with_capacity(4 + bytes.len());
    framed.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    framed.extend_from_slice(bytes);
    w.write_all(&framed)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_frames_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"type":"health"}"#).unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut cur = Cursor::new(buf);
        let mut reader = FrameReader::new();
        match reader.poll(&mut cur).unwrap() {
            FramePoll::Frame(s) => assert_eq!(s, r#"{"type":"health"}"#),
            other => panic!("expected frame, got {other:?}"),
        }
        match reader.poll(&mut cur).unwrap() {
            FramePoll::Frame(s) => assert_eq!(s, ""),
            other => panic!("expected frame, got {other:?}"),
        }
        assert!(matches!(reader.poll(&mut cur), Err(FrameError::Eof)));
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Eof)));
    }

    #[test]
    fn truncation_is_distinguished_from_eof() {
        // Prefix promises 10 bytes; only 3 arrive.
        let mut bytes = 10u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        let mut cur = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Truncated)));
        // A cut-short prefix is also truncation.
        let mut cur = Cursor::new(vec![0u8, 0]);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let bytes = (u32::MAX).to_be_bytes().to_vec();
        let mut cur = Cursor::new(bytes);
        match read_frame(&mut cur) {
            Err(FrameError::Oversized(n)) => assert_eq!(n, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn non_utf8_payload_rejected() {
        let mut bytes = 2u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut cur = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::NotUtf8)));
    }

    /// A reader that yields bytes one at a time with a timeout between
    /// each, exercising every resume point.
    struct Trickle {
        bytes: Vec<u8>,
        pos: usize,
        tick: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.tick {
                self.tick = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            self.tick = true;
            if self.pos >= self.bytes.len() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn partial_reads_resume_across_timeouts() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, r#"{"type":"stats"}"#).unwrap();
        let mut trickle = Trickle {
            bytes,
            pos: 0,
            tick: false,
        };
        let mut reader = FrameReader::new();
        let mut pendings = 0;
        loop {
            match reader.poll(&mut trickle).unwrap() {
                FramePoll::Frame(s) => {
                    assert_eq!(s, r#"{"type":"stats"}"#);
                    break;
                }
                FramePoll::Pending => pendings += 1,
            }
        }
        assert!(pendings > 4, "every byte boundary saw a timeout");
        assert!(!reader.mid_frame());
    }
}
