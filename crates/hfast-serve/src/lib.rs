//! Provisioning-as-a-service: a concurrent daemon over the HFAST toolkit.
//!
//! Everything this workspace can compute about the paper's applications —
//! HFAST provisioning, fat-tree cost comparisons, thresholded-degree
//! sweeps, full traffic replays with optional fault injection — is
//! exposed here as a network service, so one warm process answers many
//! clients instead of every caller paying profiling and fabric
//! construction from scratch.
//!
//! The daemon is std-only: `TcpListener` plus a fixed thread pool, a
//! length-prefixed JSON protocol (the in-repo parser from `hfast-trace`,
//! no external dependencies), and production shapes scaled down to
//! something auditable:
//!
//! - **Sharded response cache** ([`ResponseCache`]): cacheable endpoints
//!   are pure functions of their canonical request encoding, so responses
//!   are memoized under a byte budget with LRU eviction.
//! - **Admission control**: a bounded queue ahead of the worker pool;
//!   overflow sheds with [`Response::Busy`], stale queue entries expire
//!   against a per-request deadline.
//! - **Panic isolation**: handlers run under `catch_unwind`; a panicking
//!   request produces a structured error, never a dead worker.
//! - **Graceful drain**: shutdown stops accepting, finishes in-flight
//!   work, then flushes `hfast-obs` metrics and the Perfetto trace.
//! - **Durable jobs** ([`JobQueue`]): `submit`/`poll`/`fetch`/`cancel`
//!   verbs run long work asynchronously with retry/backoff on panics and
//!   an optional JSONL journal replayed on restart.
//! - **Versioned wire protocol**: the untagged v1 encoding stays
//!   canonical (cache keys, journal entries); a `{"v":2,...}` envelope
//!   is detected per frame and answered in kind.
//! - **Fleet scale-out** ([`fleet`]): consistent-hash sharding across
//!   daemon processes, reachable either client-side ([`FleetClient`])
//!   or through the `start_fleet` router and the `hfast-fleet`
//!   supervisor (rolling restarts, journaled shards).
//!
//! ```no_run
//! use hfast_serve::{start, Client, Request, Response, ServerConfig};
//!
//! let server = start("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let resp = client
//!     .call(&Request::Provision {
//!         app: hfast_serve::AppSpec::Named { name: "GTC".into(), procs: 64 },
//!         block_ports: 16,
//!         cutoff: 2048,
//!         strategy: None,
//!     })
//!     .unwrap();
//! assert!(matches!(resp, Response::Provisioned { .. }));
//! client.call(&Request::Shutdown).unwrap();
//! server.join();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod fleet;
pub mod frame;
pub mod handlers;
pub mod jobs;
pub mod protocol;
pub mod registry;
pub mod server;

pub use cache::{CacheStats, ResponseCache};
pub use client::{Client, ClientError, FleetClient};
pub use fleet::{
    aggregate_metrics, aggregate_stats, start_fleet, FleetConfig, FleetHandle, HashRing,
};
pub use frame::{read_frame, write_frame, FrameError, FramePoll, FrameReader, MAX_FRAME_BYTES};
pub use handlers::execute;
pub use hfast_core::Strategy;
pub use hfast_netsim::ScenarioKind;
pub use jobs::{Fetched, JobQueue};
pub use protocol::{
    decode_request, decode_request_traced, decode_request_versioned, decode_response,
    decode_response_versioned, encode_request, encode_request_versioned, encode_response,
    encode_response_versioned, envelope_traced, envelope_v2, request_key, strip_envelope, AppSpec,
    FabricSpec, FaultSpec, JobState, JobTotals, Request, Response, TdcRow, VerbHandler,
    VerbLatency, VerbSpec, VerbWindow, WireVersion, ENDPOINTS, VERBS,
};
pub use registry::Registry;
pub use server::{start, ServerConfig, ServerHandle};
