//! The wire protocol: typed requests and responses, and their canonical
//! JSON codec.
//!
//! Encoding goes through `hfast_obs::JsonObj` (floats rendered with the
//! shortest round-trip `Display` form), decoding through the in-repo
//! `hfast_trace::json` parser — no external serialization crates. The
//! encoder is *canonical*: one value has exactly one encoding, so the
//! encoded request doubles as the cache key (hashed with FNV-1a) and a
//! decode → encode round trip reproduces the input byte for byte
//! (asserted by property tests).
//!
//! Integers ride on JSON numbers, so — as in any interoperable JSON
//! protocol — they are exact only up to 2^53 (the f64 mantissa). Every
//! field carried here (byte counts, nanoseconds, port counts, seeds)
//! fits comfortably; values beyond that round.

use hfast_core::Strategy;
use hfast_obs::JsonObj;
use hfast_topology::{CommGraph, EdgeStat};
use hfast_trace::json::{self, JsonValue};

/// How a request names the application whose communication graph drives
/// the analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// One of the six paper applications, profiled at `procs` ranks.
    Named {
        /// Application name as in Table 2 (`Cactus`, `LBMHD`, `GTC`,
        /// `SuperLU`, `PMEMD`, `PARATEC`).
        name: String,
        /// Processor count to profile at.
        procs: usize,
    },
    /// An inline communication graph.
    Inline {
        /// Number of tasks.
        n: usize,
        /// Undirected edges as `(a, b, bytes, count, max_msg)`; both
        /// orientations of a pair merge into one edge.
        edges: Vec<(usize, usize, u64, u64, u64)>,
    },
}

impl AppSpec {
    /// Materializes an inline spec into a [`CommGraph`]. Named specs are
    /// resolved by the registry (profiling is expensive and deduplicated).
    pub fn inline_graph(&self) -> Option<CommGraph> {
        match self {
            AppSpec::Named { .. } => None,
            AppSpec::Inline { n, edges } => {
                let directed = edges.iter().map(|&(a, b, bytes, count, max_msg)| {
                    (
                        a,
                        b,
                        EdgeStat {
                            bytes,
                            count,
                            max_msg,
                        },
                    )
                });
                Some(CommGraph::from_directed(*n, directed))
            }
        }
    }
}

/// The simulated fabric family for a `simulate` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricSpec {
    /// A fat tree of `ports`-port switches sized to the app.
    FatTree {
        /// Switch port count.
        ports: usize,
    },
    /// A 3D torus of the given dimensions.
    Torus {
        /// Dimensions (product must cover the app's task count).
        dims: (usize, usize, usize),
    },
    /// An HFAST fabric provisioned from the app's thresholded graph.
    Hfast,
}

/// Optional fault injection for a `simulate` request: seeded random link
/// failures inside a time window, mirroring
/// `FaultPlanBuilder::random_link_failures`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// RNG seed (same seed, same schedule).
    pub seed: u64,
    /// Number of link failures to draw.
    pub count: usize,
    /// Failure-time window `[lo, hi)` in simulated nanoseconds.
    pub window: (u64, u64),
    /// Downtime before automatic recovery; `None` leaves links down.
    pub downtime_ns: Option<u64>,
}

/// One request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; never queued, never cached.
    Health,
    /// Server counters and cache statistics.
    Stats,
    /// HFAST provisioning for an app: switch-block counts and port math.
    Provision {
        /// The application graph.
        app: AppSpec,
        /// Ports per switch block.
        block_ports: usize,
        /// Message-size cutoff in bytes.
        cutoff: u64,
        /// Provisioner strategy; `None` means the paper's linear heuristic
        /// and is omitted from the encoding so pre-strategy clients keep
        /// byte-identical cache keys.
        strategy: Option<Strategy>,
    },
    /// Fat-tree versus HFAST cost comparison.
    Cost {
        /// The application graph.
        app: AppSpec,
        /// Ports per switch block.
        block_ports: usize,
        /// Message-size cutoff in bytes.
        cutoff: u64,
    },
    /// Thresholded-degree sweep over several cutoffs.
    Tdc {
        /// The application graph.
        app: AppSpec,
        /// Cutoffs to sweep, in bytes.
        cutoffs: Vec<u64>,
    },
    /// Replay the app's traffic over a fabric, optionally under faults.
    Simulate {
        /// The application graph.
        app: AppSpec,
        /// Fabric to replay over.
        fabric: FabricSpec,
        /// Message-size cutoff for flow extraction.
        cutoff: u64,
        /// Optional seeded fault injection.
        faults: Option<FaultSpec>,
        /// Provisioner strategy for HFAST fabrics (ignored by fat tree and
        /// torus); `None` means the paper heuristic, omitted on the wire.
        strategy: Option<Strategy>,
    },
    /// Begin graceful drain: stop accepting, finish in-flight, exit.
    Shutdown,
    /// Panic inside a worker (panic-isolation testing only).
    DebugPanic,
}

impl Request {
    /// True for requests whose response is a pure function of the request
    /// and therefore cacheable.
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            Request::Provision { .. }
                | Request::Cost { .. }
                | Request::Tdc { .. }
                | Request::Simulate { .. }
        )
    }

    /// The endpoint label used in metrics, one of [`ENDPOINTS`].
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Health => "health",
            Request::Stats => "stats",
            Request::Provision { .. } => "provision",
            Request::Cost { .. } => "cost",
            Request::Tdc { .. } => "tdc",
            Request::Simulate { .. } => "simulate",
            Request::Shutdown => "shutdown",
            Request::DebugPanic => "debug_panic",
        }
    }

    /// Index of this request's endpoint in [`ENDPOINTS`].
    pub fn endpoint_index(&self) -> usize {
        ENDPOINTS
            .iter()
            .position(|&e| e == self.endpoint())
            .expect("every endpoint is listed")
    }
}

/// Metric labels for every endpoint, in a fixed order.
pub const ENDPOINTS: [&str; 8] = [
    "health",
    "stats",
    "provision",
    "cost",
    "tdc",
    "simulate",
    "shutdown",
    "debug_panic",
];

/// One row of a TDC sweep response.
#[derive(Debug, Clone, PartialEq)]
pub struct TdcRow {
    /// Cutoff in bytes.
    pub cutoff: u64,
    /// Maximum thresholded degree.
    pub max: usize,
    /// Minimum thresholded degree.
    pub min: usize,
    /// Mean thresholded degree.
    pub avg: f64,
    /// Median thresholded degree.
    pub median: usize,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness acknowledgement.
    Health {
        /// Compute worker count.
        workers: usize,
        /// Admission queue capacity.
        queue: usize,
    },
    /// Server counters; numbers move between calls, so never cached.
    Stats {
        /// Total requests parsed (all endpoints).
        requests: u64,
        /// Requests shed with [`Response::Busy`].
        shed: u64,
        /// Response-cache hits.
        cache_hits: u64,
        /// Response-cache misses.
        cache_misses: u64,
        /// Response-cache LRU evictions.
        cache_evictions: u64,
        /// Cached entries right now.
        cache_entries: u64,
        /// Cached payload bytes right now.
        cache_bytes: u64,
        /// Simulator events processed across all simulate runs.
        sim_events: u64,
        /// Event-loop throughput of the most recent simulate run
        /// (events per wall-clock second inside the loop; 0 before the
        /// first run).
        sim_events_per_sec: u64,
        /// Provision/simulate executions per strategy, in
        /// [`Strategy::ALL`] order (cache hits do not re-execute and are
        /// not counted).
        strategy_hits: [u64; 3],
    },
    /// Provisioning summary for one app graph.
    Provisioned {
        /// Tasks in the graph.
        n: usize,
        /// Switch blocks allocated.
        blocks: usize,
        /// Packet-switch ports purchased.
        total_block_ports: usize,
        /// Circuit (MEMS) ports in use.
        circuit_ports: usize,
        /// Packet ports per node.
        ports_per_node: f64,
        /// Worst provisioned route's switch hops (0 if nothing routed).
        max_switch_hops: usize,
    },
    /// Fat tree versus HFAST cost report.
    CostReport {
        /// HFAST build cost (normalized packet-port units).
        hfast: f64,
        /// Fat-tree build cost.
        fat_tree: f64,
        /// `hfast / fat_tree`.
        ratio: f64,
        /// True when HFAST is the cheaper build.
        hfast_wins: bool,
        /// Packet ports per node under HFAST.
        hfast_ports_per_node: f64,
        /// Switch ports per processor in the fat tree.
        fat_tree_ports_per_node: usize,
    },
    /// TDC sweep rows, one per requested cutoff.
    TdcReport {
        /// Rows in request cutoff order.
        rows: Vec<TdcRow>,
    },
    /// Simulation outcome summary.
    SimReport {
        /// Flows delivered.
        completed: usize,
        /// Flows without a route (including abandoned).
        unrouted: usize,
        /// Flows abandoned by the retry policy.
        abandoned: usize,
        /// Payload bytes delivered.
        delivered_bytes: u64,
        /// Worst flow latency.
        max_latency_ns: u64,
        /// Time of last delivery.
        makespan_ns: u64,
        /// Retry re-admissions.
        total_retries: u64,
        /// Mid-run circuit re-provisioning rounds.
        reprovisions: usize,
    },
    /// Load shed: the admission queue was full. Retry later.
    Busy,
    /// Acknowledgement (shutdown).
    Ok,
    /// Structured failure; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

fn encode_app(app: &AppSpec) -> String {
    match app {
        AppSpec::Named { name, procs } => JsonObj::new()
            .str("name", name)
            .usize("procs", *procs)
            .finish(),
        AppSpec::Inline { n, edges } => {
            let mut rows = String::from("[");
            for (i, &(a, b, bytes, count, max_msg)) in edges.iter().enumerate() {
                if i > 0 {
                    rows.push(',');
                }
                rows.push_str(&format!("[{a},{b},{bytes},{count},{max_msg}]"));
            }
            rows.push(']');
            JsonObj::new().usize("n", *n).raw("edges", &rows).finish()
        }
    }
}

fn encode_fabric(fabric: &FabricSpec) -> String {
    match fabric {
        FabricSpec::FatTree { ports } => JsonObj::new()
            .str("kind", "fattree")
            .usize("ports", *ports)
            .finish(),
        FabricSpec::Torus { dims } => JsonObj::new()
            .str("kind", "torus")
            .usize("x", dims.0)
            .usize("y", dims.1)
            .usize("z", dims.2)
            .finish(),
        FabricSpec::Hfast => JsonObj::new().str("kind", "hfast").finish(),
    }
}

fn encode_faults(f: &FaultSpec) -> String {
    let mut obj = JsonObj::new()
        .u64("seed", f.seed)
        .usize("count", f.count)
        .raw("window", &format!("[{},{}]", f.window.0, f.window.1));
    if let Some(d) = f.downtime_ns {
        obj = obj.u64("downtime_ns", d);
    }
    obj.finish()
}

/// Encodes a request canonically (the encoding is the cache-key basis).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Health | Request::Stats | Request::Shutdown | Request::DebugPanic => {
            JsonObj::new().str("type", req.endpoint()).finish()
        }
        Request::Provision {
            app,
            block_ports,
            cutoff,
            strategy,
        } => {
            let mut obj = JsonObj::new()
                .str("type", "provision")
                .raw("app", &encode_app(app))
                .usize("block_ports", *block_ports)
                .u64("cutoff", *cutoff);
            // Omitted when None: strategy-less requests stay byte-identical
            // to the pre-strategy wire format (and thus to its cache keys).
            if let Some(s) = strategy {
                obj = obj.str("strategy", s.as_str());
            }
            obj.finish()
        }
        Request::Cost {
            app,
            block_ports,
            cutoff,
        } => JsonObj::new()
            .str("type", "cost")
            .raw("app", &encode_app(app))
            .usize("block_ports", *block_ports)
            .u64("cutoff", *cutoff)
            .finish(),
        Request::Tdc { app, cutoffs } => {
            let mut arr = String::from("[");
            for (i, c) in cutoffs.iter().enumerate() {
                if i > 0 {
                    arr.push(',');
                }
                arr.push_str(&c.to_string());
            }
            arr.push(']');
            JsonObj::new()
                .str("type", "tdc")
                .raw("app", &encode_app(app))
                .raw("cutoffs", &arr)
                .finish()
        }
        Request::Simulate {
            app,
            fabric,
            cutoff,
            faults,
            strategy,
        } => {
            let mut obj = JsonObj::new()
                .str("type", "simulate")
                .raw("app", &encode_app(app))
                .raw("fabric", &encode_fabric(fabric))
                .u64("cutoff", *cutoff);
            if let Some(f) = faults {
                obj = obj.raw("faults", &encode_faults(f));
            }
            if let Some(s) = strategy {
                obj = obj.str("strategy", s.as_str());
            }
            obj.finish()
        }
    }
}

/// Encodes a response canonically.
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Health { workers, queue } => JsonObj::new()
            .str("type", "health")
            .bool("ok", true)
            .usize("workers", *workers)
            .usize("queue", *queue)
            .finish(),
        Response::Stats {
            requests,
            shed,
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_entries,
            cache_bytes,
            sim_events,
            sim_events_per_sec,
            strategy_hits,
        } => {
            let mut hits = JsonObj::new();
            for (s, &count) in Strategy::ALL.iter().zip(strategy_hits) {
                hits = hits.u64(s.as_str(), count);
            }
            JsonObj::new()
                .str("type", "stats")
                .u64("requests", *requests)
                .u64("shed", *shed)
                .u64("cache_hits", *cache_hits)
                .u64("cache_misses", *cache_misses)
                .u64("cache_evictions", *cache_evictions)
                .u64("cache_entries", *cache_entries)
                .u64("cache_bytes", *cache_bytes)
                .u64("sim_events", *sim_events)
                .u64("sim_events_per_sec", *sim_events_per_sec)
                .raw("strategy_hits", &hits.finish())
                .finish()
        }
        Response::Provisioned {
            n,
            blocks,
            total_block_ports,
            circuit_ports,
            ports_per_node,
            max_switch_hops,
        } => JsonObj::new()
            .str("type", "provisioned")
            .usize("n", *n)
            .usize("blocks", *blocks)
            .usize("total_block_ports", *total_block_ports)
            .usize("circuit_ports", *circuit_ports)
            .f64("ports_per_node", *ports_per_node)
            .usize("max_switch_hops", *max_switch_hops)
            .finish(),
        Response::CostReport {
            hfast,
            fat_tree,
            ratio,
            hfast_wins,
            hfast_ports_per_node,
            fat_tree_ports_per_node,
        } => JsonObj::new()
            .str("type", "cost")
            .f64("hfast", *hfast)
            .f64("fat_tree", *fat_tree)
            .f64("ratio", *ratio)
            .bool("hfast_wins", *hfast_wins)
            .f64("hfast_ports_per_node", *hfast_ports_per_node)
            .usize("fat_tree_ports_per_node", *fat_tree_ports_per_node)
            .finish(),
        Response::TdcReport { rows } => {
            let mut arr = String::from("[");
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    arr.push(',');
                }
                arr.push_str(
                    &JsonObj::new()
                        .u64("cutoff", r.cutoff)
                        .usize("max", r.max)
                        .usize("min", r.min)
                        .f64("avg", r.avg)
                        .usize("median", r.median)
                        .finish(),
                );
            }
            arr.push(']');
            JsonObj::new().str("type", "tdc").raw("rows", &arr).finish()
        }
        Response::SimReport {
            completed,
            unrouted,
            abandoned,
            delivered_bytes,
            max_latency_ns,
            makespan_ns,
            total_retries,
            reprovisions,
        } => JsonObj::new()
            .str("type", "sim")
            .usize("completed", *completed)
            .usize("unrouted", *unrouted)
            .usize("abandoned", *abandoned)
            .u64("delivered_bytes", *delivered_bytes)
            .u64("max_latency_ns", *max_latency_ns)
            .u64("makespan_ns", *makespan_ns)
            .u64("total_retries", *total_retries)
            .usize("reprovisions", *reprovisions)
            .finish(),
        Response::Busy => JsonObj::new().str("type", "busy").finish(),
        Response::Ok => JsonObj::new().str("type", "ok").finish(),
        Response::Error { message } => JsonObj::new()
            .str("type", "error")
            .str("message", message)
            .finish(),
    }
}

fn need_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .map(|u| u as usize)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn need_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn need_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn need_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn need_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean field {key:?}")),
    }
}

fn decode_app(v: &JsonValue) -> Result<AppSpec, String> {
    let app = v.get("app").ok_or("missing field \"app\"")?;
    if app.get("name").is_some() {
        Ok(AppSpec::Named {
            name: need_str(app, "name")?.to_string(),
            procs: need_usize(app, "procs")?,
        })
    } else {
        let n = need_usize(app, "n")?;
        let rows = app
            .get("edges")
            .and_then(JsonValue::as_arr)
            .ok_or("inline app needs an \"edges\" array")?;
        let mut edges = Vec::with_capacity(rows.len());
        for row in rows {
            let cells = row.as_arr().ok_or("edge rows are arrays")?;
            if cells.len() != 5 {
                return Err("edge rows are [a,b,bytes,count,max_msg]".into());
            }
            let num = |i: usize| {
                cells[i]
                    .as_u64()
                    .ok_or_else(|| format!("edge cell {i} is not an integer"))
            };
            edges.push((
                num(0)? as usize,
                num(1)? as usize,
                num(2)?,
                num(3)?,
                num(4)?,
            ));
        }
        Ok(AppSpec::Inline { n, edges })
    }
}

fn decode_fabric(v: &JsonValue) -> Result<FabricSpec, String> {
    let fab = v.get("fabric").ok_or("missing field \"fabric\"")?;
    match need_str(fab, "kind")? {
        "fattree" => Ok(FabricSpec::FatTree {
            ports: need_usize(fab, "ports")?,
        }),
        "torus" => Ok(FabricSpec::Torus {
            dims: (
                need_usize(fab, "x")?,
                need_usize(fab, "y")?,
                need_usize(fab, "z")?,
            ),
        }),
        "hfast" => Ok(FabricSpec::Hfast),
        other => Err(format!("unknown fabric kind {other:?}")),
    }
}

fn decode_strategy(v: &JsonValue) -> Result<Option<Strategy>, String> {
    let Some(s) = v.get("strategy") else {
        return Ok(None);
    };
    let name = s.as_str().ok_or("strategy is a string")?;
    name.parse().map(Some)
}

fn decode_faults(v: &JsonValue) -> Result<Option<FaultSpec>, String> {
    let Some(f) = v.get("faults") else {
        return Ok(None);
    };
    let window = f
        .get("window")
        .and_then(JsonValue::as_arr)
        .ok_or("faults need a [lo,hi] \"window\"")?;
    if window.len() != 2 {
        return Err("fault window is [lo,hi]".into());
    }
    let bound = |i: usize| {
        window[i]
            .as_u64()
            .ok_or_else(|| format!("window bound {i} is not an integer"))
    };
    let downtime_ns = match f.get("downtime_ns") {
        None => None,
        Some(d) => Some(d.as_u64().ok_or("downtime_ns is not an integer")?),
    };
    Ok(Some(FaultSpec {
        seed: need_u64(f, "seed")?,
        count: need_usize(f, "count")?,
        window: (bound(0)?, bound(1)?),
        downtime_ns,
    }))
}

/// Decodes one request frame.
pub fn decode_request(text: &str) -> Result<Request, String> {
    let v = json::parse(text)?;
    match need_str(&v, "type")? {
        "health" => Ok(Request::Health),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "debug_panic" => Ok(Request::DebugPanic),
        "provision" => Ok(Request::Provision {
            app: decode_app(&v)?,
            block_ports: need_usize(&v, "block_ports")?,
            cutoff: need_u64(&v, "cutoff")?,
            strategy: decode_strategy(&v)?,
        }),
        "cost" => Ok(Request::Cost {
            app: decode_app(&v)?,
            block_ports: need_usize(&v, "block_ports")?,
            cutoff: need_u64(&v, "cutoff")?,
        }),
        "tdc" => {
            let arr = v
                .get("cutoffs")
                .and_then(JsonValue::as_arr)
                .ok_or("tdc needs a \"cutoffs\" array")?;
            let mut cutoffs = Vec::with_capacity(arr.len());
            for c in arr {
                cutoffs.push(c.as_u64().ok_or("cutoffs are integers")?);
            }
            Ok(Request::Tdc {
                app: decode_app(&v)?,
                cutoffs,
            })
        }
        "simulate" => Ok(Request::Simulate {
            app: decode_app(&v)?,
            fabric: decode_fabric(&v)?,
            cutoff: need_u64(&v, "cutoff")?,
            faults: decode_faults(&v)?,
            strategy: decode_strategy(&v)?,
        }),
        other => Err(format!("unknown request type {other:?}")),
    }
}

/// Decodes one response frame.
pub fn decode_response(text: &str) -> Result<Response, String> {
    let v = json::parse(text)?;
    match need_str(&v, "type")? {
        "health" => Ok(Response::Health {
            workers: need_usize(&v, "workers")?,
            queue: need_usize(&v, "queue")?,
        }),
        "stats" => {
            let hits = v.get("strategy_hits").ok_or("stats needs strategy_hits")?;
            let mut strategy_hits = [0u64; 3];
            for (s, slot) in Strategy::ALL.iter().zip(strategy_hits.iter_mut()) {
                *slot = need_u64(hits, s.as_str())?;
            }
            Ok(Response::Stats {
                requests: need_u64(&v, "requests")?,
                shed: need_u64(&v, "shed")?,
                cache_hits: need_u64(&v, "cache_hits")?,
                cache_misses: need_u64(&v, "cache_misses")?,
                cache_evictions: need_u64(&v, "cache_evictions")?,
                cache_entries: need_u64(&v, "cache_entries")?,
                cache_bytes: need_u64(&v, "cache_bytes")?,
                sim_events: need_u64(&v, "sim_events")?,
                sim_events_per_sec: need_u64(&v, "sim_events_per_sec")?,
                strategy_hits,
            })
        }
        "provisioned" => Ok(Response::Provisioned {
            n: need_usize(&v, "n")?,
            blocks: need_usize(&v, "blocks")?,
            total_block_ports: need_usize(&v, "total_block_ports")?,
            circuit_ports: need_usize(&v, "circuit_ports")?,
            ports_per_node: need_f64(&v, "ports_per_node")?,
            max_switch_hops: need_usize(&v, "max_switch_hops")?,
        }),
        "cost" => Ok(Response::CostReport {
            hfast: need_f64(&v, "hfast")?,
            fat_tree: need_f64(&v, "fat_tree")?,
            ratio: need_f64(&v, "ratio")?,
            hfast_wins: need_bool(&v, "hfast_wins")?,
            hfast_ports_per_node: need_f64(&v, "hfast_ports_per_node")?,
            fat_tree_ports_per_node: need_usize(&v, "fat_tree_ports_per_node")?,
        }),
        "tdc" => {
            let arr = v
                .get("rows")
                .and_then(JsonValue::as_arr)
                .ok_or("tdc response needs \"rows\"")?;
            let mut rows = Vec::with_capacity(arr.len());
            for r in arr {
                rows.push(TdcRow {
                    cutoff: need_u64(r, "cutoff")?,
                    max: need_usize(r, "max")?,
                    min: need_usize(r, "min")?,
                    avg: need_f64(r, "avg")?,
                    median: need_usize(r, "median")?,
                });
            }
            Ok(Response::TdcReport { rows })
        }
        "sim" => Ok(Response::SimReport {
            completed: need_usize(&v, "completed")?,
            unrouted: need_usize(&v, "unrouted")?,
            abandoned: need_usize(&v, "abandoned")?,
            delivered_bytes: need_u64(&v, "delivered_bytes")?,
            max_latency_ns: need_u64(&v, "max_latency_ns")?,
            makespan_ns: need_u64(&v, "makespan_ns")?,
            total_retries: need_u64(&v, "total_retries")?,
            reprovisions: need_usize(&v, "reprovisions")?,
        }),
        "busy" => Ok(Response::Busy),
        "ok" => Ok(Response::Ok),
        "error" => Ok(Response::Error {
            message: need_str(&v, "message")?.to_string(),
        }),
        other => Err(format!("unknown response type {other:?}")),
    }
}

/// FNV-1a hash of a canonical request encoding — the response-cache key.
pub fn request_key(canonical: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in canonical.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Health,
            Request::Stats,
            Request::Shutdown,
            Request::DebugPanic,
            Request::Provision {
                app: AppSpec::Named {
                    name: "GTC".into(),
                    procs: 64,
                },
                block_ports: 16,
                cutoff: 2048,
                strategy: None,
            },
            Request::Provision {
                app: AppSpec::Named {
                    name: "GTC".into(),
                    procs: 64,
                },
                block_ports: 16,
                cutoff: 2048,
                strategy: Some(Strategy::BffCircuit),
            },
            Request::Cost {
                app: AppSpec::Inline {
                    n: 4,
                    edges: vec![(0, 1, 4096, 2, 4096), (2, 3, 100, 1, 100)],
                },
                block_ports: 8,
                cutoff: 0,
            },
            Request::Tdc {
                app: AppSpec::Named {
                    name: "Cactus".into(),
                    procs: 64,
                },
                cutoffs: vec![0, 2048, 1 << 20],
            },
            Request::Simulate {
                app: AppSpec::Named {
                    name: "LBMHD".into(),
                    procs: 64,
                },
                fabric: FabricSpec::Torus { dims: (4, 4, 4) },
                cutoff: 2048,
                faults: Some(FaultSpec {
                    seed: 7,
                    count: 2,
                    window: (0, 500_000),
                    downtime_ns: Some(100_000),
                }),
                strategy: None,
            },
            Request::Simulate {
                app: AppSpec::Named {
                    name: "LBMHD".into(),
                    procs: 64,
                },
                fabric: FabricSpec::Hfast,
                cutoff: 2048,
                faults: None,
                strategy: Some(Strategy::DemandDecomp),
            },
        ];
        for req in reqs {
            let enc = encode_request(&req);
            let dec = decode_request(&enc).expect("canonical encoding decodes");
            assert_eq!(dec, req, "round trip changed {enc}");
            assert_eq!(encode_request(&dec), enc, "re-encoding not canonical");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Health {
                workers: 4,
                queue: 64,
            },
            Response::Busy,
            Response::Ok,
            Response::Error {
                message: "bad \"app\"\nline".into(),
            },
            Response::TdcReport {
                rows: vec![TdcRow {
                    cutoff: 2048,
                    max: 6,
                    min: 3,
                    avg: 5.25,
                    median: 5,
                }],
            },
        ];
        for resp in resps {
            let enc = encode_response(&resp);
            let dec = decode_response(&enc).expect("canonical encoding decodes");
            assert_eq!(dec, resp, "round trip changed {enc}");
        }
    }

    /// Strategy-less requests must encode to exactly the pre-strategy wire
    /// bytes: these literals are pinned from before the `strategy` field
    /// existed, so old clients keep their cache keys (and cached entries)
    /// across the upgrade.
    #[test]
    fn strategyless_requests_keep_the_legacy_wire_format() {
        let provision = Request::Provision {
            app: AppSpec::Named {
                name: "GTC".into(),
                procs: 64,
            },
            block_ports: 16,
            cutoff: 2048,
            strategy: None,
        };
        assert_eq!(
            encode_request(&provision),
            r#"{"type":"provision","app":{"name":"GTC","procs":64},"block_ports":16,"cutoff":2048}"#
        );
        let simulate = Request::Simulate {
            app: AppSpec::Inline {
                n: 4,
                edges: vec![(0, 1, 4096, 2, 4096)],
            },
            fabric: FabricSpec::Hfast,
            cutoff: 2048,
            faults: None,
            strategy: None,
        };
        assert_eq!(
            encode_request(&simulate),
            r#"{"type":"simulate","app":{"n":4,"edges":[[0,1,4096,2,4096]]},"fabric":{"kind":"hfast"},"cutoff":2048}"#
        );
        // Naming the default strategy explicitly is a *different* request
        // (and key): equivalence is semantic, not wire-level.
        let explicit = Request::Provision {
            app: AppSpec::Named {
                name: "GTC".into(),
                procs: 64,
            },
            block_ports: 16,
            cutoff: 2048,
            strategy: Some(Strategy::PaperLinear),
        };
        assert_ne!(
            request_key(&encode_request(&provision)),
            request_key(&encode_request(&explicit))
        );
    }

    #[test]
    fn unknown_strategy_is_a_structured_error() {
        let enc = r#"{"type":"provision","app":{"name":"GTC","procs":64},"block_ports":16,"cutoff":2048,"strategy":"warp_speed"}"#;
        assert!(decode_request(enc).is_err());
    }

    #[test]
    fn keys_separate_distinct_requests() {
        let a = encode_request(&Request::Health);
        let b = encode_request(&Request::Stats);
        assert_ne!(request_key(&a), request_key(&b));
        assert_eq!(request_key(&a), request_key(&a));
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        assert!(decode_request("").is_err());
        assert!(decode_request("{}").is_err());
        assert!(decode_request(r#"{"type":"warp"}"#).is_err());
        assert!(decode_request(r#"{"type":"tdc","app":{"name":"GTC"}}"#).is_err());
        assert!(decode_request(r#"{"type":"provision","app":{"n":2,"edges":[[0]]}}"#).is_err());
    }
}
