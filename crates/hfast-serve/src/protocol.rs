//! The wire protocol: typed requests and responses, and their canonical
//! JSON codec.
//!
//! Encoding goes through `hfast_obs::JsonObj` (floats rendered with the
//! shortest round-trip `Display` form), decoding through the in-repo
//! `hfast_trace::json` parser — no external serialization crates. The
//! encoder is *canonical*: one value has exactly one encoding, so the
//! encoded request doubles as the cache key (hashed with FNV-1a) and a
//! decode → encode round trip reproduces the input byte for byte
//! (asserted by property tests).
//!
//! Integers ride on JSON numbers, so — as in any interoperable JSON
//! protocol — they are exact only up to 2^53 (the f64 mantissa). Every
//! field carried here (byte counts, nanoseconds, port counts, seeds)
//! fits comfortably; values beyond that round.
//!
//! ## Wire versions
//!
//! Two envelopes share one body grammar. **v1** is the untagged PR-6/
//! PR-7 format: the body object *is* the frame
//! (`{"type":"provision",...}`), and it stays byte-identical forever —
//! pinned by the wire-golden tests so old clients never break. **v2**
//! prefixes the same body with a version tag as the first field
//! (`{"v":2,"type":"provision",...}`). A frame with no `"v"` field is
//! v1; the server answers every request in the version it arrived in.
//! Cache keys are always derived from the canonical **v1** body, so both
//! generations share one cache.
//!
//! ## The verb table
//!
//! Every verb is one [`VerbSpec`] row in [`VERBS`]: its wire name,
//! whether responses are cacheable, whether it may ride the durable job
//! queue, and how it is handled (in the server's connection thread or by
//! a pure worker function). [`ENDPOINTS`], the metric labels, the cache
//! admission test, and worker dispatch are all derived from the table —
//! adding a verb is one row plus its codec arms.

use hfast_core::Strategy;
use hfast_netsim::ScenarioKind;
use hfast_obs::JsonObj;
use hfast_topology::{CommGraph, EdgeStat};
use hfast_trace::json::{self, JsonValue};
use hfast_trace::TraceContext;

use crate::registry::Registry;

/// How a request names the application whose communication graph drives
/// the analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// One of the six paper applications, profiled at `procs` ranks.
    Named {
        /// Application name as in Table 2 (`Cactus`, `LBMHD`, `GTC`,
        /// `SuperLU`, `PMEMD`, `PARATEC`).
        name: String,
        /// Processor count to profile at.
        procs: usize,
    },
    /// An inline communication graph.
    Inline {
        /// Number of tasks.
        n: usize,
        /// Undirected edges as `(a, b, bytes, count, max_msg)`; both
        /// orientations of a pair merge into one edge.
        edges: Vec<(usize, usize, u64, u64, u64)>,
    },
}

impl AppSpec {
    /// Materializes an inline spec into a [`CommGraph`]. Named specs are
    /// resolved by the registry (profiling is expensive and deduplicated).
    pub fn inline_graph(&self) -> Option<CommGraph> {
        match self {
            AppSpec::Named { .. } => None,
            AppSpec::Inline { n, edges } => {
                let directed = edges.iter().map(|&(a, b, bytes, count, max_msg)| {
                    (
                        a,
                        b,
                        EdgeStat {
                            bytes,
                            count,
                            max_msg,
                        },
                    )
                });
                Some(CommGraph::from_directed(*n, directed))
            }
        }
    }
}

/// The simulated fabric family for a `simulate` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricSpec {
    /// A fat tree of `ports`-port switches sized to the app.
    FatTree {
        /// Switch port count.
        ports: usize,
    },
    /// A 3D torus of the given dimensions.
    Torus {
        /// Dimensions (product must cover the app's task count).
        dims: (usize, usize, usize),
    },
    /// An HFAST fabric provisioned from the app's thresholded graph.
    Hfast,
}

/// Optional fault injection for a `simulate` request: seeded random link
/// failures inside a time window, mirroring
/// `FaultPlanBuilder::random_link_failures`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// RNG seed (same seed, same schedule).
    pub seed: u64,
    /// Number of link failures to draw.
    pub count: usize,
    /// Failure-time window `[lo, hi)` in simulated nanoseconds.
    pub window: (u64, u64),
    /// Downtime before automatic recovery; `None` leaves links down.
    pub downtime_ns: Option<u64>,
}

/// Which envelope a frame used (and its answer must use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireVersion {
    /// Untagged body object — the PR-6/PR-7 format, frozen forever.
    #[default]
    V1,
    /// `{"v":2,...}`-tagged body.
    V2,
}

/// Lifecycle state of a queued job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted (journaled when a journal is configured), not yet run.
    Queued,
    /// Executing on a job worker right now.
    Running,
    /// Finished; the result is ready to `fetch`.
    Done,
    /// Exhausted its retry budget or hit a terminal error.
    Failed,
    /// Cancelled before it ran.
    Cancelled,
}

impl JobState {
    /// The wire name of this state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses a wire name back into a state.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }

    /// True once the job can never change state again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Lifetime job-queue totals reported by the `stats` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobTotals {
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Jobs that finished with a result.
    pub completed: u64,
    /// Jobs that exhausted retries or hit a terminal error.
    pub failed: u64,
    /// Jobs cancelled before running.
    pub cancelled: u64,
    /// Re-admissions after a failed attempt.
    pub retried: u64,
}

/// One request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; never queued, never cached.
    Health,
    /// Server counters and cache statistics.
    Stats,
    /// HFAST provisioning for an app: switch-block counts and port math.
    Provision {
        /// The application graph.
        app: AppSpec,
        /// Ports per switch block.
        block_ports: usize,
        /// Message-size cutoff in bytes.
        cutoff: u64,
        /// Provisioner strategy; `None` means the paper's linear heuristic
        /// and is omitted from the encoding so pre-strategy clients keep
        /// byte-identical cache keys.
        strategy: Option<Strategy>,
    },
    /// Fat-tree versus HFAST cost comparison.
    Cost {
        /// The application graph.
        app: AppSpec,
        /// Ports per switch block.
        block_ports: usize,
        /// Message-size cutoff in bytes.
        cutoff: u64,
    },
    /// Thresholded-degree sweep over several cutoffs.
    Tdc {
        /// The application graph.
        app: AppSpec,
        /// Cutoffs to sweep, in bytes.
        cutoffs: Vec<u64>,
    },
    /// Replay the app's traffic over a fabric, optionally under faults.
    Simulate {
        /// The application graph.
        app: AppSpec,
        /// Fabric to replay over.
        fabric: FabricSpec,
        /// Message-size cutoff for flow extraction.
        cutoff: u64,
        /// Optional seeded fault injection.
        faults: Option<FaultSpec>,
        /// Provisioner strategy for HFAST fabrics (ignored by fat tree and
        /// torus); `None` means the paper heuristic, omitted on the wire.
        strategy: Option<Strategy>,
    },
    /// Begin graceful drain: stop accepting, finish in-flight, exit.
    Shutdown,
    /// Panic inside a worker (panic-isolation testing only).
    DebugPanic,
    /// Enqueue a queueable request as a durable job; answers
    /// [`Response::JobAccepted`] immediately.
    Submit {
        /// The request to run asynchronously (must be queueable per its
        /// [`VerbSpec`]).
        job: Box<Request>,
    },
    /// Ask for a job's status without consuming anything.
    Poll {
        /// Job id from [`Response::JobAccepted`].
        id: u64,
    },
    /// Retrieve a finished job's result; answers the job's own response
    /// when done, [`Response::JobStatus`] while it is still pending.
    /// Idempotent: fetching never consumes the result.
    Fetch {
        /// Job id from [`Response::JobAccepted`].
        id: u64,
    },
    /// Cancel a queued job (running or terminal jobs are unaffected);
    /// answers the job's resulting status.
    Cancel {
        /// Job id from [`Response::JobAccepted`].
        id: u64,
    },
    /// Rolling SLO snapshot: per-verb windowed latency quantiles,
    /// throughput counts, and error/busy tallies, plus live gauges.
    /// Numbers move between calls, so never cached.
    Metrics,
    /// Replay a generated adversarial scenario (incast, permutation,
    /// hot-spot, multi-tenant, bursty) on a fabric under credit-based
    /// flow control, reporting the congestion-tree analysis.
    Scenario {
        /// Which generator to run.
        kind: ScenarioKind,
        /// Endpoint count (the generator's node universe).
        nodes: usize,
        /// Flow-count override; `None` uses the kind's preset and is
        /// omitted from the encoding.
        flows: Option<usize>,
        /// Foreground per-flow byte override; `None` uses the preset,
        /// omitted on the wire.
        bytes: Option<u64>,
        /// Generator seed (same seed, same traffic).
        seed: u64,
        /// Fabric to replay over; HFAST is provisioned from the
        /// scenario's own communication graph.
        fabric: FabricSpec,
        /// Provisioner strategy for HFAST fabrics; `None` means the
        /// paper heuristic, omitted on the wire.
        strategy: Option<Strategy>,
        /// Buffer slots per link for the credit model; `None` means the
        /// engine default, omitted on the wire.
        credits: Option<u32>,
    },
}

/// How a verb is executed.
#[derive(Debug, Clone, Copy)]
pub enum VerbHandler {
    /// Answered in the server's connection thread (health, stats, drain,
    /// job-queue bookkeeping) — never reaches the worker pool.
    Server,
    /// Executed by this pure function on a compute worker (or a job
    /// worker when submitted through the queue).
    Worker(fn(&Request, &Registry) -> Response),
}

/// One row of the declarative verb table: everything the server needs to
/// know about a verb besides its codec arms.
#[derive(Debug, Clone, Copy)]
pub struct VerbSpec {
    /// Wire name (`"type"` field) and metric label.
    pub name: &'static str,
    /// True when the response is a pure function of the request and may
    /// be cached under its canonical-encoding key.
    pub cacheable: bool,
    /// True when the verb may be wrapped in `submit` and ride the
    /// durable job queue.
    pub queueable: bool,
    /// Where the verb executes.
    pub handler: VerbHandler,
}

/// The verb table. Index order is frozen: the first eight rows predate
/// the table (their metric indexes are pinned by recorded observability),
/// new verbs append.
pub const VERBS: [VerbSpec; 14] = [
    VerbSpec {
        name: "health",
        cacheable: false,
        queueable: false,
        handler: VerbHandler::Server,
    },
    VerbSpec {
        name: "stats",
        cacheable: false,
        queueable: false,
        handler: VerbHandler::Server,
    },
    VerbSpec {
        name: "provision",
        cacheable: true,
        queueable: false,
        handler: VerbHandler::Worker(crate::handlers::provision),
    },
    VerbSpec {
        name: "cost",
        cacheable: true,
        queueable: false,
        handler: VerbHandler::Worker(crate::handlers::cost),
    },
    VerbSpec {
        name: "tdc",
        cacheable: true,
        queueable: false,
        handler: VerbHandler::Worker(crate::handlers::tdc),
    },
    VerbSpec {
        name: "simulate",
        cacheable: true,
        queueable: true,
        handler: VerbHandler::Worker(crate::handlers::simulate),
    },
    VerbSpec {
        name: "shutdown",
        cacheable: false,
        queueable: false,
        handler: VerbHandler::Server,
    },
    VerbSpec {
        name: "debug_panic",
        cacheable: false,
        // Queueable so the job queue's retry/backoff path has a
        // deterministic failure to exercise.
        queueable: true,
        handler: VerbHandler::Worker(crate::handlers::debug_panic),
    },
    VerbSpec {
        name: "submit",
        cacheable: false,
        queueable: false,
        handler: VerbHandler::Server,
    },
    VerbSpec {
        name: "poll",
        cacheable: false,
        queueable: false,
        handler: VerbHandler::Server,
    },
    VerbSpec {
        name: "fetch",
        cacheable: false,
        queueable: false,
        handler: VerbHandler::Server,
    },
    VerbSpec {
        name: "cancel",
        cacheable: false,
        queueable: false,
        handler: VerbHandler::Server,
    },
    VerbSpec {
        name: "metrics",
        cacheable: false,
        queueable: false,
        handler: VerbHandler::Server,
    },
    VerbSpec {
        name: "scenario",
        // Generators are seeded and the credit loop is deterministic, so
        // the report is a pure function of the request.
        cacheable: true,
        queueable: false,
        handler: VerbHandler::Worker(crate::handlers::scenario),
    },
];

impl Request {
    /// Index of this request's row in [`VERBS`] — the only hand-written
    /// request-shape match left; everything else derives from the table.
    pub fn verb_index(&self) -> usize {
        match self {
            Request::Health => 0,
            Request::Stats => 1,
            Request::Provision { .. } => 2,
            Request::Cost { .. } => 3,
            Request::Tdc { .. } => 4,
            Request::Simulate { .. } => 5,
            Request::Shutdown => 6,
            Request::DebugPanic => 7,
            Request::Submit { .. } => 8,
            Request::Poll { .. } => 9,
            Request::Fetch { .. } => 10,
            Request::Cancel { .. } => 11,
            Request::Metrics => 12,
            Request::Scenario { .. } => 13,
        }
    }

    /// This request's [`VerbSpec`] row.
    pub fn spec(&self) -> &'static VerbSpec {
        &VERBS[self.verb_index()]
    }

    /// True for requests whose response is a pure function of the request
    /// and therefore cacheable.
    pub fn cacheable(&self) -> bool {
        self.spec().cacheable
    }

    /// The endpoint label used in metrics, one of [`ENDPOINTS`].
    pub fn endpoint(&self) -> &'static str {
        self.spec().name
    }

    /// Index of this request's endpoint in [`ENDPOINTS`].
    pub fn endpoint_index(&self) -> usize {
        self.verb_index()
    }
}

/// Metric labels for every endpoint, in [`VERBS`] order.
pub const ENDPOINTS: [&str; VERBS.len()] = {
    let mut names = [""; VERBS.len()];
    let mut i = 0;
    while i < VERBS.len() {
        names[i] = VERBS[i].name;
        i += 1;
    }
    names
};

/// One row of a TDC sweep response.
#[derive(Debug, Clone, PartialEq)]
pub struct TdcRow {
    /// Cutoff in bytes.
    pub cutoff: u64,
    /// Maximum thresholded degree.
    pub max: usize,
    /// Minimum thresholded degree.
    pub min: usize,
    /// Mean thresholded degree.
    pub avg: f64,
    /// Median thresholded degree.
    pub median: usize,
}

/// Lifetime latency quantiles for one verb, in the `stats` response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerbLatency {
    /// Verb name, one of [`ENDPOINTS`].
    pub verb: String,
    /// Requests of this verb served since process start.
    pub count: u64,
    /// Interpolated p50 service latency, nanoseconds.
    pub p50_ns: u64,
    /// Interpolated p95 service latency, nanoseconds.
    pub p95_ns: u64,
    /// Interpolated p99 service latency, nanoseconds.
    pub p99_ns: u64,
}

/// Rolling windowed statistics for one verb, in the `metrics` response.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerbWindow {
    /// Verb name, one of [`ENDPOINTS`].
    pub verb: String,
    /// Requests observed inside the window.
    pub count: u64,
    /// Successful responses inside the window.
    pub ok: u64,
    /// Busy (load-shed) responses inside the window.
    pub busy: u64,
    /// Error responses inside the window.
    pub errors: u64,
    /// Rolling interpolated p50 latency, nanoseconds.
    pub p50_ns: u64,
    /// Rolling interpolated p95 latency, nanoseconds.
    pub p95_ns: u64,
    /// Rolling interpolated p99 latency, nanoseconds.
    pub p99_ns: u64,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness acknowledgement.
    Health {
        /// Compute worker count.
        workers: usize,
        /// Admission queue capacity.
        queue: usize,
    },
    /// Server counters; numbers move between calls, so never cached.
    Stats {
        /// Total requests parsed (all endpoints).
        requests: u64,
        /// Requests shed with [`Response::Busy`].
        shed: u64,
        /// Response-cache hits.
        cache_hits: u64,
        /// Response-cache misses.
        cache_misses: u64,
        /// Response-cache LRU evictions.
        cache_evictions: u64,
        /// Cached entries right now.
        cache_entries: u64,
        /// Cached payload bytes right now.
        cache_bytes: u64,
        /// Simulator events processed across all simulate runs.
        sim_events: u64,
        /// Event-loop throughput of the most recent simulate run
        /// (events per wall-clock second inside the loop; 0 before the
        /// first run).
        sim_events_per_sec: u64,
        /// Provision/simulate executions per strategy, in
        /// [`Strategy::ALL`] order (cache hits do not re-execute and are
        /// not counted).
        strategy_hits: [u64; 3],
        /// Scenario replays per generator kind, in [`ScenarioKind::ALL`]
        /// order (cache hits do not re-execute and are not counted).
        scenario_hits: [u64; 5],
        /// Profiled app graphs resident in the registry.
        graphs: u64,
        /// Built fabrics resident in the registry.
        fabrics: u64,
        /// Durable-job-queue lifetime totals.
        jobs: JobTotals,
        /// Lifetime per-verb service-latency quantiles, one row per
        /// [`VERBS`] entry in table order.
        latency: Vec<VerbLatency>,
    },
    /// Provisioning summary for one app graph.
    Provisioned {
        /// Tasks in the graph.
        n: usize,
        /// Switch blocks allocated.
        blocks: usize,
        /// Packet-switch ports purchased.
        total_block_ports: usize,
        /// Circuit (MEMS) ports in use.
        circuit_ports: usize,
        /// Packet ports per node.
        ports_per_node: f64,
        /// Worst provisioned route's switch hops (0 if nothing routed).
        max_switch_hops: usize,
    },
    /// Fat tree versus HFAST cost report.
    CostReport {
        /// HFAST build cost (normalized packet-port units).
        hfast: f64,
        /// Fat-tree build cost.
        fat_tree: f64,
        /// `hfast / fat_tree`.
        ratio: f64,
        /// True when HFAST is the cheaper build.
        hfast_wins: bool,
        /// Packet ports per node under HFAST.
        hfast_ports_per_node: f64,
        /// Switch ports per processor in the fat tree.
        fat_tree_ports_per_node: usize,
    },
    /// TDC sweep rows, one per requested cutoff.
    TdcReport {
        /// Rows in request cutoff order.
        rows: Vec<TdcRow>,
    },
    /// Simulation outcome summary.
    SimReport {
        /// Flows delivered.
        completed: usize,
        /// Flows without a route (including abandoned).
        unrouted: usize,
        /// Flows abandoned by the retry policy.
        abandoned: usize,
        /// Payload bytes delivered.
        delivered_bytes: u64,
        /// Worst flow latency.
        max_latency_ns: u64,
        /// Time of last delivery.
        makespan_ns: u64,
        /// Retry re-admissions.
        total_retries: u64,
        /// Mid-run circuit re-provisioning rounds.
        reprovisions: usize,
    },
    /// Congestion-tree report from a `scenario` replay under credit-based
    /// flow control.
    ScenarioReport {
        /// Flows the generator emitted.
        flows: usize,
        /// Flows delivered.
        completed: usize,
        /// Flows without a route.
        unrouted: usize,
        /// Time of last delivery.
        makespan_ns: u64,
        /// 95th-percentile flow latency.
        p95_latency_ns: u64,
        /// Congestion trees found in the trace.
        trees: usize,
        /// Deepest tree (stalled links upstream of the root).
        deepest: usize,
        /// Total stalled time across all trees.
        stall_ns: u64,
        /// Worst tree's victims over its root-crossing flows (0 when no
        /// link ever stalled).
        spread: f64,
        /// Victims that never traverse their tree's root link, summed.
        off_root_victims: usize,
        /// Max-over-mean link busy-time (1.0 = perfectly balanced).
        max_over_mean: f64,
        /// Gini coefficient of link busy-time (0 = balanced).
        gini: f64,
    },
    /// A job was accepted onto the durable queue.
    JobAccepted {
        /// The id to `poll`/`fetch`/`cancel` with.
        id: u64,
    },
    /// A job's current status (`poll`, a pending `fetch`, or `cancel`).
    JobStatus {
        /// The job id asked about.
        id: u64,
        /// Lifecycle state right now.
        state: JobState,
        /// Admissions so far (1 = first attempt running or finished).
        attempts: u32,
        /// Failure cause; present only for [`JobState::Failed`].
        message: Option<String>,
    },
    /// Rolling SLO snapshot from the `metrics` verb. A shard reports its
    /// own window (`shards == 1`); the fleet router merges shard windows
    /// into fleet-level bounds — counts and gauges sum, quantiles take
    /// the per-shard maximum (a conservative upper bound, since log₂
    /// histograms from different processes cannot be re-interpolated
    /// jointly without shipping every bucket).
    Metrics {
        /// Width of the rolling window the verb rows cover, nanoseconds.
        window_ns: u64,
        /// Processes merged into this snapshot (1 for a single shard).
        shards: u64,
        /// Compute admission-queue depth right now, summed.
        queue_depth: u64,
        /// Response-cache hits (lifetime), summed.
        cache_hits: u64,
        /// Response-cache misses (lifetime), summed.
        cache_misses: u64,
        /// Jobs in a non-terminal state right now, summed.
        jobs_pending: u64,
        /// Job re-admissions after failed attempts (lifetime), summed.
        jobs_retried: u64,
        /// Keys currently tripped hot by the router's hot-key tracker
        /// (always 0 from a shard).
        hot_keys: u64,
        /// Rolling per-verb stats, one row per [`VERBS`] entry in table
        /// order.
        verbs: Vec<VerbWindow>,
    },
    /// Load shed: the admission queue was full. Retry later.
    Busy,
    /// Acknowledgement (shutdown).
    Ok,
    /// Structured failure; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

fn encode_app(app: &AppSpec) -> String {
    match app {
        AppSpec::Named { name, procs } => JsonObj::new()
            .str("name", name)
            .usize("procs", *procs)
            .finish(),
        AppSpec::Inline { n, edges } => {
            let mut rows = String::from("[");
            for (i, &(a, b, bytes, count, max_msg)) in edges.iter().enumerate() {
                if i > 0 {
                    rows.push(',');
                }
                rows.push_str(&format!("[{a},{b},{bytes},{count},{max_msg}]"));
            }
            rows.push(']');
            JsonObj::new().usize("n", *n).raw("edges", &rows).finish()
        }
    }
}

fn encode_fabric(fabric: &FabricSpec) -> String {
    match fabric {
        FabricSpec::FatTree { ports } => JsonObj::new()
            .str("kind", "fattree")
            .usize("ports", *ports)
            .finish(),
        FabricSpec::Torus { dims } => JsonObj::new()
            .str("kind", "torus")
            .usize("x", dims.0)
            .usize("y", dims.1)
            .usize("z", dims.2)
            .finish(),
        FabricSpec::Hfast => JsonObj::new().str("kind", "hfast").finish(),
    }
}

fn encode_faults(f: &FaultSpec) -> String {
    let mut obj = JsonObj::new()
        .u64("seed", f.seed)
        .usize("count", f.count)
        .raw("window", &format!("[{},{}]", f.window.0, f.window.1));
    if let Some(d) = f.downtime_ns {
        obj = obj.u64("downtime_ns", d);
    }
    obj.finish()
}

/// Wraps a canonical v1 body in the v2 envelope: the version tag becomes
/// the object's first field, everything else is byte-identical.
pub fn envelope_v2(body: &str) -> String {
    debug_assert!(body.len() > 2 && body.starts_with('{'), "body is an object");
    let mut out = String::with_capacity(body.len() + 6);
    out.push_str("{\"v\":2,");
    out.push_str(&body[1..]);
    out
}

/// Wraps a canonical v1 body in the v2 envelope *with* a trace context:
/// `{"v":2,"trace":{"id":…,"parent":…},` then the body's own fields.
///
/// Span ids use more than 53 bits (the id-space tag bits live at 2⁶⁰–2⁶³),
/// so both fields ride as hex strings — a JSON number would round through
/// interoperable f64 parsers, including the in-repo one. A frame with no
/// trace context uses [`envelope_v2`] and stays byte-identical to the
/// pre-trace v2 format. Responses never carry a context.
pub fn envelope_traced(body: &str, ctx: TraceContext) -> String {
    debug_assert!(body.len() > 2 && body.starts_with('{'), "body is an object");
    format!(
        "{{\"v\":2,\"trace\":{{\"id\":\"{:x}\",\"parent\":\"{:x}\"}},{}",
        ctx.trace_id,
        ctx.parent_id,
        &body[1..]
    )
}

/// Undoes the v2 envelope (traced or not), recovering the canonical v1
/// body. v1 frames pass through unchanged, so the result is always the
/// byte-exact v1 encoding — the form cache keys and digests hash.
pub fn strip_envelope(text: &str) -> String {
    let Some(rest) = text.strip_prefix("{\"v\":2,") else {
        return text.to_string();
    };
    let rest = match rest.strip_prefix("\"trace\":{") {
        Some(after) => match after.find('}') {
            // The trace object is flat, so the first brace closes it;
            // skip it and the comma separating it from the body fields.
            Some(i) => after[i + 1..].strip_prefix(',').unwrap_or(&after[i + 1..]),
            None => rest,
        },
        None => rest,
    };
    format!("{{{rest}")
}

fn hex_id(v: &JsonValue, key: &str) -> Result<u64, String> {
    let s = need_str(v, key)?;
    u64::from_str_radix(s, 16).map_err(|_| format!("trace field {key:?} is not a hex id"))
}

fn decode_trace(v: &JsonValue, version: WireVersion) -> Result<Option<TraceContext>, String> {
    let Some(t) = v.get("trace") else {
        return Ok(None);
    };
    if version != WireVersion::V2 {
        return Err("trace context requires the v2 envelope".into());
    }
    Ok(Some(TraceContext {
        trace_id: hex_id(t, "id")?,
        parent_id: hex_id(t, "parent")?,
    }))
}

/// Decodes one request frame in either envelope, also extracting the
/// cross-process [`TraceContext`] when the v2 envelope carries one.
/// A malformed `trace` member is a decode error, not a silent drop.
pub fn decode_request_traced(
    text: &str,
) -> Result<(Request, WireVersion, Option<TraceContext>), String> {
    let v = json::parse(text)?;
    let version = wire_version(&v)?;
    let ctx = decode_trace(&v, version)?;
    Ok((decode_request_value(&v)?, version, ctx))
}

/// Encodes a request under the given wire version (v1 is canonical; v2
/// adds the envelope tag).
pub fn encode_request_versioned(req: &Request, version: WireVersion) -> String {
    let body = encode_request(req);
    match version {
        WireVersion::V1 => body,
        WireVersion::V2 => envelope_v2(&body),
    }
}

/// Encodes a response under the given wire version.
pub fn encode_response_versioned(resp: &Response, version: WireVersion) -> String {
    let body = encode_response(resp);
    match version {
        WireVersion::V1 => body,
        WireVersion::V2 => envelope_v2(&body),
    }
}

/// Encodes a request canonically (the encoding is the cache-key basis).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Health
        | Request::Stats
        | Request::Shutdown
        | Request::DebugPanic
        | Request::Metrics => JsonObj::new().str("type", req.endpoint()).finish(),
        Request::Submit { job } => JsonObj::new()
            .str("type", "submit")
            .raw("job", &encode_request(job))
            .finish(),
        Request::Poll { id } | Request::Fetch { id } | Request::Cancel { id } => JsonObj::new()
            .str("type", req.endpoint())
            .u64("id", *id)
            .finish(),
        Request::Provision {
            app,
            block_ports,
            cutoff,
            strategy,
        } => {
            let mut obj = JsonObj::new()
                .str("type", "provision")
                .raw("app", &encode_app(app))
                .usize("block_ports", *block_ports)
                .u64("cutoff", *cutoff);
            // Omitted when None: strategy-less requests stay byte-identical
            // to the pre-strategy wire format (and thus to its cache keys).
            if let Some(s) = strategy {
                obj = obj.str("strategy", s.as_str());
            }
            obj.finish()
        }
        Request::Cost {
            app,
            block_ports,
            cutoff,
        } => JsonObj::new()
            .str("type", "cost")
            .raw("app", &encode_app(app))
            .usize("block_ports", *block_ports)
            .u64("cutoff", *cutoff)
            .finish(),
        Request::Tdc { app, cutoffs } => {
            let mut arr = String::from("[");
            for (i, c) in cutoffs.iter().enumerate() {
                if i > 0 {
                    arr.push(',');
                }
                arr.push_str(&c.to_string());
            }
            arr.push(']');
            JsonObj::new()
                .str("type", "tdc")
                .raw("app", &encode_app(app))
                .raw("cutoffs", &arr)
                .finish()
        }
        Request::Simulate {
            app,
            fabric,
            cutoff,
            faults,
            strategy,
        } => {
            let mut obj = JsonObj::new()
                .str("type", "simulate")
                .raw("app", &encode_app(app))
                .raw("fabric", &encode_fabric(fabric))
                .u64("cutoff", *cutoff);
            if let Some(f) = faults {
                obj = obj.raw("faults", &encode_faults(f));
            }
            if let Some(s) = strategy {
                obj = obj.str("strategy", s.as_str());
            }
            obj.finish()
        }
        Request::Scenario {
            kind,
            nodes,
            flows,
            bytes,
            seed,
            fabric,
            strategy,
            credits,
        } => {
            let mut obj = JsonObj::new()
                .str("type", "scenario")
                .str("kind", kind.as_str())
                .usize("nodes", *nodes);
            // Optional overrides are omitted when None so preset requests
            // keep minimal, stable cache keys.
            if let Some(f) = flows {
                obj = obj.usize("flows", *f);
            }
            if let Some(b) = bytes {
                obj = obj.u64("bytes", *b);
            }
            obj = obj.u64("seed", *seed).raw("fabric", &encode_fabric(fabric));
            if let Some(s) = strategy {
                obj = obj.str("strategy", s.as_str());
            }
            if let Some(c) = credits {
                obj = obj.u64("credits", u64::from(*c));
            }
            obj.finish()
        }
    }
}

fn encode_verb_latency(rows: &[VerbLatency]) -> String {
    let mut arr = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(
            &JsonObj::new()
                .str("verb", &r.verb)
                .u64("count", r.count)
                .u64("p50_ns", r.p50_ns)
                .u64("p95_ns", r.p95_ns)
                .u64("p99_ns", r.p99_ns)
                .finish(),
        );
    }
    arr.push(']');
    arr
}

fn encode_verb_windows(rows: &[VerbWindow]) -> String {
    let mut arr = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(
            &JsonObj::new()
                .str("verb", &r.verb)
                .u64("count", r.count)
                .u64("ok", r.ok)
                .u64("busy", r.busy)
                .u64("errors", r.errors)
                .u64("p50_ns", r.p50_ns)
                .u64("p95_ns", r.p95_ns)
                .u64("p99_ns", r.p99_ns)
                .finish(),
        );
    }
    arr.push(']');
    arr
}

/// Encodes a response canonically.
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Health { workers, queue } => JsonObj::new()
            .str("type", "health")
            .bool("ok", true)
            .usize("workers", *workers)
            .usize("queue", *queue)
            .finish(),
        Response::Stats {
            requests,
            shed,
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_entries,
            cache_bytes,
            sim_events,
            sim_events_per_sec,
            strategy_hits,
            scenario_hits,
            graphs,
            fabrics,
            jobs,
            latency,
        } => {
            let mut hits = JsonObj::new();
            for (s, &count) in Strategy::ALL.iter().zip(strategy_hits) {
                hits = hits.u64(s.as_str(), count);
            }
            let mut sc_hits = JsonObj::new();
            for (k, &count) in ScenarioKind::ALL.iter().zip(scenario_hits) {
                sc_hits = sc_hits.u64(k.as_str(), count);
            }
            let job_obj = JsonObj::new()
                .u64("submitted", jobs.submitted)
                .u64("completed", jobs.completed)
                .u64("failed", jobs.failed)
                .u64("cancelled", jobs.cancelled)
                .u64("retried", jobs.retried)
                .finish();
            JsonObj::new()
                .str("type", "stats")
                .u64("requests", *requests)
                .u64("shed", *shed)
                .u64("cache_hits", *cache_hits)
                .u64("cache_misses", *cache_misses)
                .u64("cache_evictions", *cache_evictions)
                .u64("cache_entries", *cache_entries)
                .u64("cache_bytes", *cache_bytes)
                .u64("sim_events", *sim_events)
                .u64("sim_events_per_sec", *sim_events_per_sec)
                .raw("strategy_hits", &hits.finish())
                .raw("scenario_hits", &sc_hits.finish())
                .u64("graphs", *graphs)
                .u64("fabrics", *fabrics)
                .raw("jobs", &job_obj)
                .raw("latency", &encode_verb_latency(latency))
                .finish()
        }
        Response::Metrics {
            window_ns,
            shards,
            queue_depth,
            cache_hits,
            cache_misses,
            jobs_pending,
            jobs_retried,
            hot_keys,
            verbs,
        } => JsonObj::new()
            .str("type", "metrics")
            .u64("window_ns", *window_ns)
            .u64("shards", *shards)
            .u64("queue_depth", *queue_depth)
            .u64("cache_hits", *cache_hits)
            .u64("cache_misses", *cache_misses)
            .u64("jobs_pending", *jobs_pending)
            .u64("jobs_retried", *jobs_retried)
            .u64("hot_keys", *hot_keys)
            .raw("verbs", &encode_verb_windows(verbs))
            .finish(),
        Response::Provisioned {
            n,
            blocks,
            total_block_ports,
            circuit_ports,
            ports_per_node,
            max_switch_hops,
        } => JsonObj::new()
            .str("type", "provisioned")
            .usize("n", *n)
            .usize("blocks", *blocks)
            .usize("total_block_ports", *total_block_ports)
            .usize("circuit_ports", *circuit_ports)
            .f64("ports_per_node", *ports_per_node)
            .usize("max_switch_hops", *max_switch_hops)
            .finish(),
        Response::CostReport {
            hfast,
            fat_tree,
            ratio,
            hfast_wins,
            hfast_ports_per_node,
            fat_tree_ports_per_node,
        } => JsonObj::new()
            .str("type", "cost")
            .f64("hfast", *hfast)
            .f64("fat_tree", *fat_tree)
            .f64("ratio", *ratio)
            .bool("hfast_wins", *hfast_wins)
            .f64("hfast_ports_per_node", *hfast_ports_per_node)
            .usize("fat_tree_ports_per_node", *fat_tree_ports_per_node)
            .finish(),
        Response::TdcReport { rows } => {
            let mut arr = String::from("[");
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    arr.push(',');
                }
                arr.push_str(
                    &JsonObj::new()
                        .u64("cutoff", r.cutoff)
                        .usize("max", r.max)
                        .usize("min", r.min)
                        .f64("avg", r.avg)
                        .usize("median", r.median)
                        .finish(),
                );
            }
            arr.push(']');
            JsonObj::new().str("type", "tdc").raw("rows", &arr).finish()
        }
        Response::SimReport {
            completed,
            unrouted,
            abandoned,
            delivered_bytes,
            max_latency_ns,
            makespan_ns,
            total_retries,
            reprovisions,
        } => JsonObj::new()
            .str("type", "sim")
            .usize("completed", *completed)
            .usize("unrouted", *unrouted)
            .usize("abandoned", *abandoned)
            .u64("delivered_bytes", *delivered_bytes)
            .u64("max_latency_ns", *max_latency_ns)
            .u64("makespan_ns", *makespan_ns)
            .u64("total_retries", *total_retries)
            .usize("reprovisions", *reprovisions)
            .finish(),
        Response::ScenarioReport {
            flows,
            completed,
            unrouted,
            makespan_ns,
            p95_latency_ns,
            trees,
            deepest,
            stall_ns,
            spread,
            off_root_victims,
            max_over_mean,
            gini,
        } => JsonObj::new()
            .str("type", "scenario")
            .usize("flows", *flows)
            .usize("completed", *completed)
            .usize("unrouted", *unrouted)
            .u64("makespan_ns", *makespan_ns)
            .u64("p95_latency_ns", *p95_latency_ns)
            .usize("trees", *trees)
            .usize("deepest", *deepest)
            .u64("stall_ns", *stall_ns)
            .f64("spread", *spread)
            .usize("off_root_victims", *off_root_victims)
            .f64("max_over_mean", *max_over_mean)
            .f64("gini", *gini)
            .finish(),
        Response::JobAccepted { id } => JsonObj::new().str("type", "job").u64("id", *id).finish(),
        Response::JobStatus {
            id,
            state,
            attempts,
            message,
        } => {
            let mut obj = JsonObj::new()
                .str("type", "job_status")
                .u64("id", *id)
                .str("state", state.as_str())
                .u64("attempts", u64::from(*attempts));
            // Omitted unless present, keeping the common statuses short.
            if let Some(m) = message {
                obj = obj.str("message", m);
            }
            obj.finish()
        }
        Response::Busy => JsonObj::new().str("type", "busy").finish(),
        Response::Ok => JsonObj::new().str("type", "ok").finish(),
        Response::Error { message } => JsonObj::new()
            .str("type", "error")
            .str("message", message)
            .finish(),
    }
}

fn need_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .map(|u| u as usize)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn need_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn need_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn need_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn need_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean field {key:?}")),
    }
}

fn decode_app(v: &JsonValue) -> Result<AppSpec, String> {
    let app = v.get("app").ok_or("missing field \"app\"")?;
    if app.get("name").is_some() {
        Ok(AppSpec::Named {
            name: need_str(app, "name")?.to_string(),
            procs: need_usize(app, "procs")?,
        })
    } else {
        let n = need_usize(app, "n")?;
        let rows = app
            .get("edges")
            .and_then(JsonValue::as_arr)
            .ok_or("inline app needs an \"edges\" array")?;
        let mut edges = Vec::with_capacity(rows.len());
        for row in rows {
            let cells = row.as_arr().ok_or("edge rows are arrays")?;
            if cells.len() != 5 {
                return Err("edge rows are [a,b,bytes,count,max_msg]".into());
            }
            let num = |i: usize| {
                cells[i]
                    .as_u64()
                    .ok_or_else(|| format!("edge cell {i} is not an integer"))
            };
            edges.push((
                num(0)? as usize,
                num(1)? as usize,
                num(2)?,
                num(3)?,
                num(4)?,
            ));
        }
        Ok(AppSpec::Inline { n, edges })
    }
}

fn decode_fabric(v: &JsonValue) -> Result<FabricSpec, String> {
    let fab = v.get("fabric").ok_or("missing field \"fabric\"")?;
    match need_str(fab, "kind")? {
        "fattree" => Ok(FabricSpec::FatTree {
            ports: need_usize(fab, "ports")?,
        }),
        "torus" => Ok(FabricSpec::Torus {
            dims: (
                need_usize(fab, "x")?,
                need_usize(fab, "y")?,
                need_usize(fab, "z")?,
            ),
        }),
        "hfast" => Ok(FabricSpec::Hfast),
        other => Err(format!("unknown fabric kind {other:?}")),
    }
}

fn decode_strategy(v: &JsonValue) -> Result<Option<Strategy>, String> {
    let Some(s) = v.get("strategy") else {
        return Ok(None);
    };
    let name = s.as_str().ok_or("strategy is a string")?;
    name.parse().map(Some)
}

fn decode_faults(v: &JsonValue) -> Result<Option<FaultSpec>, String> {
    let Some(f) = v.get("faults") else {
        return Ok(None);
    };
    let window = f
        .get("window")
        .and_then(JsonValue::as_arr)
        .ok_or("faults need a [lo,hi] \"window\"")?;
    if window.len() != 2 {
        return Err("fault window is [lo,hi]".into());
    }
    let bound = |i: usize| {
        window[i]
            .as_u64()
            .ok_or_else(|| format!("window bound {i} is not an integer"))
    };
    let downtime_ns = match f.get("downtime_ns") {
        None => None,
        Some(d) => Some(d.as_u64().ok_or("downtime_ns is not an integer")?),
    };
    Ok(Some(FaultSpec {
        seed: need_u64(f, "seed")?,
        count: need_usize(f, "count")?,
        window: (bound(0)?, bound(1)?),
        downtime_ns,
    }))
}

/// Reads the envelope version of a parsed frame: no `"v"` field is v1,
/// `"v":2` is v2, anything else is from the future and refused.
pub fn wire_version(v: &JsonValue) -> Result<WireVersion, String> {
    match v.get("v") {
        None => Ok(WireVersion::V1),
        Some(tag) => match tag.as_u64() {
            Some(2) => Ok(WireVersion::V2),
            Some(other) => Err(format!("unsupported wire version {other}")),
            None => Err("wire version tag must be an integer".into()),
        },
    }
}

/// Decodes one request frame in either envelope, reporting which one it
/// used so the response can answer in kind.
pub fn decode_request_versioned(text: &str) -> Result<(Request, WireVersion), String> {
    let v = json::parse(text)?;
    let version = wire_version(&v)?;
    Ok((decode_request_value(&v)?, version))
}

/// Decodes one request frame (either envelope; the version is dropped —
/// use [`decode_request_versioned`] to answer in kind).
pub fn decode_request(text: &str) -> Result<Request, String> {
    decode_request_versioned(text).map(|(req, _)| req)
}

fn decode_request_value(v: &JsonValue) -> Result<Request, String> {
    match need_str(v, "type")? {
        "health" => Ok(Request::Health),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "debug_panic" => Ok(Request::DebugPanic),
        "provision" => Ok(Request::Provision {
            app: decode_app(v)?,
            block_ports: need_usize(v, "block_ports")?,
            cutoff: need_u64(v, "cutoff")?,
            strategy: decode_strategy(v)?,
        }),
        "cost" => Ok(Request::Cost {
            app: decode_app(v)?,
            block_ports: need_usize(v, "block_ports")?,
            cutoff: need_u64(v, "cutoff")?,
        }),
        "tdc" => {
            let arr = v
                .get("cutoffs")
                .and_then(JsonValue::as_arr)
                .ok_or("tdc needs a \"cutoffs\" array")?;
            let mut cutoffs = Vec::with_capacity(arr.len());
            for c in arr {
                cutoffs.push(c.as_u64().ok_or("cutoffs are integers")?);
            }
            Ok(Request::Tdc {
                app: decode_app(v)?,
                cutoffs,
            })
        }
        "simulate" => Ok(Request::Simulate {
            app: decode_app(v)?,
            fabric: decode_fabric(v)?,
            cutoff: need_u64(v, "cutoff")?,
            faults: decode_faults(v)?,
            strategy: decode_strategy(v)?,
        }),
        "submit" => {
            let job = v.get("job").ok_or("submit needs a \"job\" object")?;
            let job = decode_request_value(job)?;
            if !job.spec().queueable {
                return Err(format!("verb {:?} is not queueable", job.endpoint()));
            }
            Ok(Request::Submit { job: Box::new(job) })
        }
        "poll" => Ok(Request::Poll {
            id: need_u64(v, "id")?,
        }),
        "fetch" => Ok(Request::Fetch {
            id: need_u64(v, "id")?,
        }),
        "cancel" => Ok(Request::Cancel {
            id: need_u64(v, "id")?,
        }),
        "metrics" => Ok(Request::Metrics),
        "scenario" => {
            let kind = need_str(v, "kind")?;
            let kind = ScenarioKind::parse(kind)
                .ok_or_else(|| format!("unknown scenario kind {kind:?}"))?;
            let flows = match v.get("flows") {
                None => None,
                Some(f) => Some(f.as_u64().ok_or("flows is not an integer")? as usize),
            };
            let bytes = match v.get("bytes") {
                None => None,
                Some(b) => Some(b.as_u64().ok_or("bytes is not an integer")?),
            };
            let credits = match v.get("credits") {
                None => None,
                Some(c) => Some(c.as_u64().ok_or("credits is not an integer")? as u32),
            };
            Ok(Request::Scenario {
                kind,
                nodes: need_usize(v, "nodes")?,
                flows,
                bytes,
                seed: need_u64(v, "seed")?,
                fabric: decode_fabric(v)?,
                strategy: decode_strategy(v)?,
                credits,
            })
        }
        other => Err(format!("unknown request type {other:?}")),
    }
}

/// Decodes one response frame in either envelope, reporting which one it
/// used.
pub fn decode_response_versioned(text: &str) -> Result<(Response, WireVersion), String> {
    let v = json::parse(text)?;
    let version = wire_version(&v)?;
    Ok((decode_response_value(&v)?, version))
}

/// Decodes one response frame (either envelope).
pub fn decode_response(text: &str) -> Result<Response, String> {
    decode_response_versioned(text).map(|(resp, _)| resp)
}

fn decode_response_value(v: &JsonValue) -> Result<Response, String> {
    match need_str(v, "type")? {
        "health" => Ok(Response::Health {
            workers: need_usize(v, "workers")?,
            queue: need_usize(v, "queue")?,
        }),
        "stats" => {
            let hits = v.get("strategy_hits").ok_or("stats needs strategy_hits")?;
            let mut strategy_hits = [0u64; 3];
            for (s, slot) in Strategy::ALL.iter().zip(strategy_hits.iter_mut()) {
                *slot = need_u64(hits, s.as_str())?;
            }
            let sc = v.get("scenario_hits").ok_or("stats needs scenario_hits")?;
            let mut scenario_hits = [0u64; 5];
            for (k, slot) in ScenarioKind::ALL.iter().zip(scenario_hits.iter_mut()) {
                *slot = need_u64(sc, k.as_str())?;
            }
            let job_obj = v.get("jobs").ok_or("stats needs jobs")?;
            let jobs = JobTotals {
                submitted: need_u64(job_obj, "submitted")?,
                completed: need_u64(job_obj, "completed")?,
                failed: need_u64(job_obj, "failed")?,
                cancelled: need_u64(job_obj, "cancelled")?,
                retried: need_u64(job_obj, "retried")?,
            };
            let lat_arr = v
                .get("latency")
                .and_then(JsonValue::as_arr)
                .ok_or("stats needs a \"latency\" array")?;
            let mut latency = Vec::with_capacity(lat_arr.len());
            for row in lat_arr {
                latency.push(VerbLatency {
                    verb: need_str(row, "verb")?.to_string(),
                    count: need_u64(row, "count")?,
                    p50_ns: need_u64(row, "p50_ns")?,
                    p95_ns: need_u64(row, "p95_ns")?,
                    p99_ns: need_u64(row, "p99_ns")?,
                });
            }
            Ok(Response::Stats {
                requests: need_u64(v, "requests")?,
                shed: need_u64(v, "shed")?,
                cache_hits: need_u64(v, "cache_hits")?,
                cache_misses: need_u64(v, "cache_misses")?,
                cache_evictions: need_u64(v, "cache_evictions")?,
                cache_entries: need_u64(v, "cache_entries")?,
                cache_bytes: need_u64(v, "cache_bytes")?,
                sim_events: need_u64(v, "sim_events")?,
                sim_events_per_sec: need_u64(v, "sim_events_per_sec")?,
                strategy_hits,
                scenario_hits,
                graphs: need_u64(v, "graphs")?,
                fabrics: need_u64(v, "fabrics")?,
                jobs,
                latency,
            })
        }
        "metrics" => {
            let verb_arr = v
                .get("verbs")
                .and_then(JsonValue::as_arr)
                .ok_or("metrics needs a \"verbs\" array")?;
            let mut verbs = Vec::with_capacity(verb_arr.len());
            for row in verb_arr {
                verbs.push(VerbWindow {
                    verb: need_str(row, "verb")?.to_string(),
                    count: need_u64(row, "count")?,
                    ok: need_u64(row, "ok")?,
                    busy: need_u64(row, "busy")?,
                    errors: need_u64(row, "errors")?,
                    p50_ns: need_u64(row, "p50_ns")?,
                    p95_ns: need_u64(row, "p95_ns")?,
                    p99_ns: need_u64(row, "p99_ns")?,
                });
            }
            Ok(Response::Metrics {
                window_ns: need_u64(v, "window_ns")?,
                shards: need_u64(v, "shards")?,
                queue_depth: need_u64(v, "queue_depth")?,
                cache_hits: need_u64(v, "cache_hits")?,
                cache_misses: need_u64(v, "cache_misses")?,
                jobs_pending: need_u64(v, "jobs_pending")?,
                jobs_retried: need_u64(v, "jobs_retried")?,
                hot_keys: need_u64(v, "hot_keys")?,
                verbs,
            })
        }
        "provisioned" => Ok(Response::Provisioned {
            n: need_usize(v, "n")?,
            blocks: need_usize(v, "blocks")?,
            total_block_ports: need_usize(v, "total_block_ports")?,
            circuit_ports: need_usize(v, "circuit_ports")?,
            ports_per_node: need_f64(v, "ports_per_node")?,
            max_switch_hops: need_usize(v, "max_switch_hops")?,
        }),
        "cost" => Ok(Response::CostReport {
            hfast: need_f64(v, "hfast")?,
            fat_tree: need_f64(v, "fat_tree")?,
            ratio: need_f64(v, "ratio")?,
            hfast_wins: need_bool(v, "hfast_wins")?,
            hfast_ports_per_node: need_f64(v, "hfast_ports_per_node")?,
            fat_tree_ports_per_node: need_usize(v, "fat_tree_ports_per_node")?,
        }),
        "tdc" => {
            let arr = v
                .get("rows")
                .and_then(JsonValue::as_arr)
                .ok_or("tdc response needs \"rows\"")?;
            let mut rows = Vec::with_capacity(arr.len());
            for r in arr {
                rows.push(TdcRow {
                    cutoff: need_u64(r, "cutoff")?,
                    max: need_usize(r, "max")?,
                    min: need_usize(r, "min")?,
                    avg: need_f64(r, "avg")?,
                    median: need_usize(r, "median")?,
                });
            }
            Ok(Response::TdcReport { rows })
        }
        "sim" => Ok(Response::SimReport {
            completed: need_usize(v, "completed")?,
            unrouted: need_usize(v, "unrouted")?,
            abandoned: need_usize(v, "abandoned")?,
            delivered_bytes: need_u64(v, "delivered_bytes")?,
            max_latency_ns: need_u64(v, "max_latency_ns")?,
            makespan_ns: need_u64(v, "makespan_ns")?,
            total_retries: need_u64(v, "total_retries")?,
            reprovisions: need_usize(v, "reprovisions")?,
        }),
        "scenario" => Ok(Response::ScenarioReport {
            flows: need_usize(v, "flows")?,
            completed: need_usize(v, "completed")?,
            unrouted: need_usize(v, "unrouted")?,
            makespan_ns: need_u64(v, "makespan_ns")?,
            p95_latency_ns: need_u64(v, "p95_latency_ns")?,
            trees: need_usize(v, "trees")?,
            deepest: need_usize(v, "deepest")?,
            stall_ns: need_u64(v, "stall_ns")?,
            spread: need_f64(v, "spread")?,
            off_root_victims: need_usize(v, "off_root_victims")?,
            max_over_mean: need_f64(v, "max_over_mean")?,
            gini: need_f64(v, "gini")?,
        }),
        "job" => Ok(Response::JobAccepted {
            id: need_u64(v, "id")?,
        }),
        "job_status" => {
            let state = JobState::parse(need_str(v, "state")?)
                .ok_or_else(|| "unknown job state".to_string())?;
            let message = match v.get("message") {
                None => None,
                Some(m) => Some(m.as_str().ok_or("message is a string")?.to_string()),
            };
            Ok(Response::JobStatus {
                id: need_u64(v, "id")?,
                state,
                attempts: need_u64(v, "attempts")? as u32,
                message,
            })
        }
        "busy" => Ok(Response::Busy),
        "ok" => Ok(Response::Ok),
        "error" => Ok(Response::Error {
            message: need_str(v, "message")?.to_string(),
        }),
        other => Err(format!("unknown response type {other:?}")),
    }
}

/// FNV-1a hash of a canonical request encoding — the response-cache key.
pub fn request_key(canonical: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in canonical.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Health,
            Request::Stats,
            Request::Shutdown,
            Request::DebugPanic,
            Request::Provision {
                app: AppSpec::Named {
                    name: "GTC".into(),
                    procs: 64,
                },
                block_ports: 16,
                cutoff: 2048,
                strategy: None,
            },
            Request::Provision {
                app: AppSpec::Named {
                    name: "GTC".into(),
                    procs: 64,
                },
                block_ports: 16,
                cutoff: 2048,
                strategy: Some(Strategy::BffCircuit),
            },
            Request::Cost {
                app: AppSpec::Inline {
                    n: 4,
                    edges: vec![(0, 1, 4096, 2, 4096), (2, 3, 100, 1, 100)],
                },
                block_ports: 8,
                cutoff: 0,
            },
            Request::Tdc {
                app: AppSpec::Named {
                    name: "Cactus".into(),
                    procs: 64,
                },
                cutoffs: vec![0, 2048, 1 << 20],
            },
            Request::Simulate {
                app: AppSpec::Named {
                    name: "LBMHD".into(),
                    procs: 64,
                },
                fabric: FabricSpec::Torus { dims: (4, 4, 4) },
                cutoff: 2048,
                faults: Some(FaultSpec {
                    seed: 7,
                    count: 2,
                    window: (0, 500_000),
                    downtime_ns: Some(100_000),
                }),
                strategy: None,
            },
            Request::Simulate {
                app: AppSpec::Named {
                    name: "LBMHD".into(),
                    procs: 64,
                },
                fabric: FabricSpec::Hfast,
                cutoff: 2048,
                faults: None,
                strategy: Some(Strategy::DemandDecomp),
            },
            Request::Submit {
                job: Box::new(Request::Simulate {
                    app: AppSpec::Named {
                        name: "GTC".into(),
                        procs: 64,
                    },
                    fabric: FabricSpec::Hfast,
                    cutoff: 2048,
                    faults: None,
                    strategy: None,
                }),
            },
            Request::Poll { id: 7 },
            Request::Fetch { id: (3 << 40) | 9 },
            Request::Cancel { id: 0 },
            Request::Metrics,
            Request::Scenario {
                kind: ScenarioKind::Incast,
                nodes: 64,
                flows: None,
                bytes: None,
                seed: 0xC0DE,
                fabric: FabricSpec::FatTree { ports: 8 },
                strategy: None,
                credits: None,
            },
            Request::Scenario {
                kind: ScenarioKind::MultiTenant,
                nodes: 32,
                flows: Some(96),
                bytes: Some(128 << 10),
                seed: 7,
                fabric: FabricSpec::Hfast,
                strategy: Some(Strategy::DemandDecomp),
                credits: Some(2),
            },
        ];
        for req in reqs {
            let enc = encode_request(&req);
            let dec = decode_request(&enc).expect("canonical encoding decodes");
            assert_eq!(dec, req, "round trip changed {enc}");
            assert_eq!(encode_request(&dec), enc, "re-encoding not canonical");
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Health {
                workers: 4,
                queue: 64,
            },
            Response::Busy,
            Response::Ok,
            Response::Error {
                message: "bad \"app\"\nline".into(),
            },
            Response::TdcReport {
                rows: vec![TdcRow {
                    cutoff: 2048,
                    max: 6,
                    min: 3,
                    avg: 5.25,
                    median: 5,
                }],
            },
            Response::Stats {
                requests: 10,
                shed: 1,
                cache_hits: 4,
                cache_misses: 6,
                cache_evictions: 0,
                cache_entries: 6,
                cache_bytes: 1234,
                sim_events: 99,
                sim_events_per_sec: 1_000_000,
                strategy_hits: [3, 2, 1],
                scenario_hits: [5, 0, 1, 2, 3],
                graphs: 5,
                fabrics: 2,
                jobs: JobTotals {
                    submitted: 4,
                    completed: 2,
                    failed: 1,
                    cancelled: 1,
                    retried: 3,
                },
                latency: vec![
                    VerbLatency {
                        verb: "health".into(),
                        count: 3,
                        p50_ns: 100,
                        p95_ns: 200,
                        p99_ns: 300,
                    },
                    VerbLatency {
                        verb: "simulate".into(),
                        count: 0,
                        p50_ns: 0,
                        p95_ns: 0,
                        p99_ns: 0,
                    },
                ],
            },
            Response::Metrics {
                window_ns: 10_000_000_000,
                shards: 2,
                queue_depth: 3,
                cache_hits: 40,
                cache_misses: 12,
                jobs_pending: 1,
                jobs_retried: 2,
                hot_keys: 1,
                verbs: vec![VerbWindow {
                    verb: "provision".into(),
                    count: 9,
                    ok: 8,
                    busy: 1,
                    errors: 0,
                    p50_ns: 1_000,
                    p95_ns: 2_000,
                    p99_ns: 4_000,
                }],
            },
            Response::ScenarioReport {
                flows: 126,
                completed: 126,
                unrouted: 0,
                makespan_ns: 4_230_590,
                p95_latency_ns: 3_000_000,
                trees: 5,
                deepest: 5,
                stall_ns: 500_414_029,
                spread: 22.75,
                off_root_victims: 228,
                max_over_mean: 51.75,
                gini: 0.8125,
            },
            Response::JobAccepted { id: (1 << 40) | 12 },
            Response::JobStatus {
                id: 12,
                state: JobState::Running,
                attempts: 2,
                message: None,
            },
            Response::JobStatus {
                id: 13,
                state: JobState::Failed,
                attempts: 4,
                message: Some("panicked: \"boom\"".into()),
            },
        ];
        for resp in resps {
            let enc = encode_response(&resp);
            let dec = decode_response(&enc).expect("canonical encoding decodes");
            assert_eq!(dec, resp, "round trip changed {enc}");
            // The v2 wrap of the same body must round-trip too, and report
            // its version.
            let v2 = envelope_v2(&enc);
            let (dec2, ver) = decode_response_versioned(&v2).expect("v2 decodes");
            assert_eq!(dec2, resp);
            assert_eq!(ver, WireVersion::V2);
        }
    }

    /// Strategy-less requests must encode to exactly the pre-strategy wire
    /// bytes: these literals are pinned from before the `strategy` field
    /// existed, so old clients keep their cache keys (and cached entries)
    /// across the upgrade.
    #[test]
    fn strategyless_requests_keep_the_legacy_wire_format() {
        let provision = Request::Provision {
            app: AppSpec::Named {
                name: "GTC".into(),
                procs: 64,
            },
            block_ports: 16,
            cutoff: 2048,
            strategy: None,
        };
        assert_eq!(
            encode_request(&provision),
            r#"{"type":"provision","app":{"name":"GTC","procs":64},"block_ports":16,"cutoff":2048}"#
        );
        let simulate = Request::Simulate {
            app: AppSpec::Inline {
                n: 4,
                edges: vec![(0, 1, 4096, 2, 4096)],
            },
            fabric: FabricSpec::Hfast,
            cutoff: 2048,
            faults: None,
            strategy: None,
        };
        assert_eq!(
            encode_request(&simulate),
            r#"{"type":"simulate","app":{"n":4,"edges":[[0,1,4096,2,4096]]},"fabric":{"kind":"hfast"},"cutoff":2048}"#
        );
        // Naming the default strategy explicitly is a *different* request
        // (and key): equivalence is semantic, not wire-level.
        let explicit = Request::Provision {
            app: AppSpec::Named {
                name: "GTC".into(),
                procs: 64,
            },
            block_ports: 16,
            cutoff: 2048,
            strategy: Some(Strategy::PaperLinear),
        };
        assert_ne!(
            request_key(&encode_request(&provision)),
            request_key(&encode_request(&explicit))
        );
    }

    #[test]
    fn unknown_strategy_is_a_structured_error() {
        let enc = r#"{"type":"provision","app":{"name":"GTC","procs":64},"block_ports":16,"cutoff":2048,"strategy":"warp_speed"}"#;
        assert!(decode_request(enc).is_err());
    }

    #[test]
    fn keys_separate_distinct_requests() {
        let a = encode_request(&Request::Health);
        let b = encode_request(&Request::Stats);
        assert_ne!(request_key(&a), request_key(&b));
        assert_eq!(request_key(&a), request_key(&a));
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        assert!(decode_request("").is_err());
        assert!(decode_request("{}").is_err());
        assert!(decode_request(r#"{"type":"warp"}"#).is_err());
        assert!(decode_request(r#"{"type":"tdc","app":{"name":"GTC"}}"#).is_err());
        assert!(decode_request(r#"{"type":"provision","app":{"n":2,"edges":[[0]]}}"#).is_err());
        // v3 does not exist yet; refusing it beats misreading it as v1.
        assert!(decode_request(r#"{"v":3,"type":"health"}"#).is_err());
        assert!(decode_request(r#"{"v":2,"type":"warp"}"#).is_err());
    }

    /// The v2 envelope is the v1 body with a leading `"v":2` member: same
    /// canonical field order after the tag, and `decode_request_versioned`
    /// reports which envelope arrived so the server can answer in kind.
    #[test]
    fn v2_envelope_wraps_the_v1_body() {
        let provision = Request::Provision {
            app: AppSpec::Named {
                name: "GTC".into(),
                procs: 64,
            },
            block_ports: 16,
            cutoff: 2048,
            strategy: None,
        };
        assert_eq!(
            encode_request_versioned(&provision, WireVersion::V2),
            r#"{"v":2,"type":"provision","app":{"name":"GTC","procs":64},"block_ports":16,"cutoff":2048}"#
        );
        assert_eq!(
            encode_request_versioned(&provision, WireVersion::V1),
            encode_request(&provision)
        );
        let (dec, ver) =
            decode_request_versioned(&encode_request_versioned(&provision, WireVersion::V2))
                .expect("v2 decodes");
        assert_eq!(dec, provision);
        assert_eq!(ver, WireVersion::V2);
        let (dec, ver) = decode_request_versioned(&encode_request(&provision)).expect("v1 decodes");
        assert_eq!(dec, provision);
        assert_eq!(ver, WireVersion::V1);
        // Cache keys are always computed over the canonical v1 body, so a
        // v2 client shares cached entries with v1 clients.
        assert_ne!(
            request_key(&encode_request(&provision)),
            request_key(&encode_request_versioned(&provision, WireVersion::V2)),
        );
        assert_eq!(
            encode_response_versioned(&Response::Busy, WireVersion::V2),
            r#"{"v":2,"type":"busy"}"#
        );
    }

    /// The traced envelope inserts exactly one `trace` member after the
    /// version tag; stripping either v2 form recovers the byte-exact v1
    /// body, and decode surfaces the context without disturbing the
    /// version report.
    #[test]
    fn traced_envelope_round_trips_and_strips() {
        use hfast_trace::{client_span_id, TraceContext};
        let body = encode_request(&Request::Health);
        let ctx = TraceContext {
            trace_id: 3,
            parent_id: client_span_id(3),
        };
        let framed = envelope_traced(&body, ctx);
        assert_eq!(
            framed,
            r#"{"v":2,"trace":{"id":"3","parent":"1000000000000003"},"type":"health"}"#
        );
        let (req, ver, got) = decode_request_traced(&framed).expect("traced frame decodes");
        assert_eq!(req, Request::Health);
        assert_eq!(ver, WireVersion::V2);
        assert_eq!(got, Some(ctx), "span ids above 2^53 survive the wire");
        // Context-free frames in both envelopes report None.
        let (_, _, none) = decode_request_traced(&envelope_v2(&body)).unwrap();
        assert_eq!(none, None);
        let (_, _, none) = decode_request_traced(&body).unwrap();
        assert_eq!(none, None);
        // Stripping any envelope form recovers the canonical v1 body.
        assert_eq!(strip_envelope(&framed), body);
        assert_eq!(strip_envelope(&envelope_v2(&body)), body);
        assert_eq!(strip_envelope(&body), body);
        // A trace member without the v2 tag, or malformed ids, is refused.
        assert!(
            decode_request_traced(r#"{"trace":{"id":"1","parent":"2"},"type":"health"}"#).is_err()
        );
        assert!(
            decode_request_traced(r#"{"v":2,"trace":{"id":7,"parent":"2"},"type":"health"}"#)
                .is_err(),
            "numeric ids would round through f64 parsers"
        );
        assert!(decode_request_traced(
            r#"{"v":2,"trace":{"id":"xyz","parent":"2"},"type":"health"}"#
        )
        .is_err());
    }

    /// The scenario verb pins its wire form, and its cache keys separate
    /// every knob: kind, nodes, overrides, seed, fabric, strategy, and
    /// credits all land in the canonical encoding.
    #[test]
    fn scenario_requests_pin_their_wire_format_and_keys() {
        let preset = Request::Scenario {
            kind: ScenarioKind::Incast,
            nodes: 64,
            flows: None,
            bytes: None,
            seed: 49374,
            fabric: FabricSpec::FatTree { ports: 8 },
            strategy: None,
            credits: None,
        };
        assert_eq!(
            encode_request(&preset),
            r#"{"type":"scenario","kind":"incast","nodes":64,"seed":49374,"fabric":{"kind":"fattree","ports":8}}"#
        );
        let full = Request::Scenario {
            kind: ScenarioKind::HotSpot,
            nodes: 32,
            flows: Some(64),
            bytes: Some(65536),
            seed: 5,
            fabric: FabricSpec::Hfast,
            strategy: Some(Strategy::BffCircuit),
            credits: Some(2),
        };
        assert_eq!(
            encode_request(&full),
            r#"{"type":"scenario","kind":"hotspot","nodes":32,"flows":64,"bytes":65536,"seed":5,"fabric":{"kind":"hfast"},"strategy":"bff_circuit","credits":2}"#
        );
        // Every knob separates the cache key from the preset's.
        let key = |r: &Request| request_key(&encode_request(r));
        let mut variants = vec![preset.clone()];
        let mutators: [fn(&mut Request); 8] = [
            |r| {
                let Request::Scenario { kind, .. } = r else {
                    unreachable!()
                };
                *kind = ScenarioKind::Bursty;
            },
            |r| {
                let Request::Scenario { nodes, .. } = r else {
                    unreachable!()
                };
                *nodes = 32;
            },
            |r| {
                let Request::Scenario { flows, .. } = r else {
                    unreachable!()
                };
                *flows = Some(10);
            },
            |r| {
                let Request::Scenario { bytes, .. } = r else {
                    unreachable!()
                };
                *bytes = Some(1024);
            },
            |r| {
                let Request::Scenario { seed, .. } = r else {
                    unreachable!()
                };
                *seed = 1;
            },
            |r| {
                let Request::Scenario { fabric, .. } = r else {
                    unreachable!()
                };
                *fabric = FabricSpec::Hfast;
            },
            |r| {
                let Request::Scenario { strategy, .. } = r else {
                    unreachable!()
                };
                *strategy = Some(Strategy::PaperLinear);
            },
            |r| {
                let Request::Scenario { credits, .. } = r else {
                    unreachable!()
                };
                *credits = Some(4);
            },
        ];
        for f in mutators {
            let mut v = preset.clone();
            f(&mut v);
            variants.push(v);
        }
        for (i, a) in variants.iter().enumerate() {
            for b in variants.iter().skip(i + 1) {
                assert_ne!(key(a), key(b), "{a:?} and {b:?} collide");
            }
        }
        // An unknown kind is a structured decode error.
        assert!(decode_request(
            r#"{"type":"scenario","kind":"warp","nodes":8,"seed":1,"fabric":{"kind":"hfast"}}"#
        )
        .is_err());
    }

    /// Job verbs pin their wire form: submit nests the inner request
    /// verbatim, poll/fetch/cancel are `{"type":...,"id":N}`.
    #[test]
    fn job_verbs_pin_their_wire_format() {
        let submit = Request::Submit {
            job: Box::new(Request::Simulate {
                app: AppSpec::Named {
                    name: "GTC".into(),
                    procs: 64,
                },
                fabric: FabricSpec::Hfast,
                cutoff: 2048,
                faults: None,
                strategy: None,
            }),
        };
        assert_eq!(
            encode_request(&submit),
            r#"{"type":"submit","job":{"type":"simulate","app":{"name":"GTC","procs":64},"fabric":{"kind":"hfast"},"cutoff":2048}}"#
        );
        assert_eq!(
            encode_request(&Request::Poll { id: 7 }),
            r#"{"type":"poll","id":7}"#
        );
        assert_eq!(
            encode_response(&Response::JobAccepted { id: 7 }),
            r#"{"type":"job","id":7}"#
        );
        assert_eq!(
            encode_response(&Response::JobStatus {
                id: 7,
                state: JobState::Queued,
                attempts: 0,
                message: None,
            }),
            r#"{"type":"job_status","id":7,"state":"queued","attempts":0}"#
        );
        // Only simulate-shaped work (and the deterministic panic probe) is
        // queueable; submitting a submit is a decode-level error.
        let nested = r#"{"type":"submit","job":{"type":"submit","job":{"type":"health"}}}"#;
        assert!(decode_request(nested).is_err());
        let unqueueable = r#"{"type":"submit","job":{"type":"health"}}"#;
        assert!(decode_request(unqueueable).is_err());
    }

    /// The verb table is the single source of truth: every row's name is
    /// the endpoint string, indexes match `verb_index`, and the first
    /// eight rows keep their pre-table order (obs metric stability).
    #[test]
    fn verb_table_is_consistent() {
        assert_eq!(VERBS.len(), ENDPOINTS.len());
        for (i, spec) in VERBS.iter().enumerate() {
            assert_eq!(spec.name, ENDPOINTS[i]);
        }
        assert_eq!(
            &ENDPOINTS[..8],
            &[
                "health",
                "stats",
                "provision",
                "cost",
                "tdc",
                "simulate",
                "shutdown",
                "debug_panic"
            ]
        );
        let poll = Request::Poll { id: 1 };
        assert_eq!(poll.endpoint(), "poll");
        assert_eq!(ENDPOINTS[poll.endpoint_index()], "poll");
        assert!(!poll.cacheable());
        let scenario = Request::Scenario {
            kind: ScenarioKind::Bursty,
            nodes: 16,
            flows: None,
            bytes: None,
            seed: 1,
            fabric: FabricSpec::Hfast,
            strategy: None,
            credits: None,
        };
        assert_eq!(scenario.endpoint(), "scenario");
        assert!(scenario.cacheable(), "seeded replays are pure functions");
        // Queueable rows are exactly simulate and debug_panic.
        let queueable: Vec<&str> = VERBS
            .iter()
            .filter(|s| s.queueable)
            .map(|s| s.name)
            .collect();
        assert_eq!(queueable, ["simulate", "debug_panic"]);
        // Cacheable rows never include the stateful job verbs.
        for spec in VERBS.iter().filter(|s| s.cacheable) {
            assert!(matches!(spec.handler, VerbHandler::Worker(_)));
        }
    }
}
