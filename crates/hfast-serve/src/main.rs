//! `hfast-serve` binary: run the daemon, or exercise it end to end.
//!
//! ```text
//! hfast-serve [ADDR]        serve on ADDR (default 127.0.0.1:4711)
//!                           until a client sends `shutdown`
//! hfast-serve --self-test   start on an ephemeral port, drive every
//!                           endpoint through a real socket, verify the
//!                           answers, drain, exit non-zero on failure
//! ```
//!
//! The self-test is the smoke `verify.sh` runs: it proves the daemon
//! binds, serves all endpoints, caches repeats, isolates a handler
//! panic, and drains cleanly — in a few hundred milliseconds.

use std::process::ExitCode;

use hfast_serve::{
    start, AppSpec, Client, FabricSpec, JobState, Request, Response, ScenarioKind, ServerConfig,
    WireVersion,
};

fn self_test() -> Result<(), String> {
    // The debug_panic probe panics a worker on purpose; one quiet line
    // beats a full backtrace in the middle of a smoke run.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("hfast-serve self-test: worker panic contained ({info})");
    }));
    let server =
        start("127.0.0.1:0", ServerConfig::from_env()).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let app = AppSpec::Named {
        name: "GTC".into(),
        procs: 16,
    };

    match client.call(&Request::Health) {
        Ok(Response::Health { workers, .. }) if workers > 0 => {}
        other => return Err(format!("health: unexpected {other:?}")),
    }
    match client.call(&Request::Provision {
        app: app.clone(),
        block_ports: 16,
        cutoff: 2048,
        strategy: None,
    }) {
        Ok(Response::Provisioned { n, blocks, .. }) if n == 16 && blocks > 0 => {}
        other => return Err(format!("provision: unexpected {other:?}")),
    }
    // Explicit non-default strategy: same graph, independently provisioned.
    match client.call(&Request::Provision {
        app: app.clone(),
        block_ports: 16,
        cutoff: 2048,
        strategy: Some(hfast_serve::Strategy::BffCircuit),
    }) {
        Ok(Response::Provisioned { n, blocks, .. }) if n == 16 && blocks > 0 => {}
        other => return Err(format!("provision (bff): unexpected {other:?}")),
    }
    match client.call(&Request::Cost {
        app: app.clone(),
        block_ports: 16,
        cutoff: 2048,
    }) {
        Ok(Response::CostReport { ratio, .. }) if ratio > 0.0 => {}
        other => return Err(format!("cost: unexpected {other:?}")),
    }
    match client.call(&Request::Tdc {
        app: app.clone(),
        cutoffs: vec![0, 2048, 1 << 20],
    }) {
        Ok(Response::TdcReport { rows }) if rows.len() == 3 => {}
        other => return Err(format!("tdc: unexpected {other:?}")),
    }
    let sim = Request::Simulate {
        app: app.clone(),
        fabric: FabricSpec::FatTree { ports: 16 },
        cutoff: 2048,
        faults: None,
        strategy: None,
    };
    let first = match client.call(&sim) {
        Ok(Response::SimReport {
            completed,
            delivered_bytes,
            ..
        }) if completed > 0 => (completed, delivered_bytes),
        other => return Err(format!("simulate: unexpected {other:?}")),
    };
    // Repeat must be served from cache and byte-identical in effect.
    match client.call(&sim) {
        Ok(Response::SimReport {
            completed,
            delivered_bytes,
            ..
        }) if (completed, delivered_bytes) == first => {}
        other => return Err(format!("simulate repeat: unexpected {other:?}")),
    }
    // The same cached answer through the v2 envelope: version negotiation
    // must not change what the daemon computes.
    match client.call_versioned(&sim, WireVersion::V2) {
        Ok(Response::SimReport {
            completed,
            delivered_bytes,
            ..
        }) if (completed, delivered_bytes) == first => {}
        other => return Err(format!("simulate (v2): unexpected {other:?}")),
    }
    // Submit the same work as a durable job and drive it to completion.
    let job_id = match client.call(&Request::Submit {
        job: Box::new(sim.clone()),
    }) {
        Ok(Response::JobAccepted { id }) => id,
        other => return Err(format!("submit: unexpected {other:?}")),
    };
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match client.call(&Request::Poll { id: job_id }) {
            Ok(Response::JobStatus {
                state: JobState::Done,
                ..
            }) => break,
            Ok(Response::JobStatus { state, .. }) if !state.is_terminal() => {
                if std::time::Instant::now() >= deadline {
                    return Err("poll: job never finished".into());
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            other => return Err(format!("poll: unexpected {other:?}")),
        }
    }
    match client.call(&Request::Fetch { id: job_id }) {
        Ok(Response::SimReport {
            completed,
            delivered_bytes,
            ..
        }) if (completed, delivered_bytes) == first => {}
        other => return Err(format!("fetch: unexpected {other:?}")),
    }
    // Adversarial scenario replay under credit flow control: incast on a
    // fat tree must complete every flow and form at least one congestion
    // tree rooted at the receiver's access link.
    let scenario = Request::Scenario {
        kind: ScenarioKind::Incast,
        nodes: 16,
        flows: None,
        bytes: None,
        seed: 0xC0DE,
        fabric: FabricSpec::FatTree { ports: 8 },
        strategy: None,
        credits: None,
    };
    let sc_first = match client.call(&scenario) {
        Ok(Response::ScenarioReport {
            flows,
            completed,
            unrouted,
            trees,
            makespan_ns,
            ..
        }) if completed == flows && unrouted == 0 && trees > 0 => (completed, makespan_ns),
        other => return Err(format!("scenario: unexpected {other:?}")),
    };
    // The repeat is served from cache: identical report, and the registry
    // counts exactly one real replay (hits never reach the handler).
    match client.call(&scenario) {
        Ok(Response::ScenarioReport {
            completed,
            makespan_ns,
            ..
        }) if (completed, makespan_ns) == sc_first => {}
        other => return Err(format!("scenario repeat: unexpected {other:?}")),
    }
    match client.call(&Request::DebugPanic) {
        Ok(Response::Error { message }) if message.contains("panicked") => {}
        other => return Err(format!("debug_panic: unexpected {other:?}")),
    }
    // The worker that just panicked must still answer — and the stats it
    // reports now carry lifetime per-verb latency quantiles.
    match client.call(&Request::Stats) {
        Ok(Response::Stats {
            requests,
            cache_hits,
            sim_events,
            strategy_hits,
            scenario_hits,
            jobs,
            latency,
            ..
        }) if requests >= 9
            && cache_hits >= 2
            && sim_events > 0
            && strategy_hits[0] >= 1
            && strategy_hits[1] >= 1
            && scenario_hits.iter().sum::<u64>() == 1
            && jobs.completed >= 1 =>
        {
            if latency.len() != hfast_serve::ENDPOINTS.len() {
                return Err(format!("stats: {} latency rows", latency.len()));
            }
            if !latency.iter().any(|row| row.count > 0 && row.p50_ns > 0) {
                return Err(format!("stats: no verb recorded a latency: {latency:?}"));
            }
        }
        other => return Err(format!("stats: unexpected {other:?}")),
    }
    // The rolling window has seen the same traffic: every verb row is
    // present, and the verbs this test exercised report tail latencies.
    match client.call(&Request::Metrics) {
        Ok(Response::Metrics {
            window_ns,
            shards: 1,
            verbs,
            ..
        }) if window_ns > 0 => {
            if verbs.len() != hfast_serve::ENDPOINTS.len() {
                return Err(format!("metrics: {} verb rows", verbs.len()));
            }
            if !verbs
                .iter()
                .any(|row| row.count > 0 && row.ok > 0 && row.p99_ns > 0)
            {
                return Err(format!("metrics: no verb has rolling traffic: {verbs:?}"));
            }
        }
        other => return Err(format!("metrics: unexpected {other:?}")),
    }
    match client.call(&Request::Shutdown) {
        Ok(Response::Ok) => {}
        other => return Err(format!("shutdown: unexpected {other:?}")),
    }
    server.join();
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--self-test") => match self_test() {
            Ok(()) => {
                println!("hfast-serve self-test: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hfast-serve self-test: FAILED: {e}");
                ExitCode::FAILURE
            }
        },
        Some(flag) if flag.starts_with('-') => {
            eprintln!("usage: hfast-serve [ADDR | --self-test]");
            ExitCode::FAILURE
        }
        addr => {
            let addr = addr.unwrap_or("127.0.0.1:4711");
            match start(addr, ServerConfig::from_env()) {
                Ok(server) => {
                    eprintln!("hfast-serve listening on {}", server.local_addr());
                    server.join(); // drains when a client sends `shutdown`
                    eprintln!("hfast-serve drained");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("hfast-serve: cannot bind {addr}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
