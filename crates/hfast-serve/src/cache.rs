//! Sharded in-memory response cache with byte-budget LRU eviction.
//!
//! Every cacheable endpoint is a pure function of its canonical request
//! encoding, so the cache maps `request_key` (FNV-1a of that encoding) to
//! the encoded response. Keys spread over `N` shards, each behind its own
//! mutex, so concurrent connections rarely contend on one lock; each
//! shard owns `budget / N` bytes and evicts least-recently-used entries
//! when an insert would overflow it. Hit/miss/eviction counts use the
//! relaxed `hfast_obs` counters — reading them never perturbs serving.

use std::collections::HashMap;
use std::sync::Mutex;

use hfast_obs::Counter;

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a fresh entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries resident now.
    pub entries: u64,
    /// Payload bytes resident now.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct Shard {
    /// key → (response, last-use tick).
    entries: HashMap<u64, (String, u64)>,
    bytes: usize,
    tick: u64,
}

/// The sharded LRU response cache.
#[derive(Debug)]
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    budget_per_shard: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl ResponseCache {
    /// A cache of `shards` shards splitting `budget_bytes` between them.
    /// Zero values fall back to one shard / an effectively empty budget.
    pub fn new(shards: usize, budget_bytes: usize) -> Self {
        let shards = shards.max(1);
        ResponseCache {
            budget_per_shard: budget_bytes / shards,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits pick the shard so FNV's avalanche spreads keys; the
        // full key is the map key within the shard.
        &self.shards[(key >> 32) as usize % self.shards.len()]
    }

    /// Looks up a response, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<String> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(&key) {
            Some((resp, last)) => {
                *last = tick;
                let out = resp.clone();
                self.hits.inc();
                Some(out)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts a response, evicting LRU entries until the shard is back
    /// under budget. A value larger than the whole shard budget is not
    /// cached at all (it would only evict everything and then miss).
    pub fn put(&self, key: u64, response: &str) {
        if response.len() > self.budget_per_shard {
            return;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if let Some((old, last)) = shard.entries.get_mut(&key) {
            // Same key, possibly re-computed value (identical by the
            // determinism contract): refresh in place.
            let old_len = old.len();
            *old = response.to_string();
            *last = tick;
            shard.bytes = shard.bytes - old_len + response.len();
            return;
        }
        while shard.bytes + response.len() > self.budget_per_shard && !shard.entries.is_empty() {
            // O(entries) eviction scan: shards stay small (a shard holds
            // budget/N bytes of multi-hundred-byte responses), and puts
            // only happen on misses, so the scan is off the hit path.
            let (&victim, _) = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .expect("non-empty shard has a victim");
            let (gone, _) = shard.entries.remove(&victim).expect("victim present");
            shard.bytes -= gone.len();
            self.evictions.inc();
        }
        shard.bytes += response.len();
        shard.entries.insert(key, (response.to_string(), tick));
    }

    /// Point-in-time statistics across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for s in &self.shards {
            let s = s.lock().expect("cache shard poisoned");
            entries += s.entries.len() as u64;
            bytes += s.bytes as u64;
        }
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put() {
        let cache = ResponseCache::new(4, 1 << 16);
        assert_eq!(cache.get(7), None);
        cache.put(7, "resp");
        assert_eq!(cache.get(7), Some("resp".to_string()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!((stats.entries, stats.bytes), (1, 4));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // One shard, budget for two 4-byte entries.
        let cache = ResponseCache::new(1, 8);
        cache.put(1, "aaaa");
        cache.put(2, "bbbb");
        assert_eq!(cache.get(1), Some("aaaa".into()), "refresh 1");
        cache.put(3, "cccc"); // must evict 2, the LRU entry
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.get(1), Some("aaaa".into()));
        assert_eq!(cache.get(3), Some("cccc".into()));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let cache = ResponseCache::new(2, 8); // 4 bytes per shard
        cache.put(1, "way too large for a shard");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.get(1), None);
    }

    #[test]
    fn same_key_refreshes_in_place() {
        let cache = ResponseCache::new(1, 64);
        cache.put(5, "abc");
        cache.put(5, "abc");
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.bytes), (1, 3));
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn keys_spread_over_shards() {
        let cache = ResponseCache::new(8, 1 << 20);
        for k in 0..256u64 {
            // Mix bits the way FNV output would.
            cache.put(k.wrapping_mul(0x9E37_79B9_7F4A_7C15), "x");
        }
        let used = cache
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().entries.is_empty())
            .count();
        assert!(used >= 6, "only {used} of 8 shards used");
    }
}
