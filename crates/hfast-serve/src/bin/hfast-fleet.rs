//! `hfast-fleet`: supervise N `hfast-serve` shards behind one router.
//!
//! ```text
//! hfast-fleet --shards N [--addr A] [--journal-dir D]
//!     supervisor: reserve N ports, spawn this binary once per shard
//!     (`--shard`), start the consistent-hash router on A (default
//!     127.0.0.1:4712), serve until a client sends `shutdown`.
//!
//! hfast-fleet --shard ADDR [--journal PATH]
//!     one shard: bind ADDR (retrying through a restart window), print
//!     `READY ADDR`, serve until drained.
//!
//! hfast-fleet --smoke
//!     self-contained fleet check (what verify.sh runs):
//!       1. single-node baseline — every pool response recorded;
//!       2. 2-shard fleet behind a router — fixed-length run must be
//!          byte-identical (digest match) with zero busy/error/drop;
//!       3. durable jobs with distinct payloads submitted until *both*
//!          shards own at least one, shard 0 rolling-restarted mid-load,
//!          load keeps answering baseline bytes, every job still
//!          completes and fetches byte-identical results.
//!     Exits non-zero on any violation.
//!
//! hfast-fleet --soak [--secs N] [--timeline PATH]
//!     wall-clock soak monitor over a 2-shard fleet: sustained
//!     mixed-verb load for N seconds (default 20) while a monitor polls
//!     the router's `metrics` verb, shard 0 is rolling-restarted
//!     mid-soak, and the run must hold its SLOs — zero byte divergence,
//!     zero refused responses, zero journal loss (every durable job
//!     completes with byte-identical results), rolling p99 under the
//!     `HFAST_SOAK_P99_MS` ceiling (default 500). `--timeline` writes
//!     the poll-by-poll JSONL telemetry record. Exits non-zero on any
//!     SLO violation.
//! ```
//!
//! The supervisor re-executes its own binary (`current_exe`) for shard
//! processes, so one artifact deploys the whole fleet.

use std::io::Write as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hfast_serve::fleet::unwrap_job_id;
use hfast_serve::{
    start, start_fleet, AppSpec, Client, FabricSpec, FleetConfig, JobState, Request, Response,
    ServerConfig,
};

/// How long shard binds and readiness probes retry before giving up.
const STARTUP_WINDOW: Duration = Duration::from_secs(10);

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Binds with retries so a restarted shard can reclaim its old address
/// while the previous incarnation's socket finishes closing.
fn start_shard_server(
    addr: &str,
    journal: Option<PathBuf>,
) -> Result<hfast_serve::ServerHandle, String> {
    let mut config = ServerConfig::from_env();
    if journal.is_some() {
        config.journal = journal;
    }
    let deadline = Instant::now() + STARTUP_WINDOW;
    loop {
        match start(addr, config.clone()) {
            Ok(server) => return Ok(server),
            Err(e) if Instant::now() < deadline => {
                eprintln!("hfast-fleet shard {addr}: bind retry ({e})");
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(format!("bind {addr}: {e}")),
        }
    }
}

fn run_shard(addr: &str, journal: Option<PathBuf>) -> Result<(), String> {
    // Queued debug_panic probes panic a job worker on purpose; keep the
    // log to one line per contained panic.
    std::panic::set_hook(Box::new(|info| {
        eprintln!("hfast-fleet shard: worker panic contained ({info})");
    }));
    let server = start_shard_server(addr, journal)?;
    println!("READY {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.join();
    eprintln!("hfast-fleet shard {addr}: drained");
    Ok(())
}

/// Reserves `n` distinct loopback ports by binding ephemerally and
/// noting the address. Racy by nature, tolerated by the shard's bind
/// retry loop.
fn reserve_ports(n: usize) -> Result<Vec<String>, String> {
    let mut addrs = Vec::new();
    let mut holds = Vec::new();
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("reserve port: {e}"))?;
        addrs.push(l.local_addr().map_err(|e| e.to_string())?.to_string());
        holds.push(l);
    }
    drop(holds);
    Ok(addrs)
}

fn spawn_shard(addr: &str, journal: &Path) -> Result<Child, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    Command::new(exe)
        .args(["--shard", addr, "--journal"])
        .arg(journal)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn shard {addr}: {e}"))
}

/// Polls a shard's health endpoint until it answers.
fn await_ready(addr: &str) -> Result<(), String> {
    let deadline = Instant::now() + STARTUP_WINDOW;
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if matches!(c.call(&Request::Health), Ok(Response::Health { .. })) {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("shard {addr} never became ready"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn run_supervisor(shards: usize, addr: &str, journal_dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(journal_dir).map_err(|e| format!("journal dir: {e}"))?;
    let shard_addrs = reserve_ports(shards)?;
    let mut children = Vec::new();
    for (i, shard_addr) in shard_addrs.iter().enumerate() {
        children.push(spawn_shard(
            shard_addr,
            &journal_dir.join(format!("shard-{i}.jsonl")),
        )?);
    }
    for shard_addr in &shard_addrs {
        await_ready(shard_addr)?;
    }
    let router = start_fleet(addr, &shard_addrs, FleetConfig::default())
        .map_err(|e| format!("router bind {addr}: {e}"))?;
    println!("READY {}", router.local_addr());
    let _ = std::io::stdout().flush();
    router.join(); // a client's `shutdown` fans out to the shards first
    for mut child in children {
        let _ = child.wait();
    }
    eprintln!("hfast-fleet: drained");
    Ok(())
}

// ---------------------------------------------------------------------
// Smoke mode
// ---------------------------------------------------------------------

/// The closed-loop request pool: cacheable compute verbs only, so every
/// response is a pure function of the request and any two correct
/// serving topologies answer byte-identical text.
fn smoke_pool() -> Vec<Request> {
    let ring = |n: usize| AppSpec::Inline {
        n,
        edges: (0..n)
            .map(|i| (i, (i + 1) % n, 64 * 1024, 16, 4096))
            .collect(),
    };
    let mut pool = Vec::new();
    for n in [6usize, 8, 10, 12] {
        pool.push(Request::Provision {
            app: ring(n),
            block_ports: 16,
            cutoff: 2048,
            strategy: None,
        });
        pool.push(Request::Cost {
            app: ring(n),
            block_ports: 8,
            cutoff: 4096,
        });
        pool.push(Request::Tdc {
            app: ring(n),
            cutoffs: vec![0, 2048, 1 << 16],
        });
        pool.push(Request::Simulate {
            app: ring(n),
            fabric: FabricSpec::Hfast,
            cutoff: 2048,
            faults: None,
            strategy: None,
        });
    }
    pool
}

/// Distinct simulate payloads for the durable-job phase: their request
/// keys spread over the hash ring, so submitting down the list covers
/// every shard — in particular the one the smoke restarts.
fn job_candidates() -> Vec<Request> {
    let ring = |n: usize| AppSpec::Inline {
        n,
        edges: (0..n)
            .map(|i| (i, (i + 1) % n, 64 * 1024, 16, 4096))
            .collect(),
    };
    let mut v = Vec::new();
    for n in [6usize, 8, 10, 12] {
        for cutoff in [2048, 4096] {
            v.push(Request::Simulate {
                app: ring(n),
                fabric: FabricSpec::Hfast,
                cutoff,
                faults: None,
                strategy: None,
            });
        }
    }
    v
}

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Runs `reps` pool cycles through one connection, returning the digest
/// over all response bytes and counting busy/error responses.
fn run_load(
    addr: &str,
    pool: &[Request],
    reps: usize,
) -> Result<(u64, Vec<String>, u64, u64), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut digest = FNV_SEED;
    let mut first_cycle = Vec::new();
    let (mut busy, mut errors) = (0u64, 0u64);
    for rep in 0..reps {
        for req in pool {
            let (resp, text) = client
                .call_text(req)
                .map_err(|e| format!("load call: {e}"))?;
            match resp {
                Response::Busy => busy += 1,
                Response::Error { .. } => errors += 1,
                _ => {}
            }
            digest = fnv_fold(digest, text.as_bytes());
            if rep == 0 {
                first_cycle.push(text);
            }
        }
    }
    Ok((digest, first_cycle, busy, errors))
}

fn smoke() -> Result<(), String> {
    std::panic::set_hook(Box::new(|info| {
        eprintln!("hfast-fleet smoke: worker panic contained ({info})");
    }));
    let dir = std::env::temp_dir().join(format!("hfast-fleet-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("smoke dir: {e}"))?;
    let pool = smoke_pool();
    const REPS: usize = 12;

    // -- Phase 1: single-node baseline ---------------------------------
    let single = start("127.0.0.1:0", ServerConfig::default()).map_err(|e| format!("bind: {e}"))?;
    let single_addr = single.local_addr().to_string();
    let (base_digest, base_cycle, busy, errors) = run_load(&single_addr, &pool, REPS)?;
    if busy != 0 || errors != 0 {
        return Err(format!(
            "baseline run shed or errored: {busy} busy, {errors} errors"
        ));
    }
    // Baseline job results: what each fetched job must later return.
    let candidates = job_candidates();
    let mut c = Client::connect(&single_addr).map_err(|e| e.to_string())?;
    let mut job_baselines = Vec::new();
    for req in &candidates {
        let (_, text) = c.call_text(req).map_err(|e| e.to_string())?;
        job_baselines.push(text);
    }
    c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
    single.join();
    eprintln!(
        "smoke: baseline digest {base_digest:#018x} over {} responses",
        REPS * pool.len()
    );

    // -- Phase 2: 2-shard fleet, digest must match ----------------------
    let shard_addrs = reserve_ports(2)?;
    let journals: Vec<PathBuf> = (0..2)
        .map(|i| dir.join(format!("shard-{i}.jsonl")))
        .collect();
    let mut children: Vec<Child> = Vec::new();
    for (addr, journal) in shard_addrs.iter().zip(&journals) {
        children.push(spawn_shard(addr, journal)?);
    }
    for addr in &shard_addrs {
        await_ready(addr)?;
    }
    let router = start_fleet("127.0.0.1:0", &shard_addrs, FleetConfig::default())
        .map_err(|e| format!("router: {e}"))?;
    let router_addr = router.local_addr().to_string();
    let (fleet_digest, _, busy, errors) = run_load(&router_addr, &pool, REPS)?;
    if busy != 0 || errors != 0 {
        return Err(format!(
            "fleet run shed or errored: {busy} busy, {errors} errors"
        ));
    }
    if fleet_digest != base_digest {
        return Err(format!(
            "fleet digest {fleet_digest:#018x} != single-node {base_digest:#018x}"
        ));
    }
    eprintln!("smoke: 2-shard fleet digest matches single node");

    // -- Phase 3: durable jobs + rolling restart of shard 0 mid-load ----
    // Submit distinct payloads until both shards own at least one job —
    // otherwise restarting shard 0 would not actually exercise the
    // "jobs survive the restart" claim. The router's global job ids
    // encode the owning shard, so coverage is checked, not assumed.
    let mut jobs_client = Client::connect(&router_addr).map_err(|e| e.to_string())?;
    let mut jobs: Vec<(u64, &String)> = Vec::new(); // (global id, expected bytes)
    let mut owned = [false; 2];
    for (req, expect) in candidates.iter().zip(&job_baselines) {
        if jobs.len() >= 4 && owned[0] && owned[1] {
            break;
        }
        match jobs_client
            .call(&Request::Submit {
                job: Box::new(req.clone()),
            })
            .map_err(|e| format!("submit: {e}"))?
        {
            Response::JobAccepted { id } => {
                let (shard, _) = unwrap_job_id(id);
                if shard >= owned.len() {
                    return Err(format!("job {id} names shard {shard} in a 2-shard fleet"));
                }
                owned[shard] = true;
                jobs.push((id, expect));
            }
            other => return Err(format!("submit: unexpected {other:?}")),
        }
    }
    if !(owned[0] && owned[1]) {
        return Err(format!(
            "job keys covered only shards {owned:?}; widen job_candidates() so the \
             restarted shard owns at least one durable job"
        ));
    }

    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let refused = AtomicU64::new(0);
    let load_err = std::sync::Mutex::new(None::<String>);
    std::thread::scope(|s| -> Result<(), String> {
        let loader = s.spawn(|| {
            let mut client = match Client::connect(&router_addr) {
                Ok(c) => c,
                Err(e) => {
                    *load_err.lock().unwrap() = Some(format!("loader connect: {e}"));
                    return;
                }
            };
            'outer: while !stop.load(Ordering::Relaxed) {
                for (req, expect) in pool.iter().zip(&base_cycle) {
                    match client.call_text(req) {
                        Ok((resp, text)) => {
                            if matches!(resp, Response::Busy | Response::Error { .. }) {
                                refused.fetch_add(1, Ordering::Relaxed);
                            } else if &text != expect {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            *load_err.lock().unwrap() = Some(format!("loader call: {e}"));
                            break 'outer;
                        }
                    }
                }
            }
        });

        // Let the loader get going, then roll shard 0.
        let wait_served = |target: u64, what: &str| -> Result<(), String> {
            let deadline = Instant::now() + STARTUP_WINDOW;
            while served.load(Ordering::Relaxed) < target {
                if load_err.lock().unwrap().is_some() || Instant::now() >= deadline {
                    stop.store(true, Ordering::Relaxed);
                    return Err(format!(
                        "loader stalled {what}: {:?}",
                        load_err.lock().unwrap().clone()
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(())
        };
        wait_served(50, "before restart")?;
        let mut direct = Client::connect(&shard_addrs[0]).map_err(|e| e.to_string())?;
        direct
            .call(&Request::Shutdown)
            .map_err(|e| format!("shard 0 drain: {e}"))?;
        let _ = children[0].wait();
        eprintln!("smoke: shard 0 drained mid-load, restarting");
        children[0] = spawn_shard(&shard_addrs[0], &journals[0])?;
        await_ready(&shard_addrs[0])?;
        let after_restart = served.load(Ordering::Relaxed);
        wait_served(after_restart + 50, "after restart")?;
        stop.store(true, Ordering::Relaxed);
        loader.join().map_err(|_| "loader panicked".to_string())?;
        Ok(())
    })?;
    if let Some(e) = load_err.lock().unwrap().clone() {
        return Err(e);
    }
    if mismatches.load(Ordering::Relaxed) != 0 || refused.load(Ordering::Relaxed) != 0 {
        return Err(format!(
            "rolling restart surfaced {} mismatched and {} refused responses over {}",
            mismatches.load(Ordering::Relaxed),
            refused.load(Ordering::Relaxed),
            served.load(Ordering::Relaxed),
        ));
    }
    eprintln!(
        "smoke: rolling restart invisible across {} responses",
        served.load(Ordering::Relaxed)
    );

    // Every accepted job must complete and fetch the baseline bytes.
    let deadline = Instant::now() + STARTUP_WINDOW;
    for &(id, expect) in &jobs {
        loop {
            match jobs_client.call(&Request::Poll { id }) {
                Ok(Response::JobStatus {
                    state: JobState::Done,
                    ..
                }) => break,
                Ok(Response::JobStatus {
                    state: JobState::Failed,
                    message,
                    ..
                }) => {
                    return Err(format!("job {id} failed: {message:?}"));
                }
                Ok(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
                other => return Err(format!("job {id} never finished: {other:?}")),
            }
        }
        let (_, text) = jobs_client
            .call_text(&Request::Fetch { id })
            .map_err(|e| format!("fetch {id}: {e}"))?;
        if &text != expect {
            return Err(format!(
                "job {id} result differs from the synchronous bytes"
            ));
        }
    }
    eprintln!(
        "smoke: {} durable jobs survived the restart across both shards",
        jobs.len()
    );

    // -- Teardown -------------------------------------------------------
    let mut c = Client::connect(&router_addr).map_err(|e| e.to_string())?;
    c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
    router.join();
    for mut child in children {
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

// ---------------------------------------------------------------------
// Soak mode
// ---------------------------------------------------------------------

/// Worst rolling p99 a `metrics` snapshot reports over the soak pool's
/// compute verbs (rows that served nothing don't count).
fn snapshot_p99(resp: &Response) -> u64 {
    let Response::Metrics { verbs, .. } = resp else {
        return 0;
    };
    verbs
        .iter()
        .filter(|row| {
            matches!(row.verb.as_str(), "provision" | "cost" | "tdc" | "simulate") && row.count > 0
        })
        .map(|row| row.p99_ns)
        .max()
        .unwrap_or(0)
}

/// Rolling p99 ceiling, milliseconds: `HFAST_SOAK_P99_MS` or a bound
/// generous enough for a loaded CI box.
fn soak_p99_ceiling_ns() -> u64 {
    std::env::var("HFAST_SOAK_P99_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(500)
        .saturating_mul(1_000_000)
}

fn soak(secs: u64, timeline_path: Option<PathBuf>) -> Result<(), String> {
    std::panic::set_hook(Box::new(|info| {
        eprintln!("hfast-fleet soak: worker panic contained ({info})");
    }));
    let dir = std::env::temp_dir().join(format!("hfast-fleet-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("soak dir: {e}"))?;
    let pool = smoke_pool();
    let p99_ceiling_ns = soak_p99_ceiling_ns();

    // Baseline bytes from a throwaway single node: the byte oracle for
    // every response the fleet serves during the soak.
    let single = start("127.0.0.1:0", ServerConfig::default()).map_err(|e| format!("bind: {e}"))?;
    let single_addr = single.local_addr().to_string();
    let (_, base_cycle, busy, errors) = run_load(&single_addr, &pool, 1)?;
    if busy != 0 || errors != 0 {
        return Err(format!(
            "baseline shed or errored: {busy} busy, {errors} errors"
        ));
    }
    let candidates = job_candidates();
    let mut c = Client::connect(&single_addr).map_err(|e| e.to_string())?;
    let mut job_baselines = Vec::new();
    for req in &candidates {
        let (_, text) = c.call_text(req).map_err(|e| e.to_string())?;
        job_baselines.push(text);
    }
    c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
    single.join();

    // The fleet under soak: two journaled shards behind a router.
    let shard_addrs = reserve_ports(2)?;
    let journals: Vec<PathBuf> = (0..2)
        .map(|i| dir.join(format!("shard-{i}.jsonl")))
        .collect();
    let mut children: Vec<Child> = Vec::new();
    for (addr, journal) in shard_addrs.iter().zip(&journals) {
        children.push(spawn_shard(addr, journal)?);
    }
    for addr in &shard_addrs {
        await_ready(addr)?;
    }
    let router = start_fleet("127.0.0.1:0", &shard_addrs, FleetConfig::default())
        .map_err(|e| format!("router: {e}"))?;
    let router_addr = router.local_addr().to_string();

    // Durable jobs on both shards before the load starts — the restart
    // must cost none of them.
    let mut jobs_client = Client::connect(&router_addr).map_err(|e| e.to_string())?;
    let mut jobs: Vec<(u64, &String)> = Vec::new();
    let mut owned = [false; 2];
    for (req, expect) in candidates.iter().zip(&job_baselines) {
        if jobs.len() >= 4 && owned[0] && owned[1] {
            break;
        }
        match jobs_client
            .call(&Request::Submit {
                job: Box::new(req.clone()),
            })
            .map_err(|e| format!("submit: {e}"))?
        {
            Response::JobAccepted { id } => {
                let (shard, _) = unwrap_job_id(id);
                owned[shard.min(1)] = true;
                jobs.push((id, expect));
            }
            other => return Err(format!("submit: unexpected {other:?}")),
        }
    }
    if !(owned[0] && owned[1]) {
        return Err(format!("job keys covered only shards {owned:?}"));
    }

    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let refused = AtomicU64::new(0);
    let load_err = std::sync::Mutex::new(None::<String>);
    let started = Instant::now();
    let deadline = started + Duration::from_secs(secs.max(1));
    let restart_at = started + Duration::from_secs(secs.max(1) / 2);

    let (timeline, polls, worst_p99) = std::thread::scope(|s| -> Result<_, String> {
        for conn in 0..2usize {
            let (pool, base_cycle, router_addr) = (&pool, &base_cycle, &router_addr);
            let (stop, served, mismatches, refused, load_err) =
                (&stop, &served, &mismatches, &refused, &load_err);
            s.spawn(move || {
                let mut client = match Client::connect(router_addr) {
                    Ok(c) => c,
                    Err(e) => {
                        *load_err.lock().unwrap() = Some(format!("loader {conn} connect: {e}"));
                        return;
                    }
                };
                'outer: while !stop.load(Ordering::Relaxed) {
                    for (req, expect) in pool.iter().zip(base_cycle) {
                        match client.call_text(req) {
                            Ok((resp, text)) => {
                                if matches!(resp, Response::Busy | Response::Error { .. }) {
                                    refused.fetch_add(1, Ordering::Relaxed);
                                } else if &text != expect {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                *load_err.lock().unwrap() =
                                    Some(format!("loader {conn} call: {e}"));
                                break 'outer;
                            }
                        }
                    }
                }
            });
        }

        // Monitor: poll the router's rolling metrics, record the JSONL
        // timeline, and roll shard 0 once the soak is halfway through.
        let mut monitor = Client::connect(&router_addr).map_err(|e| e.to_string())?;
        let mut timeline: Vec<String> = Vec::new();
        let mut polls = 0u64;
        let mut worst_p99 = 0u64;
        let mut restarted = false;
        while Instant::now() < deadline {
            std::thread::sleep(
                Duration::from_millis(250).min(deadline.saturating_duration_since(Instant::now())),
            );
            if let Some(e) = load_err.lock().unwrap().clone() {
                stop.store(true, Ordering::Relaxed);
                return Err(format!("loader died mid-soak: {e}"));
            }
            if !restarted && Instant::now() >= restart_at {
                restarted = true;
                let before = served.load(Ordering::Relaxed);
                let mut direct = Client::connect(&shard_addrs[0]).map_err(|e| e.to_string())?;
                direct
                    .call(&Request::Shutdown)
                    .map_err(|e| format!("shard 0 drain: {e}"))?;
                let _ = children[0].wait();
                children[0] = spawn_shard(&shard_addrs[0], &journals[0])?;
                await_ready(&shard_addrs[0])?;
                eprintln!(
                    "soak: shard 0 rolled at {:.1}s ({before} responses in)",
                    started.elapsed().as_secs_f64()
                );
            }
            let (resp, raw) = monitor
                .call_text(&Request::Metrics)
                .map_err(|e| format!("metrics poll: {e}"))?;
            polls += 1;
            worst_p99 = worst_p99.max(snapshot_p99(&resp));
            timeline.push(
                hfast_obs::JsonObj::new()
                    .u64("t_ms", started.elapsed().as_millis() as u64)
                    .u64("served", served.load(Ordering::Relaxed))
                    .u64("restarted", u64::from(restarted))
                    .raw("metrics", &raw)
                    .finish(),
            );
        }
        stop.store(true, Ordering::Relaxed);
        if !restarted {
            return Err("soak ended before the rolling restart fired".into());
        }
        Ok((timeline, polls, worst_p99))
    })?;
    if let Some(e) = load_err.lock().unwrap().clone() {
        return Err(e);
    }

    // SLO: the restart and the sustained load were invisible.
    let served = served.load(Ordering::Relaxed);
    let mismatches = mismatches.load(Ordering::Relaxed);
    let refused = refused.load(Ordering::Relaxed);
    if mismatches != 0 || refused != 0 {
        return Err(format!(
            "soak surfaced {mismatches} diverged and {refused} refused responses over {served}"
        ));
    }
    if polls == 0 {
        return Err("monitor landed zero metrics polls".into());
    }
    if worst_p99 > p99_ceiling_ns {
        return Err(format!(
            "rolling p99 {:.1} ms breached the {:.1} ms ceiling",
            worst_p99 as f64 / 1e6,
            p99_ceiling_ns as f64 / 1e6
        ));
    }

    // SLO: zero journal loss — every pre-soak durable job completes
    // across the restart and fetches its baseline bytes.
    let job_deadline = Instant::now() + STARTUP_WINDOW;
    for &(id, expect) in &jobs {
        loop {
            match jobs_client.call(&Request::Poll { id }) {
                Ok(Response::JobStatus {
                    state: JobState::Done,
                    ..
                }) => break,
                Ok(Response::JobStatus {
                    state: JobState::Failed,
                    message,
                    ..
                }) => return Err(format!("job {id} failed: {message:?}")),
                Ok(_) if Instant::now() < job_deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => return Err(format!("job {id} never finished: {other:?}")),
            }
        }
        let (_, text) = jobs_client
            .call_text(&Request::Fetch { id })
            .map_err(|e| format!("fetch {id}: {e}"))?;
        if &text != expect {
            return Err(format!("job {id} result differs from the baseline bytes"));
        }
    }

    if let Some(path) = &timeline_path {
        let mut doc = timeline.join("\n");
        doc.push('\n');
        std::fs::write(path, doc).map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("soak: telemetry timeline -> {}", path.display());
    }
    eprintln!(
        "soak: {served} responses, {polls} polls, worst p99 {:.3} ms, {} jobs intact",
        worst_p99 as f64 / 1e6,
        jobs.len()
    );

    let mut c = Client::connect(&router_addr).map_err(|e| e.to_string())?;
    c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
    router.join();
    for mut child in children {
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let done = if args.iter().any(|a| a == "--smoke") {
        smoke().map(|()| println!("hfast-fleet smoke: ok"))
    } else if args.iter().any(|a| a == "--soak") {
        let secs = parse_flag(&args, "--secs")
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(20);
        soak(secs, parse_flag(&args, "--timeline").map(PathBuf::from))
            .map(|()| println!("hfast-fleet soak: ok"))
    } else if let Some(addr) = parse_flag(&args, "--shard") {
        run_shard(&addr, parse_flag(&args, "--journal").map(PathBuf::from))
    } else if let Some(shards) = parse_flag(&args, "--shards") {
        match shards.parse::<usize>() {
            Ok(n) if n > 0 => {
                let addr = parse_flag(&args, "--addr").unwrap_or("127.0.0.1:4712".into());
                let dir = parse_flag(&args, "--journal-dir")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| std::env::temp_dir().join("hfast-fleet-journals"));
                run_supervisor(n, &addr, &dir)
            }
            _ => Err("--shards wants a positive integer".into()),
        }
    } else {
        Err("usage: hfast-fleet --shards N [--addr A] [--journal-dir D] | --shard ADDR [--journal P] | --smoke | --soak [--secs N] [--timeline P]".into())
    };
    match done {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hfast-fleet: {e}");
            ExitCode::FAILURE
        }
    }
}
