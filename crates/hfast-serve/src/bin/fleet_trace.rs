//! `fleet_trace`: stitch per-process span files into one Perfetto
//! document, or capture a live fleet trace end to end.
//!
//! ```text
//! fleet_trace OUT.json IN.jsonl [IN.jsonl ...]
//!     Merge JSONL span files (the `render_jsonl` interchange each
//!     process writes when `HFAST_TRACE` names a `.jsonl` path) into a
//!     single validated trace-event document with one Perfetto process
//!     group per input. Pass the files in client, router, shard order
//!     for a stable layout.
//!
//! fleet_trace --capture DIR
//!     Self-contained end-to-end capture (what the stitcher test runs):
//!     spawn two shard daemons with per-process `HFAST_TRACE` sinks,
//!     start the router in-process with an injected recorder, drive a
//!     handful of traced requests through a tracing `FleetClient`, then
//!     stitch all four span files into `DIR/fleet.json` and verify each
//!     request renders as ONE connected causal tree (roots == 1,
//!     orphans == 0). Exits non-zero on any violation.
//!
//! fleet_trace --shard ADDR
//!     Internal: one shard daemon for `--capture` (re-exec'd from the
//!     same binary), printing `READY ADDR` once bound.
//! ```

use std::io::Write as _;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hfast_serve::{
    start, start_fleet, AppSpec, Client, FleetClient, FleetConfig, Request, Response, ServerConfig,
};
use hfast_trace::{render_jsonl, stitch, trace_tree, TraceRecorder};

/// How long shard binds and readiness probes retry before giving up.
const STARTUP_WINDOW: Duration = Duration::from_secs(10);

/// Reads each span file and merges them into one validated document.
fn stitch_files(out: &Path, inputs: &[String]) -> Result<(), String> {
    let mut docs = Vec::with_capacity(inputs.len());
    for path in inputs {
        docs.push(std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?);
    }
    let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    let (doc, stats) = stitch(&refs)?;
    std::fs::write(out, &doc).map_err(|e| format!("write {}: {e}", out.display()))?;
    eprintln!(
        "fleet_trace: {} processes, {} spans, {} roots, {} orphans -> {}",
        stats.processes,
        stats.spans,
        stats.roots,
        stats.orphans,
        out.display()
    );
    Ok(())
}

// ---------------------------------------------------------------------
// Capture mode
// ---------------------------------------------------------------------

fn run_shard(addr: &str) -> Result<(), String> {
    let server = start(addr, ServerConfig::default()).map_err(|e| format!("bind {addr}: {e}"))?;
    println!("READY {}", server.local_addr());
    let _ = std::io::stdout().flush();
    server.join(); // join() exports to the HFAST_TRACE sink on drain
    Ok(())
}

fn reserve_ports(n: usize) -> Result<Vec<String>, String> {
    let mut addrs = Vec::new();
    let mut holds = Vec::new();
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("reserve port: {e}"))?;
        addrs.push(l.local_addr().map_err(|e| e.to_string())?.to_string());
        holds.push(l);
    }
    drop(holds);
    Ok(addrs)
}

/// Spawns a shard daemon whose spans land in `sink` — `HFAST_TRACE` is
/// probed once per process, so per-shard sinks require per-process
/// environments, which is exactly why capture re-execs itself.
fn spawn_shard(addr: &str, sink: &Path) -> Result<Child, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    Command::new(exe)
        .args(["--shard", addr])
        .env("HFAST_TRACE", sink)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn shard {addr}: {e}"))
}

fn await_ready(addr: &str) -> Result<(), String> {
    let deadline = Instant::now() + STARTUP_WINDOW;
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if matches!(c.call(&Request::Health), Ok(Response::Health { .. })) {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("shard {addr} never became ready"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The traced request mix: compute verbs with distinct keys, so the
/// capture exercises both shards and the router's fan-out-free path.
fn capture_pool() -> Vec<Request> {
    let ring = |n: usize| AppSpec::Inline {
        n,
        edges: (0..n)
            .map(|i| (i, (i + 1) % n, 64 * 1024, 16, 4096))
            .collect(),
    };
    let mut pool = Vec::new();
    for n in [6usize, 8, 10, 12] {
        pool.push(Request::Cost {
            app: ring(n),
            block_ports: 8,
            cutoff: 4096,
        });
        pool.push(Request::Tdc {
            app: ring(n),
            cutoffs: vec![0, 2048],
        });
    }
    pool
}

fn capture(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("capture dir: {e}"))?;

    // Two shards, each exporting its spans to its own JSONL sink.
    let shard_addrs = reserve_ports(2)?;
    let sinks: Vec<PathBuf> = (0..2)
        .map(|i| dir.join(format!("shard-{i}.jsonl")))
        .collect();
    let mut children = Vec::new();
    for (addr, sink) in shard_addrs.iter().zip(&sinks) {
        children.push(spawn_shard(addr, sink)?);
    }
    for addr in &shard_addrs {
        await_ready(addr)?;
    }

    // Router in-process with an injected recorder (the embedding process
    // owns the export, so FleetHandle::join does not write anything).
    let router_rec = Arc::new(TraceRecorder::new());
    let router = start_fleet(
        "127.0.0.1:0",
        &shard_addrs,
        FleetConfig {
            trace: Some(Arc::clone(&router_rec)),
            ..FleetConfig::default()
        },
    )
    .map_err(|e| format!("router: {e}"))?;
    let router_addr = router.local_addr().to_string();

    // Tracing client: every call originates a root span and threads the
    // context through the router to whichever shard owns the key.
    let client_rec = Arc::new(TraceRecorder::new());
    let mut client = FleetClient::connect(std::slice::from_ref(&router_addr))
        .with_trace(Arc::clone(&client_rec));
    let pool = capture_pool();
    for req in &pool {
        match client.call(req).map_err(|e| format!("traced call: {e}"))? {
            Response::Error { message } => return Err(format!("traced call errored: {message}")),
            Response::Busy => return Err("traced call shed".into()),
            _ => {}
        }
    }
    let traces = pool.len() as u64;

    // Drain: shutdown through the router fans out to the shards, whose
    // join-time export writes the JSONL sinks.
    let mut c = Client::connect(&router_addr).map_err(|e| e.to_string())?;
    c.call(&Request::Shutdown).map_err(|e| e.to_string())?;
    router.join();
    for mut child in children {
        let status = child.wait().map_err(|e| format!("shard wait: {e}"))?;
        if !status.success() {
            return Err(format!("shard exited with {status}"));
        }
    }

    // This process's two recorders become the client and router files.
    let client_path = dir.join("client.jsonl");
    let router_path = dir.join("router.jsonl");
    std::fs::write(&client_path, render_jsonl("client", &client_rec.snapshot()))
        .map_err(|e| format!("write client spans: {e}"))?;
    std::fs::write(&router_path, render_jsonl("router", &router_rec.snapshot()))
        .map_err(|e| format!("write router spans: {e}"))?;

    let inputs = vec![
        client_path.display().to_string(),
        router_path.display().to_string(),
        sinks[0].display().to_string(),
        sinks[1].display().to_string(),
    ];
    let out = dir.join("fleet.json");
    stitch_files(&out, &inputs)?;

    // The acceptance check: every traced request must render as one
    // connected causal tree — a single client root transitively
    // parenting the router and shard worker spans.
    let doc = std::fs::read_to_string(&out).map_err(|e| e.to_string())?;
    for trace_id in 1..=traces {
        let tree = trace_tree(&doc, trace_id)?;
        if tree.spans < 3 {
            return Err(format!(
                "trace {trace_id}: only {} spans — expected client, router and shard coverage",
                tree.spans
            ));
        }
        if tree.roots != 1 || tree.orphans != 0 {
            return Err(format!(
                "trace {trace_id}: {} roots, {} orphans over {} spans — not one connected tree",
                tree.roots, tree.orphans, tree.spans
            ));
        }
    }
    eprintln!(
        "fleet_trace: {traces} traces each form one connected tree in {}",
        out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let done = match args.first().map(String::as_str) {
        Some("--shard") => match args.get(1) {
            Some(addr) => run_shard(addr),
            None => Err("--shard wants an address".into()),
        },
        Some("--capture") => match args.get(1) {
            Some(dir) => capture(Path::new(dir)).map(|()| println!("fleet_trace capture: ok")),
            None => Err("--capture wants a directory".into()),
        },
        Some(out) if args.len() >= 2 => stitch_files(Path::new(out), &args[1..]),
        _ => Err("usage: fleet_trace OUT.json IN.jsonl... | --capture DIR".into()),
    };
    match done {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleet_trace: {e}");
            ExitCode::FAILURE
        }
    }
}
