//! Blocking clients for the hfast-serve protocol.
//!
//! One [`Client`] wraps one connection and issues closed-loop requests:
//! write a frame, read a frame. That mirrors how the load generator and
//! the integration tests drive the daemon, and it is the model under
//! which the server's per-connection ordering guarantee is defined.
//!
//! [`FleetClient`] speaks to a *set* of daemons: it routes each request
//! over the same consistent-hash ring the fleet router uses, fails over
//! to replica shards on transport errors (sound for cacheable verbs,
//! which are pure functions of the request), and pins job verbs to the
//! shard that owns the job — all behind the same `call` surface.
//!
//! Errors are typed by *where* they happened so failover can key off the
//! variant: [`ClientError::Transport`] (retry another replica),
//! [`ClientError::Protocol`] (a bug, never retried), and
//! [`ClientError::Server`] (the fleet gave up after the server kept
//! refusing).

use std::io::{self, Read};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hfast_trace::{client_span_id, TraceContext, TraceRecorder, Track};

use crate::fleet::{unwrap_job_id, wrap_job_id, HashRing, DEFAULT_VNODES};
use crate::frame::{read_frame, write_frame, FrameError};
use crate::protocol::{
    decode_response, encode_request, encode_request_versioned, envelope_traced, request_key,
    strip_envelope, Request, Response, WireVersion,
};

/// Why a call failed, by layer.
///
/// A [`Response::Error`] is a *successful* call — the server answered —
/// and is never a `ClientError`.
#[derive(Debug)]
pub enum ClientError {
    /// The bytes never made it there and back: connect, read, or write
    /// failure, or the stream ended mid-frame. Retrying against a
    /// replica is sound for pure (cacheable) requests.
    Transport(io::Error),
    /// The bytes arrived but were not a valid frame or response — a
    /// protocol bug on one side. Never retried.
    Protocol(String),
    /// The server kept refusing (e.g. [`Response::Busy`] past the retry
    /// budget): the fleet gave up, not the wire.
    Server(String),
}

impl ClientError {
    /// True when retrying the same bytes against a replica is sound.
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Transport(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Transport(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Transport(io),
            FrameError::Eof | FrameError::Truncated => {
                ClientError::Transport(io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()))
            }
            FrameError::Oversized(_) | FrameError::NotUtf8 => ClientError::Protocol(e.to_string()),
        }
    }
}

/// One connection to a running daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (any `ToSocketAddrs`, e.g. `"127.0.0.1:4711"`).
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// One frame out, one frame in. Crate-internal: the fleet router and
    /// the traced fleet client relay pre-encoded envelopes through it.
    pub(crate) fn exchange(&mut self, payload: &str) -> Result<String, ClientError> {
        write_frame(&mut self.stream, payload)?;
        Ok(read_frame(&mut self.stream)?)
    }

    /// Sends a request and blocks for its response.
    ///
    /// # Errors
    /// Transport, framing, or decode failure. A [`Response::Error`] is a
    /// *successful* call — the server answered — not a `ClientError`.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.call_text(req).map(|(resp, _)| resp)
    }

    /// Like [`call`](Client::call) but also returns the exact response
    /// text, so callers that digest bytes (the load generator, the
    /// byte-identity tests) stay on the typed path.
    ///
    /// # Errors
    /// Transport, framing, or decode failure.
    pub fn call_text(&mut self, req: &Request) -> Result<(Response, String), ClientError> {
        let raw = self.exchange(&encode_request(req))?;
        let resp = decode_response(&raw).map_err(ClientError::Protocol)?;
        Ok((resp, raw))
    }

    /// Sends a request in the given wire version and decodes the reply,
    /// checking the server answered in kind.
    ///
    /// # Errors
    /// Transport, framing, or decode failure; [`ClientError::Protocol`]
    /// when the reply's envelope version differs from the request's.
    pub fn call_versioned(
        &mut self,
        req: &Request,
        version: WireVersion,
    ) -> Result<Response, ClientError> {
        let raw = self.exchange(&encode_request_versioned(req, version))?;
        let (resp, got) =
            crate::protocol::decode_response_versioned(&raw).map_err(ClientError::Protocol)?;
        if got != version {
            return Err(ClientError::Protocol(format!(
                "sent {version:?}, server answered {got:?}"
            )));
        }
        Ok(resp)
    }

    /// Reads until the server closes the stream, returning what arrived.
    ///
    /// # Errors
    /// Propagates read failures other than clean EOF.
    pub fn drain_bytes(&mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.stream.read_to_end(&mut out)?;
        Ok(out)
    }
}

/// How many times a shard-pinned (job) verb retries its owning shard
/// before giving up — sized to ride out one rolling restart.
const DEFAULT_STATEFUL_RETRIES: usize = 40;

/// Pause between shard-pinned retries.
const DEFAULT_RETRY_PAUSE: Duration = Duration::from_millis(50);

/// A sharded client: one logical connection to a fleet of daemons.
///
/// Cacheable verbs route by consistent hash of their canonical encoding
/// and fail over to replica shards on transport errors or `Busy` (sound:
/// they are pure functions of the request, so any shard computes the
/// same bytes). Job verbs pin to the shard that owns the job id and
/// retry it through restart windows. `shutdown` fans out to every shard.
pub struct FleetClient {
    addrs: Vec<String>,
    ring: HashRing,
    conns: Vec<Option<Client>>,
    stateful_retries: usize,
    retry_pause: Duration,
    /// Root-span recorder when this client originates traces; injected
    /// explicitly via [`with_trace`](FleetClient::with_trace) — never
    /// probed from the environment, so a client embedded in a process
    /// that already exports its own trace cannot collide on the sink.
    trace: Option<Arc<TraceRecorder>>,
    epoch: Instant,
    /// Monotone per-client call counter: it is both the trace id and the
    /// low bits of the root span id.
    seq: u64,
    /// Trace context for the call in flight, consumed by
    /// [`call_shard`](FleetClient::call_shard) on every hop of the call.
    active_ctx: Option<TraceContext>,
}

impl FleetClient {
    /// A fleet client over `addrs` (one per shard, order = shard index —
    /// every participant must use the same order).
    ///
    /// Connections are opened lazily, so this never fails.
    pub fn connect(addrs: &[String]) -> FleetClient {
        let mut conns = Vec::new();
        conns.resize_with(addrs.len(), || None);
        FleetClient {
            addrs: addrs.to_vec(),
            ring: HashRing::new(addrs.len(), DEFAULT_VNODES),
            conns,
            stateful_retries: DEFAULT_STATEFUL_RETRIES,
            retry_pause: DEFAULT_RETRY_PAUSE,
            trace: None,
            epoch: Instant::now(),
            seq: 0,
            active_ctx: None,
        }
    }

    /// Overrides the shard-pinned retry budget (count, pause).
    pub fn with_stateful_retries(mut self, retries: usize, pause: Duration) -> FleetClient {
        self.stateful_retries = retries;
        self.retry_pause = pause;
        self
    }

    /// Makes this client a trace originator: every call records a root
    /// span on [`Track::Client`] into `recorder` and stamps its context
    /// into the v2 envelope so downstream routers and shards parent
    /// their spans under it. The caller owns the export (e.g. via
    /// [`hfast_trace::export_to_env_sink`]).
    pub fn with_trace(mut self, recorder: Arc<TraceRecorder>) -> FleetClient {
        self.trace = Some(recorder);
        self
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Calls one shard, reusing its connection when warm.
    fn call_shard(
        &mut self,
        shard: usize,
        req: &Request,
    ) -> Result<(Response, String), ClientError> {
        if self.conns[shard].is_none() {
            self.conns[shard] = Some(Client::connect(&self.addrs[shard])?);
        }
        let ctx = self.active_ctx;
        let conn = self.conns[shard].as_mut().expect("just connected");
        let out = match ctx {
            None => conn.call_text(req),
            // Traced calls ride the v2 envelope; the response is stripped
            // back to the canonical v1 text so everything downstream of
            // the client (digests, byte-identity checks) is untouched by
            // tracing. Responses never carry trace context.
            Some(ctx) => conn
                .exchange(&envelope_traced(&encode_request(req), ctx))
                .and_then(|raw| {
                    let raw = strip_envelope(&raw);
                    let resp = decode_response(&raw).map_err(ClientError::Protocol)?;
                    Ok((resp, raw))
                }),
        };
        if matches!(out, Err(ClientError::Transport(_))) {
            // A broken connection never heals; reconnect on next use.
            self.conns[shard] = None;
        }
        out
    }

    /// Failover path for pure requests: owner first, then ring-order
    /// replicas, skipping shards that are unreachable or shedding.
    fn call_pure(&mut self, req: &Request, key: u64) -> Result<(Response, String), ClientError> {
        let order = self.ring.route(key);
        let mut last: Option<ClientError> = None;
        for shard in order {
            match self.call_shard(shard, req) {
                Ok((Response::Busy, _)) => {
                    last = Some(ClientError::Server(format!("shard {shard} is shedding")));
                }
                Ok(out) => return Ok(out),
                Err(e) if e.is_transport() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Server("no shards configured".into())))
    }

    /// Shard-pinned path for job verbs: stateful, so failover to a
    /// different shard is wrong — instead retry the owner through its
    /// restart window.
    fn call_pinned(
        &mut self,
        shard: usize,
        req: &Request,
    ) -> Result<(Response, String), ClientError> {
        if shard >= self.addrs.len() {
            return Err(ClientError::Protocol(format!(
                "job id names shard {shard}, fleet has {}",
                self.addrs.len()
            )));
        }
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.stateful_retries.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.retry_pause);
            }
            match self.call_shard(shard, req) {
                Ok((Response::Busy, _)) => {
                    last = Some(ClientError::Server(format!(
                        "shard {shard} still shedding after {attempt} retries"
                    )));
                }
                Ok(out) => return Ok(out),
                Err(e) if e.is_transport() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Server("no retry budget".into())))
    }

    /// Rewrites shard-local job ids in a response to fleet-global ids.
    fn globalize(resp: Response, raw: String, shard: usize) -> (Response, String) {
        match resp {
            Response::JobAccepted { id } => {
                let global = wrap_job_id(shard, id);
                let resp = Response::JobAccepted { id: global };
                let raw = crate::protocol::encode_response(&resp);
                (resp, raw)
            }
            Response::JobStatus {
                id,
                state,
                attempts,
                message,
            } => {
                let resp = Response::JobStatus {
                    id: wrap_job_id(shard, id),
                    state,
                    attempts,
                    message,
                };
                let raw = crate::protocol::encode_response(&resp);
                (resp, raw)
            }
            other => (other, raw),
        }
    }

    /// Sends a request to the fleet and blocks for its response,
    /// returning both the decoded response and its exact text.
    ///
    /// # Errors
    /// Transport failure once every eligible shard has been tried,
    /// protocol violations, or a fleet-level give-up
    /// ([`ClientError::Server`]).
    pub fn call_text(&mut self, req: &Request) -> Result<(Response, String), ClientError> {
        let Some(trace) = self.trace.clone() else {
            return self.dispatch(req);
        };
        self.seq += 1;
        let seq = self.seq;
        let root = client_span_id(seq);
        self.active_ctx = Some(TraceContext {
            trace_id: seq,
            parent_id: root,
        });
        let t0 = self.now_ns();
        let out = self.dispatch(req);
        self.active_ctx = None;
        let t1 = self.now_ns();
        trace.record_span(
            Track::Client,
            req.endpoint(),
            t0,
            t1.saturating_sub(t0).max(1),
            root,
            0,
            vec![("trace", seq), ("ok", out.is_ok() as u64)],
        );
        out
    }

    /// Routing core behind [`call_text`](FleetClient::call_text); the
    /// wrapper owns span bookkeeping, this owns shard selection.
    fn dispatch(&mut self, req: &Request) -> Result<(Response, String), ClientError> {
        match req {
            // Liveness of the fleet = any reachable shard.
            Request::Health => {
                let mut last: Option<ClientError> = None;
                for shard in 0..self.addrs.len() {
                    match self.call_shard(shard, req) {
                        Ok(out) => return Ok(out),
                        Err(e) => last = Some(e),
                    }
                }
                Err(last.unwrap_or(ClientError::Server("no shards configured".into())))
            }
            // Fleet stats = sum over *reachable* shards: a shard that is
            // down or mid-restart is skipped (matching the router), and
            // only an all-shards failure surfaces as an error.
            Request::Stats => {
                let mut parts = Vec::new();
                let mut last: Option<ClientError> = None;
                for shard in 0..self.addrs.len() {
                    match self.call_shard(shard, req) {
                        Ok((resp, _)) => parts.push(resp),
                        Err(e) => last = Some(e),
                    }
                }
                let resp = crate::fleet::aggregate_stats(&parts).ok_or_else(|| {
                    last.unwrap_or_else(|| ClientError::Server("no stats to aggregate".into()))
                })?;
                let raw = crate::protocol::encode_response(&resp);
                Ok((resp, raw))
            }
            // Rolling SLO snapshot = merge over reachable shards: counts
            // and gauges sum, quantiles take the per-shard max as a
            // conservative fleet-level bound.
            Request::Metrics => {
                let mut parts = Vec::new();
                let mut last: Option<ClientError> = None;
                for shard in 0..self.addrs.len() {
                    match self.call_shard(shard, req) {
                        Ok((resp, _)) => parts.push(resp),
                        Err(e) => last = Some(e),
                    }
                }
                let resp = crate::fleet::aggregate_metrics(&parts).ok_or_else(|| {
                    last.unwrap_or_else(|| ClientError::Server("no metrics to aggregate".into()))
                })?;
                let raw = crate::protocol::encode_response(&resp);
                Ok((resp, raw))
            }
            // Shutdown fans out; the fleet is down when every shard
            // acknowledged (or was already gone).
            Request::Shutdown => {
                for shard in 0..self.addrs.len() {
                    let _ = self.call_shard(shard, req);
                }
                let resp = Response::Ok;
                let raw = crate::protocol::encode_response(&resp);
                Ok((resp, raw))
            }
            // Jobs live on the shard that owns the inner request's key.
            Request::Submit { job } => {
                let key = request_key(&encode_request(job));
                let shard = self.ring.shard_for(key);
                let (resp, raw) = self.call_pinned(shard, req)?;
                Ok(Self::globalize(resp, raw, shard))
            }
            Request::Poll { id } | Request::Fetch { id } | Request::Cancel { id } => {
                let (shard, local) = unwrap_job_id(*id);
                let local_req = match req {
                    Request::Poll { .. } => Request::Poll { id: local },
                    Request::Fetch { .. } => Request::Fetch { id: local },
                    _ => Request::Cancel { id: local },
                };
                let (resp, raw) = self.call_pinned(shard, &local_req)?;
                Ok(Self::globalize(resp, raw, shard))
            }
            // Compute verbs (cacheable or the deterministic panic probe):
            // pure functions of the request, so key-routed with failover.
            req => {
                let key = request_key(&encode_request(req));
                self.call_pure(req, key)
            }
        }
    }

    /// Sends a request to the fleet and blocks for its response.
    ///
    /// # Errors
    /// As [`call_text`](FleetClient::call_text).
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.call_text(req).map(|(resp, _)| resp)
    }
}
