//! Blocking client for the hfast-serve protocol.
//!
//! One [`Client`] wraps one connection and issues closed-loop requests:
//! write a frame, read a frame. That mirrors how the load generator and
//! the integration tests drive the daemon, and it is the model under
//! which the server's per-connection ordering guarantee is defined.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::protocol::{decode_response, encode_request, Request, Response};

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write).
    Io(io::Error),
    /// The stream broke mid-frame or a frame was invalid.
    Frame(FrameError),
    /// The response frame arrived but did not decode.
    Decode(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to a running daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (any `ToSocketAddrs`, e.g. `"127.0.0.1:4711"`).
    ///
    /// # Errors
    /// Propagates the connect failure.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends a request and blocks for its response.
    ///
    /// # Errors
    /// Transport, framing, or decode failure. A [`Response::Error`] is a
    /// *successful* call — the server answered — not a `ClientError`.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let raw = self.call_raw(&encode_request(req))?;
        decode_response(&raw).map_err(ClientError::Decode)
    }

    /// Sends a pre-encoded payload and returns the raw response text.
    /// Exists so tests can send deliberately malformed payloads (and so
    /// the load generator can hash exact response bytes).
    ///
    /// # Errors
    /// Transport or framing failure.
    pub fn call_raw(&mut self, payload: &str) -> Result<String, ClientError> {
        write_frame(&mut self.stream, payload)?;
        Ok(read_frame(&mut self.stream)?)
    }

    /// Writes raw bytes with *no* length prefix, then shuts down the
    /// write side. For truncation tests only: the server must answer
    /// nothing and simply drop the connection.
    ///
    /// # Errors
    /// Propagates write/shutdown failures.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Reads until the server closes the stream, returning what arrived.
    ///
    /// # Errors
    /// Propagates read failures other than clean EOF.
    pub fn drain_bytes(&mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        self.stream.read_to_end(&mut out)?;
        Ok(out)
    }
}
