//! Fleet routing: consistent-hash sharding, failover, hot-key caching,
//! and a router daemon that fronts N `hfast-serve` shards.
//!
//! ## The ring
//!
//! [`HashRing`] places `vnodes` points per shard on a `u64` ring; a
//! request key (FNV-1a of its canonical v1 encoding, the same key the
//! response cache uses) is owned by the first point clockwise. Points
//! are hashed from the *shard index* (`"shard-3/vnode-17"`), not the
//! address, so a [`crate::FleetClient`] and a router fronting the same
//! shard list agree on ownership without exchanging ring state — and
//! re-addressing a shard (rolling restart on a new port) does not move
//! keys.
//!
//! ## Failover
//!
//! Cacheable verbs are pure functions of their canonical encoding, so
//! when the owner shard is unreachable or shedding, the request is
//! retried on the next *distinct* shard in ring order — any shard
//! computes byte-identical responses. Job verbs are stateful (the job
//! lives in one shard's journal), so they never fail over: they retry
//! the owning shard through its restart window instead.
//!
//! ## Job ids
//!
//! Shards allocate job ids locally; the fleet namespaces them as
//! `(shard_index << 40) | local_id` — still below 2^53, so the id
//! survives JSON number transport. [`wrap_job_id`] / [`unwrap_job_id`]
//! are the whole scheme.
//!
//! ## Hot keys
//!
//! The router counts key frequencies ([`HotKeys`]); once a key crosses
//! the threshold its responses are admitted to a router-level sharded
//! LRU ([`ResponseCache`]) and served without touching a shard. Only
//! canonical v1 bodies of successful responses are cached, so a hit is
//! byte-identical to a shard round-trip.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hfast_trace::{router_span_id, TraceContext, TraceRecorder, Track};

use crate::cache::ResponseCache;
use crate::client::{Client, ClientError};
use crate::frame::{write_frame, FrameError, FramePoll, FrameReader};
use crate::protocol::{
    decode_request_traced, decode_response, encode_request, encode_response, envelope_traced,
    envelope_v2, request_key, strip_envelope, JobTotals, Request, Response, VerbLatency,
    WireVersion,
};

/// Bits reserved for the shard-local job id; the shard index lives above
/// them. `40 + log2(shards) < 53` keeps ids JSON-number-safe.
pub const JOB_SHARD_SHIFT: u32 = 40;

/// Default virtual nodes per shard — enough to keep the keyspace split
/// within a few percent of even at small shard counts.
pub const DEFAULT_VNODES: usize = 32;

/// Namespaces a shard-local job id as a fleet-global one.
pub fn wrap_job_id(shard: usize, local: u64) -> u64 {
    ((shard as u64) << JOB_SHARD_SHIFT) | (local & ((1u64 << JOB_SHARD_SHIFT) - 1))
}

/// Splits a fleet-global job id into (shard index, shard-local id).
pub fn unwrap_job_id(global: u64) -> (usize, u64) {
    (
        (global >> JOB_SHARD_SHIFT) as usize,
        global & ((1u64 << JOB_SHARD_SHIFT) - 1),
    )
}

/// A consistent-hash ring over shard *indexes*.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted (point, shard) pairs.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring of `shards` shards with `vnodes` points each.
    ///
    /// # Panics
    /// When `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards > 0, "a ring needs at least one shard");
        assert!(vnodes > 0, "a ring needs at least one point per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                points.push((request_key(&format!("shard-{shard}/vnode-{v}")), shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// The shard count this ring was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: first ring point clockwise from it.
    pub fn shard_for(&self, key: u64) -> usize {
        let idx = self.points.partition_point(|&(p, _)| p < key);
        self.points[idx % self.points.len()].1
    }

    /// Every shard in preference order for `key`: the owner first, then
    /// each further shard in the order its first point appears clockwise.
    pub fn route(&self, key: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(p, _)| p < key);
        let mut order = Vec::with_capacity(self.shards);
        for i in 0..self.points.len() {
            let shard = self.points[(start + i) % self.points.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

/// Frequency-threshold hot-key detector with a bounded table.
pub struct HotKeys {
    threshold: u32,
    cap: usize,
    counts: Mutex<std::collections::HashMap<u64, u32>>,
}

impl HotKeys {
    /// Keys seen at least `threshold` times count as hot; the table
    /// tracks at most `cap` keys (then resets — a coarse decay that also
    /// bounds memory).
    pub fn new(threshold: u32, cap: usize) -> HotKeys {
        HotKeys {
            threshold: threshold.max(1),
            cap: cap.max(1),
            counts: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Records one sighting of `key`; true once the key is hot.
    pub fn touch(&self, key: u64) -> bool {
        let mut counts = self.counts.lock().expect("hot-key table poisoned");
        if counts.len() >= self.cap && !counts.contains_key(&key) {
            counts.clear();
        }
        let c = counts.entry(key).or_insert(0);
        *c = c.saturating_add(1);
        *c >= self.threshold
    }

    /// Keys currently at or past the hot threshold — the `metrics`
    /// gauge. Resets with the table's coarse decay.
    pub fn hot_count(&self) -> usize {
        let counts = self.counts.lock().expect("hot-key table poisoned");
        counts.values().filter(|&&c| c >= self.threshold).count()
    }
}

/// Merges per-shard latency rows by verb name: counts sum, quantiles
/// take the max — exact quantile merging needs the raw histograms, and
/// the max is the conservative fleet-level bound an SLO check wants.
fn merge_latency(into: &mut Vec<VerbLatency>, rows: &[VerbLatency]) {
    for row in rows {
        match into.iter_mut().find(|r| r.verb == row.verb) {
            Some(r) => {
                r.count += row.count;
                r.p50_ns = r.p50_ns.max(row.p50_ns);
                r.p95_ns = r.p95_ns.max(row.p95_ns);
                r.p99_ns = r.p99_ns.max(row.p99_ns);
            }
            None => into.push(row.clone()),
        }
    }
}

/// Sums per-shard stats into one fleet-wide [`Response::Stats`].
///
/// Returns `None` when `parts` holds no stats response.
pub fn aggregate_stats(parts: &[Response]) -> Option<Response> {
    let mut requests = 0u64;
    let mut shed = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut cache_evictions = 0u64;
    let mut cache_entries = 0u64;
    let mut cache_bytes = 0u64;
    let mut sim_events = 0u64;
    let mut sim_events_per_sec = 0u64;
    let mut strategy_hits = [0u64; 3];
    let mut scenario_hits = [0u64; 5];
    let mut graphs = 0u64;
    let mut fabrics = 0u64;
    let mut jobs = JobTotals::default();
    let mut latency: Vec<VerbLatency> = Vec::new();
    let mut any = false;
    for part in parts {
        let Response::Stats {
            requests: r,
            shed: s,
            cache_hits: ch,
            cache_misses: cm,
            cache_evictions: ce,
            cache_entries: cn,
            cache_bytes: cb,
            sim_events: se,
            sim_events_per_sec: sps,
            strategy_hits: sh,
            scenario_hits: sch,
            graphs: g,
            fabrics: f,
            jobs: j,
            latency: l,
        } = part
        else {
            continue;
        };
        any = true;
        merge_latency(&mut latency, l);
        requests += r;
        shed += s;
        cache_hits += ch;
        cache_misses += cm;
        cache_evictions += ce;
        cache_entries += cn;
        cache_bytes += cb;
        sim_events += se;
        sim_events_per_sec += sps;
        for (slot, hit) in strategy_hits.iter_mut().zip(sh.iter()) {
            *slot += hit;
        }
        for (slot, hit) in scenario_hits.iter_mut().zip(sch.iter()) {
            *slot += hit;
        }
        graphs += g;
        fabrics += f;
        jobs.submitted += j.submitted;
        jobs.completed += j.completed;
        jobs.failed += j.failed;
        jobs.cancelled += j.cancelled;
        jobs.retried += j.retried;
    }
    any.then_some(Response::Stats {
        requests,
        shed,
        cache_hits,
        cache_misses,
        cache_evictions,
        cache_entries,
        cache_bytes,
        sim_events,
        sim_events_per_sec,
        strategy_hits,
        scenario_hits,
        graphs,
        fabrics,
        jobs,
        latency,
    })
}

/// Merges per-shard [`Response::Metrics`] snapshots into one fleet-wide
/// view: counts, gauges, and shard totals sum; `window_ns` and every
/// quantile take the per-shard max (a conservative fleet bound — see
/// [`merge_latency`] for why exact merging is off the table).
///
/// Returns `None` when `parts` holds no metrics response.
pub fn aggregate_metrics(parts: &[Response]) -> Option<Response> {
    let mut window_ns = 0u64;
    let mut shards = 0u64;
    let mut queue_depth = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut jobs_pending = 0u64;
    let mut jobs_retried = 0u64;
    let mut hot_keys = 0u64;
    let mut verbs: Vec<crate::protocol::VerbWindow> = Vec::new();
    let mut any = false;
    for part in parts {
        let Response::Metrics {
            window_ns: w,
            shards: n,
            queue_depth: q,
            cache_hits: ch,
            cache_misses: cm,
            jobs_pending: jp,
            jobs_retried: jr,
            hot_keys: hk,
            verbs: v,
        } = part
        else {
            continue;
        };
        any = true;
        window_ns = window_ns.max(*w);
        shards += n;
        queue_depth += q;
        cache_hits += ch;
        cache_misses += cm;
        jobs_pending += jp;
        jobs_retried += jr;
        hot_keys += hk;
        for row in v {
            match verbs.iter_mut().find(|r| r.verb == row.verb) {
                Some(r) => {
                    r.count += row.count;
                    r.ok += row.ok;
                    r.busy += row.busy;
                    r.errors += row.errors;
                    r.p50_ns = r.p50_ns.max(row.p50_ns);
                    r.p95_ns = r.p95_ns.max(row.p95_ns);
                    r.p99_ns = r.p99_ns.max(row.p99_ns);
                }
                None => verbs.push(row.clone()),
            }
        }
    }
    any.then_some(Response::Metrics {
        window_ns,
        shards,
        queue_depth,
        cache_hits,
        cache_misses,
        jobs_pending,
        jobs_retried,
        hot_keys,
        verbs,
    })
}

/// Router knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Sightings before a key counts as hot (and gets router-cached).
    pub hot_threshold: u32,
    /// Hot-key table capacity.
    pub hot_cap: usize,
    /// Router response-cache byte budget.
    pub cache_bytes: usize,
    /// Router response-cache shard count.
    pub cache_shards: usize,
    /// Same-shard retries for job verbs (rides out a rolling restart).
    pub stateful_retries: usize,
    /// Pause between same-shard retries.
    pub retry_pause: Duration,
    /// Span recorder for router-side child spans. Injected by the
    /// embedding process (never probed from the environment — the
    /// process owns the export and the sink), so `Default` is `None`
    /// and [`FleetHandle::join`] deliberately does not export.
    pub trace: Option<Arc<TraceRecorder>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            vnodes: DEFAULT_VNODES,
            hot_threshold: 4,
            hot_cap: 64 << 10,
            cache_bytes: 4 << 20,
            cache_shards: 8,
            stateful_retries: 40,
            retry_pause: Duration::from_millis(50),
            trace: None,
        }
    }
}

struct RouterShared {
    shard_addrs: Vec<String>,
    ring: HashRing,
    hot: HotKeys,
    cache: ResponseCache,
    config: FleetConfig,
    shutdown: AtomicBool,
    trace: Option<Arc<TraceRecorder>>,
    epoch: Instant,
    span_counter: AtomicU64,
}

impl RouterShared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn next_router_span(&self) -> u64 {
        router_span_id(self.span_counter.fetch_add(1, Ordering::Relaxed))
    }
}

/// Per-connection pool of upstream shard connections.
struct Upstreams {
    conns: Vec<Option<Client>>,
}

impl Upstreams {
    fn new(n: usize) -> Upstreams {
        let mut conns = Vec::new();
        conns.resize_with(n, || None);
        Upstreams { conns }
    }

    /// One canonical-v1 exchange with `shard`; reconnects lazily and
    /// forgets broken connections. With a trace context the payload
    /// rides the traced v2 envelope out and the reply is stripped back
    /// to canonical v1 text, so callers (router cache, digests) never
    /// see tracing on the bytes.
    fn exchange(
        &mut self,
        shared: &RouterShared,
        shard: usize,
        payload: &str,
        ctx: Option<TraceContext>,
    ) -> Result<String, ClientError> {
        if self.conns[shard].is_none() {
            self.conns[shard] = Some(Client::connect(&shared.shard_addrs[shard])?);
        }
        let conn = self.conns[shard].as_mut().expect("just connected");
        let out = match ctx {
            None => conn.exchange(payload),
            Some(c) => conn
                .exchange(&envelope_traced(payload, c))
                .map(|raw| strip_envelope(&raw)),
        };
        if matches!(out, Err(ClientError::Transport(_))) {
            self.conns[shard] = None;
        }
        out
    }

    /// Same-shard retry loop for stateful (job) verbs.
    fn exchange_pinned(
        &mut self,
        shared: &RouterShared,
        shard: usize,
        payload: &str,
        ctx: Option<TraceContext>,
    ) -> Result<String, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..shared.config.stateful_retries.max(1) {
            if attempt > 0 {
                thread::sleep(shared.config.retry_pause);
            }
            match self.exchange(shared, shard, payload, ctx) {
                Ok(raw) => {
                    if decode_response(&raw).is_ok_and(|r| matches!(r, Response::Busy)) {
                        last = Some(ClientError::Server(format!(
                            "shard {shard} shedding a pinned verb"
                        )));
                        continue;
                    }
                    return Ok(raw);
                }
                Err(e) if e.is_transport() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Server("no retry budget".into())))
    }

    /// Owner-then-replicas failover for pure verbs.
    fn exchange_pure(
        &mut self,
        shared: &RouterShared,
        key: u64,
        payload: &str,
        ctx: Option<TraceContext>,
    ) -> Result<String, ClientError> {
        let mut last: Option<ClientError> = None;
        for shard in shared.ring.route(key) {
            match self.exchange(shared, shard, payload, ctx) {
                Ok(raw) => {
                    // Busy from a draining/overloaded shard: a replica can
                    // answer the same bytes, so keep going.
                    if decode_response(&raw).is_ok_and(|r| matches!(r, Response::Busy)) {
                        last = Some(ClientError::Server(format!("shard {shard} is shedding")));
                        continue;
                    }
                    return Ok(raw);
                }
                Err(e) if e.is_transport() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        match last {
            // Every shard shed: Busy is the honest fleet-wide answer.
            Some(ClientError::Server(_)) => Ok(encode_response(&Response::Busy)),
            Some(e) => Err(e),
            None => Err(ClientError::Server("no shards configured".into())),
        }
    }
}

/// Routes one decoded request, returning the canonical v1 response text.
/// A trace context rides every upstream hop of the request.
fn route(
    shared: &RouterShared,
    ups: &mut Upstreams,
    req: Request,
    ctx: Option<TraceContext>,
) -> String {
    let err = |e: &ClientError| {
        encode_response(&Response::Error {
            message: format!("fleet: {e}"),
        })
    };
    match &req {
        // The router answers health itself: it is the liveness surface of
        // the fleet (shards report theirs through stats).
        Request::Health => encode_response(&Response::Health {
            workers: shared.shard_addrs.len(),
            queue: 0,
        }),
        Request::Stats => {
            let payload = encode_request(&Request::Stats);
            let mut parts = Vec::new();
            for shard in 0..shared.shard_addrs.len() {
                if let Ok(raw) = ups.exchange(shared, shard, &payload, ctx) {
                    if let Ok(resp) = decode_response(&raw) {
                        parts.push(resp);
                    }
                }
            }
            match aggregate_stats(&parts) {
                Some(resp) => encode_response(&resp),
                None => encode_response(&Response::Error {
                    message: "fleet: no shard answered stats".into(),
                }),
            }
        }
        // Fleet metrics = shard merge plus the router's own overlay: its
        // hot-key cache hits never reached a shard, and the hot-key
        // gauge only exists here.
        Request::Metrics => {
            let payload = encode_request(&Request::Metrics);
            let mut parts = Vec::new();
            for shard in 0..shared.shard_addrs.len() {
                if let Ok(raw) = ups.exchange(shared, shard, &payload, ctx) {
                    if let Ok(resp) = decode_response(&raw) {
                        parts.push(resp);
                    }
                }
            }
            match aggregate_metrics(&parts) {
                Some(Response::Metrics {
                    window_ns,
                    shards,
                    queue_depth,
                    cache_hits,
                    cache_misses,
                    jobs_pending,
                    jobs_retried,
                    hot_keys: _,
                    verbs,
                }) => {
                    let c = shared.cache.stats();
                    encode_response(&Response::Metrics {
                        window_ns,
                        shards,
                        queue_depth,
                        cache_hits: cache_hits + c.hits,
                        cache_misses: cache_misses + c.misses,
                        jobs_pending,
                        jobs_retried,
                        hot_keys: shared.hot.hot_count() as u64,
                        verbs,
                    })
                }
                Some(resp) => encode_response(&resp),
                None => encode_response(&Response::Error {
                    message: "fleet: no shard answered metrics".into(),
                }),
            }
        }
        Request::Shutdown => {
            let payload = encode_request(&Request::Shutdown);
            for shard in 0..shared.shard_addrs.len() {
                let _ = ups.exchange(shared, shard, &payload, ctx);
            }
            shared.shutdown.store(true, Ordering::Relaxed);
            encode_response(&Response::Ok)
        }
        Request::Submit { job } => {
            let shard = shared.ring.shard_for(request_key(&encode_request(job)));
            match ups.exchange_pinned(shared, shard, &encode_request(&req), ctx) {
                Ok(raw) => match decode_response(&raw) {
                    Ok(Response::JobAccepted { id }) => encode_response(&Response::JobAccepted {
                        id: wrap_job_id(shard, id),
                    }),
                    Ok(_) => raw,
                    Err(e) => encode_response(&Response::Error {
                        message: format!("fleet: shard answered garbage: {e}"),
                    }),
                },
                Err(e) => err(&e),
            }
        }
        Request::Poll { id } | Request::Fetch { id } | Request::Cancel { id } => {
            let (shard, local) = unwrap_job_id(*id);
            if shard >= shared.shard_addrs.len() {
                return encode_response(&Response::Error {
                    message: format!(
                        "job id names shard {shard}, fleet has {}",
                        shared.shard_addrs.len()
                    ),
                });
            }
            let local_req = match &req {
                Request::Poll { .. } => Request::Poll { id: local },
                Request::Fetch { .. } => Request::Fetch { id: local },
                _ => Request::Cancel { id: local },
            };
            match ups.exchange_pinned(shared, shard, &encode_request(&local_req), ctx) {
                Ok(raw) => match decode_response(&raw) {
                    Ok(Response::JobStatus {
                        id,
                        state,
                        attempts,
                        message,
                    }) => encode_response(&Response::JobStatus {
                        id: wrap_job_id(shard, id),
                        state,
                        attempts,
                        message,
                    }),
                    _ => raw,
                },
                Err(e) => err(&e),
            }
        }
        // Compute verbs: pure, so key-routed with failover and (when hot
        // and cacheable) served from the router cache.
        _ => {
            let payload = encode_request(&req);
            let key = request_key(&payload);
            let cache_worthy = req.cacheable() && shared.hot.touch(key);
            if cache_worthy {
                if let Some(hit) = shared.cache.get(key) {
                    return hit;
                }
            }
            match ups.exchange_pure(shared, key, &payload, ctx) {
                Ok(raw) => {
                    let cacheable_body = decode_response(&raw)
                        .is_ok_and(|r| !matches!(r, Response::Error { .. } | Response::Busy));
                    if cache_worthy && cacheable_body {
                        shared.cache.put(key, &raw);
                    }
                    raw
                }
                Err(e) => err(&e),
            }
        }
    }
}

/// Socket-read tick; drain checks happen at this cadence.
const TICK: Duration = Duration::from_millis(50);

fn router_connection(shared: &RouterShared, mut stream: TcpStream, conn_id: usize) {
    if stream.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut ups = Upstreams::new(shared.shard_addrs.len());
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(&mut stream) {
            Ok(FramePoll::Frame(payload)) => {
                let body = match decode_request_traced(&payload) {
                    Ok((req, version, ctx)) => {
                        let verb = req.endpoint();
                        let t0 = shared.now_ns();
                        // With a recorder, the router interposes its own
                        // span: record a child of the inbound context and
                        // forward a deepened context so shard spans
                        // parent under the router, not the client.
                        // Without one, the context passes through intact
                        // and shards parent directly under the client.
                        let (fwd, span) = match (&shared.trace, ctx) {
                            (Some(_), Some(c)) => {
                                let span = shared.next_router_span();
                                (Some(c.deepen(span)), Some((c, span)))
                            }
                            _ => (ctx, None),
                        };
                        let body = route(shared, &mut ups, req, fwd);
                        if let (Some(trace), Some((c, span))) = (&shared.trace, span) {
                            trace.record_span(
                                Track::Router(conn_id),
                                verb,
                                t0,
                                shared.now_ns().saturating_sub(t0).max(1),
                                span,
                                c.parent_id,
                                vec![("trace", c.trace_id)],
                            );
                        }
                        match version {
                            WireVersion::V1 => body,
                            WireVersion::V2 => envelope_v2(&body),
                        }
                    }
                    Err(message) => encode_response(&Response::Error { message }),
                };
                if write_frame(&mut stream, &body).is_err() {
                    return;
                }
            }
            Ok(FramePoll::Pending) => {
                if shared.draining() && !reader.mid_frame() {
                    return;
                }
            }
            Err(FrameError::Eof) | Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return,
            Err(e @ (FrameError::Oversized(_) | FrameError::NotUtf8)) => {
                let resp = encode_response(&Response::Error {
                    message: e.to_string(),
                });
                let _ = write_frame(&mut stream, &resp);
                return;
            }
        }
    }
}

/// A running fleet router.
pub struct FleetHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl FleetHandle {
    /// The router's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins drain without forwarding shutdown to the shards (the
    /// `shutdown` *request* does forward) — used for router-only
    /// restarts.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until the acceptor and every connection thread exit.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Binds `addr` and starts a router fronting `shard_addrs` (index order
/// must match every other participant's).
///
/// # Errors
/// Propagates the bind failure.
pub fn start_fleet(
    addr: &str,
    shard_addrs: &[String],
    config: FleetConfig,
) -> io::Result<FleetHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(RouterShared {
        ring: HashRing::new(shard_addrs.len(), config.vnodes),
        hot: HotKeys::new(config.hot_threshold, config.hot_cap),
        cache: ResponseCache::new(config.cache_shards, config.cache_bytes),
        shard_addrs: shard_addrs.to_vec(),
        trace: config.trace.clone(),
        config,
        shutdown: AtomicBool::new(false),
        epoch: Instant::now(),
        span_counter: AtomicU64::new(1),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("hfast-fleet-acceptor".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                let mut conn_id = 0usize;
                while !shared.draining() {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let id = conn_id;
                            conn_id += 1;
                            let shared = Arc::clone(&shared);
                            conns.push(
                                thread::Builder::new()
                                    .name(format!("hfast-fleet-conn-{id}"))
                                    .spawn(move || router_connection(&shared, stream, id))
                                    .expect("spawn router connection thread"),
                            );
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                            if conns.len() > 64 {
                                conns.retain(|h| !h.is_finished());
                            }
                        }
                        Err(_) => thread::sleep(Duration::from_millis(5)),
                    }
                }
                for conn in conns {
                    let _ = conn.join();
                }
            })
            .expect("spawn fleet acceptor")
    };
    Ok(FleetHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_round_trip_the_namespace() {
        for shard in [0usize, 1, 3, 7, 4095] {
            for local in [0u64, 1, 42, (1 << JOB_SHARD_SHIFT) - 1] {
                let global = wrap_job_id(shard, local);
                assert_eq!(unwrap_job_id(global), (shard, local));
                assert!(global < (1 << 53), "JSON-number-safe");
            }
        }
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let a = HashRing::new(4, 32);
        let b = HashRing::new(4, 32);
        let mut owners = [0usize; 4];
        for key in 0..10_000u64 {
            let shard = a.shard_for(key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(shard, b.shard_for(key.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            owners[shard] += 1;
        }
        for (shard, count) in owners.iter().enumerate() {
            assert!(
                *count > 500,
                "shard {shard} owns {count}/10000 keys — ring badly skewed: {owners:?}"
            );
        }
    }

    #[test]
    fn route_starts_at_owner_and_visits_every_shard_once() {
        let ring = HashRing::new(4, 32);
        for key in [0u64, 17, 1 << 40, u64::MAX] {
            let order = ring.route(key);
            assert_eq!(order[0], ring.shard_for(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                vec![0, 1, 2, 3],
                "route {order:?} not a permutation"
            );
        }
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = HashRing::new(1, 8);
        for key in [0u64, 1, u64::MAX] {
            assert_eq!(ring.shard_for(key), 0);
            assert_eq!(ring.route(key), vec![0]);
        }
    }

    #[test]
    fn hot_keys_trip_at_threshold() {
        let hot = HotKeys::new(3, 16);
        assert!(!hot.touch(1));
        assert!(!hot.touch(1));
        assert!(hot.touch(1));
        assert!(hot.touch(1), "stays hot");
        assert!(!hot.touch(2), "independent keys");
    }

    #[test]
    fn aggregate_stats_sums_fields() {
        let part = |requests: u64| Response::Stats {
            requests,
            shed: 1,
            cache_hits: 2,
            cache_misses: 3,
            cache_evictions: 0,
            cache_entries: 4,
            cache_bytes: 100,
            sim_events: 5,
            sim_events_per_sec: 6,
            strategy_hits: [1, 0, 2],
            scenario_hits: [1, 0, 0, 2, 3],
            graphs: 1,
            fabrics: 1,
            jobs: JobTotals {
                submitted: 2,
                completed: 1,
                failed: 0,
                cancelled: 1,
                retried: 0,
            },
            latency: vec![VerbLatency {
                verb: "health".into(),
                count: 5,
                p50_ns: requests, // distinguish shards through the merge
                p95_ns: 200,
                p99_ns: 300,
            }],
        };
        let agg = aggregate_stats(&[part(10), part(20), Response::Busy]).unwrap();
        let Response::Stats {
            requests,
            strategy_hits,
            scenario_hits,
            jobs,
            latency,
            ..
        } = agg
        else {
            panic!("expected stats");
        };
        assert_eq!(requests, 30);
        assert_eq!(strategy_hits, [2, 0, 4]);
        assert_eq!(scenario_hits, [2, 0, 0, 4, 6]);
        assert_eq!(jobs.submitted, 4);
        assert_eq!(latency.len(), 1, "same verb merges into one row");
        assert_eq!(latency[0].count, 10, "counts sum");
        assert_eq!(latency[0].p50_ns, 20, "quantiles take the max");
        assert!(aggregate_stats(&[Response::Ok]).is_none());
    }

    #[test]
    fn aggregate_metrics_sums_counts_and_maxes_quantiles() {
        use crate::protocol::VerbWindow;
        let part = |p99: u64| Response::Metrics {
            window_ns: 10_000_000_000,
            shards: 1,
            queue_depth: 2,
            cache_hits: 3,
            cache_misses: 4,
            jobs_pending: 1,
            jobs_retried: 0,
            hot_keys: 0,
            verbs: vec![VerbWindow {
                verb: "tdc".into(),
                count: 7,
                ok: 6,
                busy: 1,
                errors: 0,
                p50_ns: 10,
                p95_ns: 20,
                p99_ns: p99,
            }],
        };
        let agg = aggregate_metrics(&[part(100), part(50), Response::Ok]).unwrap();
        let Response::Metrics {
            shards,
            queue_depth,
            verbs,
            ..
        } = agg
        else {
            panic!("expected metrics");
        };
        assert_eq!(shards, 2);
        assert_eq!(queue_depth, 4);
        assert_eq!(verbs.len(), 1);
        assert_eq!(verbs[0].count, 14);
        assert_eq!(verbs[0].busy, 2);
        assert_eq!(verbs[0].p99_ns, 100, "fleet p99 is the shard max");
        assert!(aggregate_metrics(&[Response::Busy]).is_none());
    }

    #[test]
    fn hot_count_tracks_keys_past_threshold() {
        let hot = HotKeys::new(2, 16);
        assert_eq!(hot.hot_count(), 0);
        hot.touch(1);
        assert_eq!(hot.hot_count(), 0, "one sighting is not hot");
        hot.touch(1);
        hot.touch(2);
        hot.touch(2);
        assert_eq!(hot.hot_count(), 2);
    }
}
