//! Pure request execution: `Request` in, `Response` out.
//!
//! Everything here is a deterministic function of the request plus the
//! (memoizing, but semantically transparent) [`Registry`] — which is what
//! makes the response cache sound and worker-count invariance testable.
//! Server-level concerns (health, stats, shutdown, queueing) never reach
//! this module.

use std::sync::Arc;

use hfast_core::{CostComparison, CostModel, ProvisionConfig, Provisioning, Strategy};
use hfast_netsim::traffic::flows_from_graph;
use hfast_netsim::{transit_links, CreditConfig, FaultPlan, Scenario, Simulation};
use hfast_topology::tdc_sweep;
use hfast_trace::{congestion_trees, rank_hotspots, utilization_spread, TraceRecorder};

use crate::protocol::{AppSpec, FabricSpec, FaultSpec, Request, Response, TdcRow};
use crate::registry::{Registry, MAX_PROCS};

/// Upper bound on cutoffs per TDC request (keeps one request's work and
/// response size proportionate to everyone else's).
pub const MAX_TDC_CUTOFFS: usize = 64;

/// Upper bound on flows per scenario request (keeps one credit-mode
/// replay's work proportionate to everyone else's).
pub const MAX_SCENARIO_FLOWS: usize = 65_536;

fn err(message: impl Into<String>) -> Response {
    Response::Error {
        message: message.into(),
    }
}

#[allow(clippy::result_large_err)] // the Err is the wire response
fn provision_for(
    reg: &Registry,
    app: &AppSpec,
    block_ports: usize,
    cutoff: u64,
    strategy: Strategy,
) -> Result<(usize, Provisioning), Response> {
    if block_ports < 2 {
        return Err(err(format!(
            "block_ports must be at least 2, got {block_ports}"
        )));
    }
    let graph = reg.graph(app).map_err(err)?;
    reg.note_strategy(strategy);
    let prov = strategy.provisioner().provision(
        &graph,
        ProvisionConfig {
            block_ports,
            cutoff,
        },
    );
    Ok((graph.n(), prov))
}

fn simulate_for(
    reg: &Registry,
    app: &AppSpec,
    fabric: FabricSpec,
    cutoff: u64,
    faults: &Option<FaultSpec>,
    strategy: Strategy,
) -> Response {
    let graph = match reg.graph(app) {
        Ok(g) => g,
        Err(e) => return err(e),
    };
    let block_ports = ProvisionConfig::default().block_ports;
    let entry = match reg.fabric(&graph, fabric, block_ports, cutoff, strategy) {
        Ok(e) => e,
        Err(e) => return err(e),
    };
    let flows = flows_from_graph(&graph, cutoff);
    let out = if let Some(spec) = faults {
        let eligible = transit_links(entry.fabric.as_ref(), &flows);
        let plan = match FaultPlan::builder()
            .random_link_failures(
                spec.seed,
                spec.count,
                &eligible,
                spec.window,
                spec.downtime_ns,
            )
            .build(entry.fabric.as_ref())
        {
            Ok(p) => p,
            Err(e) => return err(format!("fault plan: {e}")),
        };
        // Fault runs mutate routes as links fail, so they get a private
        // cache seeded from the shared snapshot instead of the snapshot
        // itself.
        let snap = entry.warm.warm(entry.fabric.as_ref(), &flows);
        Simulation::new(entry.fabric.as_ref())
            .with_snapshot(&snap)
            .with_faults(&plan)
            .with_obs(reg.sim_obs())
            .run(&flows)
    } else {
        let snap = entry.warm.warm(entry.fabric.as_ref(), &flows);
        Simulation::new(entry.fabric.as_ref())
            .with_snapshot(&snap)
            .with_obs(reg.sim_obs())
            .run(&flows)
    };
    Response::SimReport {
        completed: out.stats.completed,
        unrouted: out.stats.unrouted,
        abandoned: out.stats.abandoned,
        delivered_bytes: out.stats.delivered_bytes,
        max_latency_ns: out.stats.max_latency_ns,
        makespan_ns: out.stats.makespan_ns,
        total_retries: out.stats.total_retries,
        reprovisions: out.reprovisions.len(),
    }
}

/// Handles [`Request::Provision`]: builds the provisioning and reports
/// its port math. Row handler in [`crate::protocol::VERBS`].
pub fn provision(req: &Request, reg: &Registry) -> Response {
    let Request::Provision {
        app,
        block_ports,
        cutoff,
        strategy,
    } = req
    else {
        return wrong_verb(req, "provision");
    };
    match provision_for(
        reg,
        app,
        *block_ports,
        *cutoff,
        strategy.unwrap_or(Strategy::PaperLinear),
    ) {
        Ok((n, prov)) => Response::Provisioned {
            n,
            blocks: prov.total_blocks(),
            total_block_ports: prov.total_block_ports(),
            circuit_ports: prov.circuit_ports_used(),
            ports_per_node: prov.block_ports_per_node(),
            max_switch_hops: prov.max_route().map_or(0, |r| r.switch_hops),
        },
        Err(resp) => resp,
    }
}

/// Handles [`Request::Cost`]: provisions with the paper strategy and
/// compares against an equivalent fat tree.
pub fn cost(req: &Request, reg: &Registry) -> Response {
    let Request::Cost {
        app,
        block_ports,
        cutoff,
    } = req
    else {
        return wrong_verb(req, "cost");
    };
    match provision_for(reg, app, *block_ports, *cutoff, Strategy::PaperLinear) {
        Ok((_, prov)) => {
            let cmp = CostComparison::of(&prov, &CostModel::default());
            Response::CostReport {
                hfast: cmp.hfast,
                fat_tree: cmp.fat_tree,
                ratio: cmp.ratio(),
                hfast_wins: cmp.hfast_wins(),
                hfast_ports_per_node: cmp.hfast_ports_per_node,
                fat_tree_ports_per_node: cmp.fat_tree_ports_per_node,
            }
        }
        Err(resp) => resp,
    }
}

/// Handles [`Request::Tdc`]: thresholded-degree sweep over the request's
/// cutoff list, rows in request order.
pub fn tdc(req: &Request, reg: &Registry) -> Response {
    let Request::Tdc { app, cutoffs } = req else {
        return wrong_verb(req, "tdc");
    };
    if cutoffs.is_empty() || cutoffs.len() > MAX_TDC_CUTOFFS {
        return err(format!(
            "tdc wants 1..={MAX_TDC_CUTOFFS} cutoffs, got {}",
            cutoffs.len()
        ));
    }
    match reg.graph(app) {
        Ok(graph) => Response::TdcReport {
            rows: tdc_sweep(&graph, cutoffs)
                .into_iter()
                .map(|(cutoff, s)| TdcRow {
                    cutoff,
                    max: s.max,
                    min: s.min,
                    avg: s.avg,
                    median: s.median,
                })
                .collect(),
        },
        Err(e) => err(e),
    }
}

/// Handles [`Request::Simulate`]: full traffic replay with optional fault
/// injection on the requested fabric.
pub fn simulate(req: &Request, reg: &Registry) -> Response {
    let Request::Simulate {
        app,
        fabric,
        cutoff,
        faults,
        strategy,
    } = req
    else {
        return wrong_verb(req, "simulate");
    };
    simulate_for(
        reg,
        app,
        *fabric,
        *cutoff,
        faults,
        strategy.unwrap_or(Strategy::PaperLinear),
    )
}

/// Handles [`Request::Scenario`]: generates the seeded adversarial
/// traffic, replays it under credit-based flow control on the requested
/// fabric (HFAST is provisioned from the scenario's own communication
/// graph), and folds the trace into its congestion-tree report.
pub fn scenario(req: &Request, reg: &Registry) -> Response {
    let Request::Scenario {
        kind,
        nodes,
        flows,
        bytes,
        seed,
        fabric,
        strategy,
        credits,
    } = req
    else {
        return wrong_verb(req, "scenario");
    };
    // `Scenario::new` and `CreditConfig::credit` assert their invariants;
    // a network request must fail structurally, never panic a worker.
    if *nodes < 2 || *nodes > MAX_PROCS {
        return err(format!("nodes must be in 2..={MAX_PROCS}, got {nodes}"));
    }
    if flows.is_some_and(|f| f == 0 || f > MAX_SCENARIO_FLOWS) {
        return err(format!(
            "flows must be in 1..={MAX_SCENARIO_FLOWS}, got {flows:?}"
        ));
    }
    if bytes.is_some_and(|b| b == 0) {
        return err("bytes must be positive");
    }
    let credits = credits.unwrap_or(hfast_netsim::congestion::DEFAULT_CREDITS);
    if credits == 0 {
        return err("credits must be positive (links need a buffer slot)");
    }
    let preset = Scenario::preset(*kind, *nodes, *seed);
    let scenario = Scenario::new(
        *kind,
        *nodes,
        flows.unwrap_or(preset.flows),
        bytes.unwrap_or(preset.bytes),
        *seed,
    );
    let generated = scenario.generate();
    // The fabric rides the registry's memoized entries, keyed by the
    // scenario graph's content — repeats (and other verbs naming the same
    // traffic) share construction, while the response cache above this
    // handler absorbs exact repeats entirely.
    let graph = Arc::new(scenario.comm_graph());
    let config = ProvisionConfig::default();
    let entry = match reg.fabric(
        &graph,
        *fabric,
        config.block_ports,
        config.cutoff,
        strategy.unwrap_or(Strategy::PaperLinear),
    ) {
        Ok(e) => e,
        Err(e) => return err(e),
    };
    if let Err(e) = scenario.validate_for(entry.fabric.as_ref()) {
        return err(format!("scenario does not fit the fabric: {e}"));
    }
    reg.note_scenario(*kind);
    let rec = TraceRecorder::new();
    let out = Simulation::new(entry.fabric.as_ref())
        .with_congestion(CreditConfig::credit(credits))
        .with_obs(reg.sim_obs())
        .with_trace(&rec)
        .run(&generated);
    let spans = rec.snapshot();
    let trees = congestion_trees(&spans);
    let spread_stats = utilization_spread(&rank_hotspots(&spans));
    Response::ScenarioReport {
        flows: generated.len(),
        completed: out.stats.completed,
        unrouted: out.stats.unrouted,
        makespan_ns: out.stats.makespan_ns,
        p95_latency_ns: out.stats.p95_latency_ns,
        trees: trees.len(),
        deepest: trees.iter().map(|t| t.depth).max().unwrap_or(0),
        stall_ns: trees.iter().map(|t| t.stall_ns).sum(),
        spread: trees.iter().map(|t| t.spread_ratio).fold(0.0, f64::max),
        off_root_victims: trees.iter().map(|t| t.off_root_victims).sum(),
        max_over_mean: spread_stats.max_over_mean,
        gini: spread_stats.gini,
    }
}

/// Handles [`Request::DebugPanic`].
///
/// # Panics
/// Always — this endpoint exists to prove panic isolation (and, queued,
/// to exercise the job-retry path deterministically). Callers run it
/// under `catch_unwind`.
pub fn debug_panic(req: &Request, _reg: &Registry) -> Response {
    if !matches!(req, Request::DebugPanic) {
        return wrong_verb(req, "debug_panic");
    }
    panic!("debug_panic endpoint exercised")
}

fn wrong_verb(req: &Request, expected: &str) -> Response {
    err(format!(
        "handler {expected} dispatched for {}",
        req.endpoint()
    ))
}

/// Executes one compute request against the registry by dispatching
/// through the verb table.
///
/// # Panics
/// [`Request::DebugPanic`] panics by design — callers run this under
/// `catch_unwind` and must survive (that is the point of the endpoint).
pub fn execute(req: &Request, reg: &Registry) -> Response {
    match req.spec().handler {
        crate::protocol::VerbHandler::Worker(f) => f(req, reg),
        crate::protocol::VerbHandler::Server => err(format!(
            "{} is handled by the server, not a worker",
            req.endpoint()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> AppSpec {
        AppSpec::Inline {
            n,
            edges: (0..n)
                .map(|i| (i, (i + 1) % n, 64 * 1024, 16, 4096))
                .collect(),
        }
    }

    #[test]
    fn provision_reports_port_math() {
        let reg = Registry::new();
        let resp = execute(
            &Request::Provision {
                app: ring(8),
                block_ports: 16,
                cutoff: 2048,
                strategy: None,
            },
            &reg,
        );
        let Response::Provisioned {
            n,
            blocks,
            total_block_ports,
            ..
        } = resp
        else {
            panic!("expected Provisioned, got {resp:?}");
        };
        assert_eq!(n, 8);
        assert!(blocks > 0);
        assert_eq!(total_block_ports, blocks * 16);
    }

    #[test]
    fn cost_ratio_is_consistent() {
        let reg = Registry::new();
        let resp = execute(
            &Request::Cost {
                app: ring(16),
                block_ports: 16,
                cutoff: 2048,
            },
            &reg,
        );
        let Response::CostReport {
            hfast,
            fat_tree,
            ratio,
            hfast_wins,
            ..
        } = resp
        else {
            panic!("expected CostReport, got {resp:?}");
        };
        assert!((ratio - hfast / fat_tree).abs() < 1e-12);
        assert_eq!(hfast_wins, hfast < fat_tree);
    }

    #[test]
    fn tdc_rows_follow_request_order() {
        let reg = Registry::new();
        let resp = execute(
            &Request::Tdc {
                app: ring(8),
                cutoffs: vec![0, 2048, 1 << 20],
            },
            &reg,
        );
        let Response::TdcReport { rows } = resp else {
            panic!("expected TdcReport, got {resp:?}");
        };
        assert_eq!(
            rows.iter().map(|r| r.cutoff).collect::<Vec<_>>(),
            vec![0, 2048, 1 << 20]
        );
        // A 4 KiB max message passes the 2 KiB cutoff but not 1 MiB.
        assert_eq!(rows[0].max, 2);
        assert_eq!(rows[1].max, 2);
        assert_eq!(rows[2].max, 0);
    }

    #[test]
    fn simulate_delivers_all_ring_flows() {
        let reg = Registry::new();
        let resp = execute(
            &Request::Simulate {
                app: ring(8),
                fabric: FabricSpec::FatTree { ports: 8 },
                cutoff: 0,
                faults: None,
                strategy: None,
            },
            &reg,
        );
        let Response::SimReport {
            completed,
            unrouted,
            delivered_bytes,
            ..
        } = resp
        else {
            panic!("expected SimReport, got {resp:?}");
        };
        // Two flows per undirected ring edge, each at the edge's mean
        // message size (64 KiB over 16 messages = 4 KiB).
        assert_eq!(completed, 16);
        assert_eq!(unrouted, 0);
        assert_eq!(delivered_bytes, 16 * 4096);
    }

    #[test]
    fn simulate_is_deterministic_with_and_without_warm_cache() {
        let reg_a = Registry::new();
        let reg_b = Registry::new();
        let req = Request::Simulate {
            app: ring(12),
            fabric: FabricSpec::Torus { dims: (3, 2, 2) },
            cutoff: 0,
            faults: Some(FaultSpec {
                seed: 7,
                count: 2,
                window: (0, 50_000),
                downtime_ns: Some(100_000),
            }),
            strategy: None,
        };
        let a = execute(&req, &reg_a);
        // Second registry: cold caches, same answer. Run twice on reg_a
        // too so the warmed path is also covered.
        let b = execute(&req, &reg_b);
        let c = execute(&req, &reg_a);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn validation_failures_are_structured_errors() {
        let reg = Registry::new();
        for req in [
            Request::Provision {
                app: ring(4),
                block_ports: 1,
                cutoff: 0,
                strategy: None,
            },
            Request::Tdc {
                app: ring(4),
                cutoffs: vec![],
            },
            Request::Simulate {
                app: ring(9),
                fabric: FabricSpec::Torus { dims: (2, 2, 2) },
                cutoff: 0,
                faults: None,
                strategy: None,
            },
            Request::Provision {
                app: AppSpec::Named {
                    name: "NoSuchApp".into(),
                    procs: 8,
                },
                block_ports: 16,
                cutoff: 2048,
                strategy: None,
            },
        ] {
            assert!(
                matches!(execute(&req, &reg), Response::Error { .. }),
                "{req:?} should be a structured error"
            );
        }
    }
}
