//! The daemon: acceptor, connection threads, admission queue, worker pool.
//!
//! ## Thread model
//!
//! One non-blocking acceptor polls for connections and its shutdown flag.
//! Each connection gets a thread that reads frames under a short socket
//! timeout (so drain can interrupt an idle read), parses, and answers
//! cheap requests — health, stats, shutdown, cache hits — in place.
//! Compute requests go through the bounded admission queue to a fixed
//! worker pool; a full queue sheds the request with [`Response::Busy`]
//! instead of letting latency grow without bound. Workers run handlers
//! under `catch_unwind`, so a panicking request costs one structured
//! error, not a worker.
//!
//! ## Why cache hits bypass the queue
//!
//! Cacheable responses are pure functions of the request, so a hit can be
//! served from the connection thread without consuming worker capacity —
//! and because *every* response is either a cache hit or computed by a
//! deterministic handler, the bytes a client sees are independent of the
//! worker count. The integration suite pins that down (same seed, 1 vs 8
//! workers, byte-identical digests).
//!
//! ## Drain
//!
//! `Shutdown` (the request or [`ServerHandle::shutdown`]) flips one flag.
//! The acceptor stops accepting, idle connections close at their next
//! timeout tick, mid-frame connections get a bounded grace to finish,
//! queued work is completed by the workers before they exit, and
//! [`ServerHandle::join`] then flushes the observability export and the
//! Perfetto trace.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use hfast_netsim::RetryPolicy;
use hfast_obs::{Outcome, ServeObs, SlidingWindow};
use hfast_trace::{server_span_id, TraceContext, TraceRecorder, Track};

use crate::cache::ResponseCache;
use crate::frame::{write_frame, FrameError, FramePoll, FrameReader};
use crate::handlers::execute;
use crate::jobs::{Fetched, JobQueue};
use crate::protocol::{
    decode_request_traced, encode_request, encode_response, request_key, Request, Response,
    VerbLatency, VerbWindow, WireVersion, ENDPOINTS,
};
use crate::registry::Registry;

/// How often blocked reads and waits wake up to check the shutdown flag.
const TICK: Duration = Duration::from_millis(50);

/// Ring slots in the `metrics` sliding window.
const WINDOW_BUCKETS: usize = 10;

/// Width of one window slot: one second, so `metrics` reports rolling
/// stats over the last ten seconds in bounded memory.
const WINDOW_BUCKET_NS: u64 = 1_000_000_000;

/// Timeout ticks granted to a connection caught mid-frame at drain time
/// (~1 s) before the server stops waiting for the rest of the frame.
const DRAIN_GRACE_TICKS: u32 = 20;

/// Serving knobs; every field has an `HFAST_SERVE_*` environment override.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Compute worker threads (`HFAST_SERVE_WORKERS`).
    pub workers: usize,
    /// Admission queue capacity before load-shedding (`HFAST_SERVE_QUEUE`).
    pub queue_cap: usize,
    /// Response-cache byte budget (`HFAST_SERVE_CACHE_BYTES`).
    pub cache_bytes: usize,
    /// Response-cache shard count (`HFAST_SERVE_SHARDS`).
    pub cache_shards: usize,
    /// Per-request queue deadline (`HFAST_SERVE_DEADLINE_MS`).
    pub deadline: Duration,
    /// Job worker threads for the durable queue
    /// (`HFAST_SERVE_JOB_WORKERS`).
    pub job_workers: usize,
    /// Job-journal path (`HFAST_SERVE_JOURNAL`); `None` keeps the queue
    /// in memory only.
    pub journal: Option<PathBuf>,
    /// Retry policy for panicking job attempts.
    pub job_retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            cache_bytes: 4 << 20,
            cache_shards: 8,
            deadline: Duration::from_millis(10_000),
            job_workers: 1,
            journal: None,
            job_retry: RetryPolicy::default(),
        }
    }
}

fn env_nonzero(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

impl ServerConfig {
    /// The default config with `HFAST_SERVE_*` environment overrides
    /// applied. Unset, empty, unparsable, or zero values keep defaults.
    pub fn from_env() -> Self {
        let d = ServerConfig::default();
        ServerConfig {
            workers: env_nonzero("HFAST_SERVE_WORKERS", d.workers),
            queue_cap: env_nonzero("HFAST_SERVE_QUEUE", d.queue_cap),
            cache_bytes: env_nonzero("HFAST_SERVE_CACHE_BYTES", d.cache_bytes),
            cache_shards: env_nonzero("HFAST_SERVE_SHARDS", d.cache_shards),
            deadline: Duration::from_millis(env_nonzero(
                "HFAST_SERVE_DEADLINE_MS",
                d.deadline.as_millis() as usize,
            ) as u64),
            job_workers: env_nonzero("HFAST_SERVE_JOB_WORKERS", d.job_workers),
            journal: std::env::var("HFAST_SERVE_JOURNAL")
                .ok()
                .filter(|v| !v.trim().is_empty())
                .map(PathBuf::from),
            job_retry: d.job_retry,
        }
    }
}

/// One queued compute request.
struct Job {
    request: Request,
    /// Cache key when the request is cacheable.
    key: Option<u64>,
    enqueued: Instant,
    deadline: Instant,
    /// Encoded response goes back to the connection thread here.
    reply: mpsc::Sender<String>,
}

/// State shared by the acceptor, connection threads, and workers.
struct Shared {
    config: ServerConfig,
    registry: Registry,
    cache: ResponseCache,
    obs: ServeObs,
    queue: Mutex<VecDeque<Job>>,
    queue_cond: Condvar,
    jobs: JobQueue,
    shutdown: AtomicBool,
    trace: Option<TraceRecorder>,
    epoch: Instant,
    span_counter: AtomicU64,
    /// Rolling per-verb latency/outcome window behind the `metrics` verb.
    /// Recorded unconditionally (the collection path is one short
    /// uncontended mutex per served request, dwarfed by the TCP
    /// round-trip); only the *export* surfaces are gated.
    window: SlidingWindow,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue_cond.notify_all();
        self.jobs.drain();
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn next_span(&self) -> u64 {
        server_span_id(self.span_counter.fetch_add(1, Ordering::Relaxed))
    }
}

/// Outcome of the connection-thread fast path for one request.
enum Routed {
    /// Answer now with these encoded bytes (`bool` = response cache hit).
    Immediate(String, bool),
    /// Queued; await the worker's reply on this receiver.
    Queued(mpsc::Receiver<String>),
}

/// One lifetime-latency row per `ENDPOINTS` entry, in table order, for
/// the `stats` response: request counts from the per-endpoint counters,
/// quantiles from the per-endpoint service histograms.
fn verb_latency_rows(shared: &Shared) -> Vec<VerbLatency> {
    ENDPOINTS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let hist = shared.obs.service_for(i);
            VerbLatency {
                verb: (*name).to_string(),
                count: shared.obs.requests_for(i),
                p50_ns: hist.map_or(0, |h| h.quantile(0.50)),
                p95_ns: hist.map_or(0, |h| h.quantile(0.95)),
                p99_ns: hist.map_or(0, |h| h.quantile(0.99)),
            }
        })
        .collect()
}

fn route_request(shared: &Shared, req: Request) -> Routed {
    shared.obs.record_request(req.endpoint_index());
    match req {
        Request::Health => Routed::Immediate(
            encode_response(&Response::Health {
                workers: shared.config.workers,
                queue: shared.config.queue_cap,
            }),
            false,
        ),
        Request::Stats => {
            let c = shared.cache.stats();
            let sim = shared.registry.sim_obs();
            let (graphs, fabrics) = shared.registry.entry_counts();
            Routed::Immediate(
                encode_response(&Response::Stats {
                    requests: shared.obs.total_requests(),
                    shed: shared.obs.shed.get(),
                    cache_hits: c.hits,
                    cache_misses: c.misses,
                    cache_evictions: c.evictions,
                    cache_entries: c.entries,
                    cache_bytes: c.bytes,
                    sim_events: sim.events.get(),
                    sim_events_per_sec: sim.events_per_sec.get(),
                    strategy_hits: shared.registry.strategy_hits(),
                    scenario_hits: shared.registry.scenario_hits(),
                    graphs,
                    fabrics,
                    jobs: shared.jobs.totals(),
                    latency: verb_latency_rows(shared),
                }),
                false,
            )
        }
        Request::Metrics => {
            let c = shared.cache.stats();
            let totals = shared.jobs.totals();
            let snap = shared.window.snapshot(shared.now_ns());
            let verbs = ENDPOINTS
                .iter()
                .zip(snap.lanes.iter())
                .map(|(name, l)| VerbWindow {
                    verb: (*name).to_string(),
                    count: l.count,
                    ok: l.ok,
                    busy: l.busy,
                    errors: l.errors,
                    p50_ns: l.p50_ns,
                    p95_ns: l.p95_ns,
                    p99_ns: l.p99_ns,
                })
                .collect();
            Routed::Immediate(
                encode_response(&Response::Metrics {
                    window_ns: snap.window_ns,
                    shards: 1,
                    queue_depth: shared.queue.lock().expect("queue poisoned").len() as u64,
                    cache_hits: c.hits,
                    cache_misses: c.misses,
                    jobs_pending: shared.jobs.pending() as u64,
                    jobs_retried: totals.retried,
                    hot_keys: 0,
                    verbs,
                }),
                false,
            )
        }
        Request::Shutdown => {
            shared.begin_drain();
            Routed::Immediate(encode_response(&Response::Ok), false)
        }
        Request::Submit { job } => {
            let resp = match shared.jobs.submit(*job) {
                Ok(id) => Response::JobAccepted { id },
                Err(resp) => resp,
            };
            if matches!(resp, Response::Busy) {
                shared.obs.shed.inc();
            }
            if matches!(resp, Response::Error { .. }) {
                shared.obs.errors.inc();
            }
            Routed::Immediate(encode_response(&resp), false)
        }
        Request::Poll { id } => {
            let resp = shared.jobs.poll(id);
            if matches!(resp, Response::Error { .. }) {
                shared.obs.errors.inc();
            }
            Routed::Immediate(encode_response(&resp), false)
        }
        Request::Fetch { id } => Routed::Immediate(
            match shared.jobs.fetch(id) {
                // Pass-through of the stored canonical text: a fetched
                // result is byte-identical to the synchronous response.
                Fetched::Ready(text) => text,
                Fetched::Status(resp) => {
                    if matches!(resp, Response::Error { .. }) {
                        shared.obs.errors.inc();
                    }
                    encode_response(&resp)
                }
            },
            false,
        ),
        Request::Cancel { id } => {
            let resp = shared.jobs.cancel(id);
            if matches!(resp, Response::Error { .. }) {
                shared.obs.errors.inc();
            }
            Routed::Immediate(encode_response(&resp), false)
        }
        req => {
            let key = if req.cacheable() {
                let key = request_key(&encode_request(&req));
                if let Some(hit) = shared.cache.get(key) {
                    return Routed::Immediate(hit, true);
                }
                Some(key)
            } else {
                None
            };
            let (tx, rx) = mpsc::channel();
            let now = Instant::now();
            let job = Job {
                request: req,
                key,
                enqueued: now,
                deadline: now + shared.config.deadline,
                reply: tx,
            };
            {
                let mut queue = shared.queue.lock().expect("queue poisoned");
                // Checked under the queue lock: workers only exit after
                // observing (empty, draining) under this same lock, so a
                // job admitted here is guaranteed a worker.
                if shared.draining() || queue.len() >= shared.config.queue_cap {
                    drop(queue);
                    shared.obs.shed.inc();
                    return Routed::Immediate(encode_response(&Response::Busy), false);
                }
                queue.push_back(job);
            }
            shared.obs.request_admitted();
            shared.queue_cond.notify_one();
            Routed::Queued(rx)
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.draining() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cond
                    .wait_timeout(queue, TICK)
                    .expect("queue poisoned");
                queue = guard;
            }
        };
        let Some(job) = job else { return };
        let now = Instant::now();
        shared
            .obs
            .queue_wait_ns
            .record(now.duration_since(job.enqueued).as_nanos() as u64);
        let response = if now > job.deadline {
            shared.obs.expired.inc();
            Response::Error {
                message: format!(
                    "deadline exceeded after {} ms in queue",
                    now.duration_since(job.enqueued).as_millis()
                ),
            }
        } else {
            let started = Instant::now();
            let outcome =
                catch_unwind(AssertUnwindSafe(|| execute(&job.request, &shared.registry)));
            shared
                .obs
                .service_ns
                .record(started.elapsed().as_nanos() as u64);
            match outcome {
                Ok(resp) => resp,
                Err(_) => {
                    shared.obs.panics.inc();
                    Response::Error {
                        message: format!(
                            "handler for {} panicked; worker recovered",
                            job.request.endpoint()
                        ),
                    }
                }
            }
        };
        if matches!(response, Response::Error { .. }) {
            shared.obs.errors.inc();
        }
        let encoded = encode_response(&response);
        if let (Some(key), false) = (job.key, matches!(response, Response::Error { .. })) {
            shared.cache.put(key, &encoded);
        }
        // A send error means the connection died while waiting; the
        // response is simply dropped.
        let _ = job.reply.send(encoded);
        shared.obs.request_done();
    }
}

/// Serves one request payload end to end; returns false when the
/// connection should close (write failure).
fn serve_frame(shared: &Shared, stream: &mut TcpStream, conn_id: usize, payload: &str) -> bool {
    let t_start = shared.now_ns();
    let root_span = shared.next_span();
    let mut ctx: Option<TraceContext> = None;
    let mut verb_idx: Option<usize> = None;
    let (encoded, outcome, cache_hit, t_parsed) = match decode_request_traced(payload) {
        Ok((req, version, trace_ctx)) => {
            ctx = trace_ctx;
            verb_idx = Some(req.endpoint_index());
            let t_parsed = shared.now_ns();
            let (body, hit) = match route_request(shared, req) {
                Routed::Immediate(encoded, hit) => (encoded, hit),
                Routed::Queued(rx) => {
                    let encoded = rx.recv().unwrap_or_else(|_| {
                        encode_response(&Response::Error {
                            message: "worker dropped the request during drain".into(),
                        })
                    });
                    (encoded, false)
                }
            };
            // Classify the outcome from the canonical v1 body prefix —
            // cheaper than re-decoding and exact because the body is
            // canonical (fixed field order, no whitespace).
            let outcome = if body.starts_with("{\"type\":\"busy\"") {
                Outcome::Busy
            } else if body.starts_with("{\"type\":\"error\"") {
                Outcome::Error
            } else {
                Outcome::Ok
            };
            // Answer in the envelope the request arrived in: cache and
            // queue always carry the canonical v1 body, so v1 and v2
            // clients share every cached entry. Responses never carry
            // trace context — it flows request-ward only.
            let body = match version {
                WireVersion::V1 => body,
                WireVersion::V2 => crate::protocol::envelope_v2(&body),
            };
            (body, outcome, hit, t_parsed)
        }
        Err(message) => {
            shared.obs.errors.inc();
            (
                encode_response(&Response::Error { message }),
                Outcome::Error,
                false,
                shared.now_ns(),
            )
        }
    };
    let t_done = shared.now_ns();
    let ok = write_frame(stream, &encoded).is_ok();
    if let Some(idx) = verb_idx {
        let latency = t_done.saturating_sub(t_start);
        shared.obs.record_service(idx, latency);
        shared.window.record(t_done, idx, latency, outcome);
    }
    if let Some(trace) = &shared.trace {
        let track = Track::Server(conn_id);
        // A request that arrived with trace context parents its span tree
        // under the remote caller's span so the stitcher can render the
        // whole fleet request as one causal tree; the trace id rides along
        // on every span as a plain field.
        let (remote_parent, trace_id) = match ctx {
            Some(c) => (c.parent_id, Some(c.trace_id)),
            None => (0, None),
        };
        let tag = |mut fields: Vec<(&'static str, u64)>| {
            if let Some(id) = trace_id {
                fields.push(("trace", id));
            }
            fields
        };
        trace.record_span(
            track,
            "request",
            t_start,
            shared.now_ns().saturating_sub(t_start),
            root_span,
            remote_parent,
            tag(vec![("cache_hit", cache_hit as u64)]),
        );
        trace.record_span(
            track,
            "parse",
            t_start,
            t_parsed.saturating_sub(t_start),
            shared.next_span(),
            root_span,
            tag(vec![("bytes", payload.len() as u64)]),
        );
        trace.record_span(
            track,
            "execute",
            t_parsed,
            t_done.saturating_sub(t_parsed),
            shared.next_span(),
            root_span,
            tag(vec![]),
        );
        trace.record_span(
            track,
            "respond",
            t_done,
            shared.now_ns().saturating_sub(t_done),
            shared.next_span(),
            root_span,
            tag(vec![("bytes", encoded.len() as u64), ("ok", ok as u64)]),
        );
    }
    ok
}

fn connection_loop(shared: &Shared, mut stream: TcpStream, conn_id: usize) {
    if stream.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    // Responses are small; waiting for more bytes to coalesce only adds
    // round-trip latency.
    let _ = stream.set_nodelay(true);
    shared.obs.connections.inc();
    let mut reader = FrameReader::new();
    let mut grace = 0u32;
    loop {
        match reader.poll(&mut stream) {
            Ok(FramePoll::Frame(payload)) => {
                grace = 0;
                if !serve_frame(shared, &mut stream, conn_id, &payload) {
                    return;
                }
            }
            Ok(FramePoll::Pending) => {
                if shared.draining() {
                    if !reader.mid_frame() {
                        return; // idle connection: drain closes it now
                    }
                    grace += 1;
                    if grace > DRAIN_GRACE_TICKS {
                        return; // mid-frame but the rest never came
                    }
                }
            }
            Err(FrameError::Eof) | Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return,
            Err(e @ (FrameError::Oversized(_) | FrameError::NotUtf8)) => {
                // Structured refusal, then close: the stream position is
                // undefined past a bad frame.
                shared.obs.errors.inc();
                let resp = encode_response(&Response::Error {
                    message: e.to_string(),
                });
                let _ = write_frame(&mut stream, &resp);
                return;
            }
        }
    }
}

fn acceptor_loop(shared: Arc<Shared>, listener: TcpListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let mut conn_id = 0usize;
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                let id = conn_id;
                conn_id += 1;
                let shared = Arc::clone(&shared);
                conns.push(
                    thread::Builder::new()
                        .name(format!("hfast-serve-conn-{id}"))
                        .spawn(move || connection_loop(&shared, stream, id))
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
                // Occasionally reap finished connection threads so a
                // long-lived daemon does not accumulate handles.
                if conns.len() > 64 {
                    conns.retain(|h| !h.is_finished());
                }
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    for conn in conns {
        let _ = conn.join();
    }
}

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins graceful drain (idempotent; also triggered by the
    /// `shutdown` request).
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until drain completes — every connection closed, every
    /// queued request answered — then flushes the `HFAST_OBS` summary and
    /// the `HFAST_TRACE` Perfetto document. Call [`shutdown`] first (or
    /// let a client send the `shutdown` request) or this blocks forever.
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.obs.export();
        if let Some(trace) = &self.shared.trace {
            hfast_trace::export_to_env_sink("server", &trace.snapshot());
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts the daemon.
///
/// # Errors
/// Propagates the bind failure, or a journal open/replay failure when
/// [`ServerConfig::journal`] is set.
pub fn start(addr: &str, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let jobs = match &config.journal {
        Some(path) => JobQueue::with_journal(path, config.job_retry)?,
        None => JobQueue::new(config.job_retry),
    };
    let shared = Arc::new(Shared {
        cache: ResponseCache::new(config.cache_shards, config.cache_bytes),
        registry: Registry::new(),
        obs: ServeObs::new(&ENDPOINTS),
        queue: Mutex::new(VecDeque::new()),
        queue_cond: Condvar::new(),
        jobs,
        shutdown: AtomicBool::new(false),
        trace: hfast_trace::enabled().then(TraceRecorder::new),
        epoch: Instant::now(),
        span_counter: AtomicU64::new(1),
        window: SlidingWindow::new(ENDPOINTS.len(), WINDOW_BUCKETS, WINDOW_BUCKET_NS),
        config,
    });
    let mut workers: Vec<JoinHandle<()>> = (0..shared.config.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("hfast-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect();
    for i in 0..shared.config.job_workers {
        let shared = Arc::clone(&shared);
        workers.push(
            thread::Builder::new()
                .name(format!("hfast-serve-job-{i}"))
                .spawn(move || shared.jobs.run_worker(&shared.registry))
                .expect("spawn job worker thread"),
        );
    }
    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("hfast-serve-acceptor".into())
            .spawn(move || acceptor_loop(shared, listener))
            .expect("spawn acceptor thread")
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}
