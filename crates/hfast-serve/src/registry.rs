//! Deduplicated construction of expensive request inputs.
//!
//! Profiling a paper application (running its communication kernel over
//! the simulated MPI runtime) and building a fabric with a warm route
//! cache are orders of magnitude more expensive than any single response.
//! When many connections name the same app × scale, the work must happen
//! once: each registry entry is an `Arc<OnceLock<…>>` — the map lock is
//! held only to clone the entry's `Arc`, and `get_or_init` then blocks
//! *only* requesters of the same key while the first one computes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hfast_apps::{all_apps, profile_app};
use hfast_core::{ProvisionConfig, Strategy};
use hfast_netsim::{
    EngineObs, Fabric, FatTreeFabric, HfastFabric, ScenarioKind, SharedPathCache, TorusFabric,
};
use hfast_topology::CommGraph;

use crate::protocol::{AppSpec, FabricSpec};

/// Sanity bound on profiling scale: the six kernels spawn one thread per
/// rank, so an unbounded `procs` would let one request exhaust the host.
pub const MAX_PROCS: usize = 1024;

type GraphResult = Result<Arc<CommGraph>, String>;

/// A fabric built for one (app, fabric-spec, cutoff) key, with the warm
/// shared route cache every simulate request on that key reuses.
pub struct FabricEntry {
    /// The fabric (immutable; `Fabric: Sync` by trait contract).
    pub fabric: Box<dyn Fabric + Send>,
    /// Warm routes shared by concurrent runs over this fabric.
    pub warm: SharedPathCache,
}

type FabricResult = Result<Arc<FabricEntry>, String>;

/// The server-wide registry of profiled graphs and built fabrics.
#[derive(Default)]
pub struct Registry {
    graphs: Mutex<HashMap<String, Arc<OnceLock<GraphResult>>>>,
    fabrics: Mutex<HashMap<String, Arc<OnceLock<FabricResult>>>>,
    /// Engine observability every simulate request records into; the
    /// `stats` verb reports simulator event counts and loop throughput
    /// from here. Wall-clock feeds only the throughput gauge, never
    /// simulated results, so responses stay byte-identical across worker
    /// counts.
    sim_obs: EngineObs,
    /// Provisioner executions per strategy, in [`Strategy::ALL`] order.
    /// Response-cache hits never reach the handlers, so these count real
    /// provisioning work, not request traffic.
    strategy_hits: [AtomicU64; 3],
    /// Scenario replays per generator kind, in [`ScenarioKind::ALL`]
    /// order. Cache hits never reach the handler, so these count real
    /// credit-mode replays.
    scenario_hits: [AtomicU64; 5],
}

fn entry<K: std::hash::Hash + Eq + Clone, V>(
    map: &Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    key: &K,
) -> Arc<OnceLock<V>> {
    let mut map = map.lock().expect("registry poisoned");
    Arc::clone(map.entry(key.clone()).or_default())
}

fn profile_named(name: &str, procs: usize) -> GraphResult {
    if procs == 0 || procs > MAX_PROCS {
        return Err(format!("procs must be in 1..={MAX_PROCS}, got {procs}"));
    }
    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| format!("unknown application {name:?}"))?;
    let outcome = profile_app(app.as_ref(), procs)
        .map_err(|e| format!("profiling {name} at {procs} ranks failed: {e:?}"))?;
    Ok(Arc::new(outcome.steady.comm_graph()))
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The engine observability sink shared by every simulate run.
    pub fn sim_obs(&self) -> &EngineObs {
        &self.sim_obs
    }

    /// Records one provisioner execution under `strategy`.
    pub fn note_strategy(&self, strategy: Strategy) {
        let idx = Strategy::ALL
            .iter()
            .position(|s| *s == strategy)
            .expect("every strategy is listed");
        self.strategy_hits[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// How many memoized (graph, fabric) entries are resident — reported
    /// by the stats verb so operators can watch registry growth.
    pub fn entry_counts(&self) -> (u64, u64) {
        let graphs = self.graphs.lock().expect("graphs poisoned").len() as u64;
        let fabrics = self.fabrics.lock().expect("fabrics poisoned").len() as u64;
        (graphs, fabrics)
    }

    /// Per-strategy execution counts, in [`Strategy::ALL`] order.
    pub fn strategy_hits(&self) -> [u64; 3] {
        [
            self.strategy_hits[0].load(Ordering::Relaxed),
            self.strategy_hits[1].load(Ordering::Relaxed),
            self.strategy_hits[2].load(Ordering::Relaxed),
        ]
    }

    /// Records one scenario replay of `kind`.
    pub fn note_scenario(&self, kind: ScenarioKind) {
        let idx = ScenarioKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("every kind is listed");
        self.scenario_hits[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-kind scenario replay counts, in [`ScenarioKind::ALL`] order.
    pub fn scenario_hits(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for (slot, counter) in out.iter_mut().zip(self.scenario_hits.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }

    /// The communication graph of an app spec: inline graphs materialize
    /// directly (cheap), named apps profile once per (name, procs) and
    /// every later request — concurrent or not — reuses the result.
    pub fn graph(&self, app: &AppSpec) -> GraphResult {
        if let Some(g) = app.inline_graph() {
            if g.n() == 0 {
                return Err("inline graph needs at least one task".into());
            }
            return Ok(Arc::new(g));
        }
        let AppSpec::Named { name, procs } = app else {
            unreachable!("inline handled above")
        };
        let key = format!("{name}\u{1}{procs}");
        let slot = entry(&self.graphs, &key);
        slot.get_or_init(|| profile_named(name, *procs)).clone()
    }

    /// The fabric (plus warm cache) for a simulate key. Keyed by the
    /// graph's content hash rather than the app spec, so an inline graph
    /// identical to a profiled one shares the same entry; the provisioner
    /// strategy is part of the key, so two strategies on one graph never
    /// share a (differently provisioned) fabric.
    pub fn fabric(
        &self,
        graph: &Arc<CommGraph>,
        spec: FabricSpec,
        block_ports: usize,
        cutoff: u64,
        strategy: Strategy,
    ) -> FabricResult {
        let key = format!(
            "{:016x}\u{1}{spec:?}\u{1}{block_ports}\u{1}{cutoff}\u{1}{strategy}",
            graph.content_hash()
        );
        let slot = entry(&self.fabrics, &key);
        slot.get_or_init(|| {
            let fabric: Box<dyn Fabric + Send> = match spec {
                FabricSpec::FatTree { ports } => Box::new(
                    FatTreeFabric::new(graph.n(), ports).map_err(|e| format!("fat tree: {e}"))?,
                ),
                FabricSpec::Torus { dims } => {
                    if dims.0 * dims.1 * dims.2 < graph.n() {
                        return Err(format!(
                            "torus {dims:?} holds {} nodes, app needs {}",
                            dims.0 * dims.1 * dims.2,
                            graph.n()
                        ));
                    }
                    Box::new(TorusFabric::new(dims).map_err(|e| format!("torus: {e}"))?)
                }
                FabricSpec::Hfast => {
                    self.note_strategy(strategy);
                    Box::new(HfastFabric::provisioned(
                        graph,
                        ProvisionConfig {
                            block_ports,
                            cutoff,
                        },
                        strategy,
                    ))
                }
            };
            Ok(Arc::new(FabricEntry {
                fabric,
                warm: SharedPathCache::new(),
            }))
        })
        .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_graphs_bypass_the_registry() {
        let reg = Registry::new();
        let spec = AppSpec::Inline {
            n: 4,
            edges: vec![(0, 1, 4096, 1, 4096)],
        };
        let g = reg.graph(&spec).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.edge(0, 1).bytes, 4096);
        assert!(reg.graphs.lock().unwrap().is_empty());
    }

    #[test]
    fn named_graphs_are_memoized() {
        let reg = Registry::new();
        let spec = AppSpec::Named {
            name: "Cactus".into(),
            procs: 8,
        };
        let a = reg.graph(&spec).unwrap();
        let b = reg.graph(&spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request reused the profile");
        assert_eq!(reg.graphs.lock().unwrap().len(), 1);
    }

    #[test]
    fn unknown_app_and_bad_procs_are_errors() {
        let reg = Registry::new();
        let bad_name = AppSpec::Named {
            name: "NotAnApp".into(),
            procs: 8,
        };
        assert!(reg.graph(&bad_name).is_err());
        let bad_procs = AppSpec::Named {
            name: "GTC".into(),
            procs: MAX_PROCS + 1,
        };
        assert!(reg.graph(&bad_procs).is_err());
    }

    #[test]
    fn fabric_entries_are_shared_by_graph_content() {
        let reg = Registry::new();
        let spec = AppSpec::Inline {
            n: 8,
            edges: vec![(0, 1, 4096, 1, 4096), (2, 3, 8192, 2, 4096)],
        };
        let g1 = reg.graph(&spec).unwrap();
        let g2 = reg.graph(&spec).unwrap();
        assert!(!Arc::ptr_eq(&g1, &g2), "inline graphs rebuild");
        let f1 = reg
            .fabric(
                &g1,
                FabricSpec::Torus { dims: (2, 2, 2) },
                16,
                2048,
                Strategy::PaperLinear,
            )
            .unwrap();
        let f2 = reg
            .fabric(
                &g2,
                FabricSpec::Torus { dims: (2, 2, 2) },
                16,
                2048,
                Strategy::PaperLinear,
            )
            .unwrap();
        assert!(
            Arc::ptr_eq(&f1, &f2),
            "same content, same fabric + warm cache"
        );
        assert_eq!(f1.fabric.nodes(), 8);
    }

    #[test]
    fn strategies_get_separate_fabrics_and_are_counted() {
        let reg = Registry::new();
        let g = reg
            .graph(&AppSpec::Inline {
                n: 4,
                edges: vec![(0, 1, 4096, 1, 4096), (2, 3, 8192, 2, 4096)],
            })
            .unwrap();
        let a = reg
            .fabric(&g, FabricSpec::Hfast, 16, 2048, Strategy::PaperLinear)
            .unwrap();
        let b = reg
            .fabric(&g, FabricSpec::Hfast, 16, 2048, Strategy::BffCircuit)
            .unwrap();
        let a2 = reg
            .fabric(&g, FabricSpec::Hfast, 16, 2048, Strategy::PaperLinear)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "strategies provision differently");
        assert!(Arc::ptr_eq(&a, &a2), "same strategy reuses the entry");
        // Memoized rebuilds don't re-count: one execution per strategy.
        assert_eq!(reg.strategy_hits(), [1, 1, 0]);
    }

    #[test]
    fn undersized_torus_is_rejected() {
        let reg = Registry::new();
        let g = reg
            .graph(&AppSpec::Inline {
                n: 9,
                edges: vec![(0, 8, 4096, 1, 4096)],
            })
            .unwrap();
        assert!(reg
            .fabric(
                &g,
                FabricSpec::Torus { dims: (2, 2, 2) },
                16,
                2048,
                Strategy::PaperLinear,
            )
            .is_err());
    }
}
