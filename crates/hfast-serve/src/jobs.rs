//! Durable job queue: `submit` / `poll` / `fetch` / `cancel` for
//! long-running verbs.
//!
//! Synchronous request/response caps how long a verb may run at the
//! connection deadline; a faulted ultra-scale replay does not fit. The
//! queue gives those verbs the asynchronous shape: `submit` returns a job
//! id immediately, `poll` reports progress, `fetch` returns the result
//! once done, `cancel` withdraws work that has not started.
//!
//! **Durability** is a JSON-lines journal (one line per state change)
//! replayed on restart:
//!
//! ```text
//! {"op":"submit","id":3,"job":"{\"type\":\"simulate\",...}"}
//! {"op":"done","id":3,"resp":"{\"type\":\"sim\",...}"}
//! {"op":"fail","id":4,"message":"panicked: ..."}
//! {"op":"cancel","id":5}
//! ```
//!
//! Payloads are embedded as JSON *strings* (escaped canonical v1
//! encodings) so the line grammar stays flat and replay restores the
//! response text byte-exactly. Replay tolerates a torn final line — the
//! crash case — truncating the fragment so the next record starts on a
//! fresh line, and re-enqueues every job with no terminal record: a
//! submitted job is never lost and never duplicated across a restart.
//! Terminal jobs are retained for `poll`/`fetch` up to
//! [`MAX_TERMINAL_JOBS`], then evicted oldest-first so a long-lived
//! daemon's memory stays bounded.
//!
//! **Retries** reuse the netsim [`RetryPolicy`] shape: a panicking
//! attempt re-enqueues with exponential backoff until the max-attempt cap
//! turns it into a terminal failure. Structured [`Response::Error`]s are
//! terminal immediately — they are deterministic verdicts, not transient
//! faults.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use hfast_netsim::RetryPolicy;
use hfast_obs::JsonObj;
use hfast_trace::json;

use crate::handlers::execute;
use crate::protocol::{
    decode_request, encode_request, encode_response, JobState, JobTotals, Request, Response,
};
use crate::registry::Registry;

/// Upper bound on *live* (non-terminal) jobs before `submit` sheds;
/// keeps the backlog and the in-memory map proportionate. Terminal jobs
/// do not count — their retention is bounded by [`MAX_TERMINAL_JOBS`].
pub const MAX_RESIDENT_JOBS: usize = 4096;

/// How many terminal (done/failed/cancelled) jobs stay resident for
/// `poll`/`fetch` before the oldest is evicted. Without this bound a
/// long-running daemon's map would grow with *lifetime* submissions and
/// eventually answer `Busy` forever.
pub const MAX_TERMINAL_JOBS: usize = 4096;

/// How long a worker sleeps when every ready job is still backing off.
const BACKOFF_TICK: Duration = Duration::from_millis(20);

struct JobRecord {
    req: Request,
    state: JobState,
    attempts: u32,
    message: Option<String>,
    /// Canonical v1 response text, present once `state == Done`.
    response: Option<String>,
    /// Earliest instant the next attempt may start (backoff gate).
    not_before: Option<Instant>,
}

struct QueueState {
    jobs: HashMap<u64, JobRecord>,
    ready: VecDeque<u64>,
    /// Ids in terminal order, oldest first — the eviction queue.
    terminal: VecDeque<u64>,
    totals: JobTotals,
    draining: bool,
}

impl QueueState {
    /// Jobs still counting against [`MAX_RESIDENT_JOBS`].
    fn live(&self) -> usize {
        self.jobs.len() - self.terminal.len()
    }

    /// Records a terminal transition and evicts the oldest terminal jobs
    /// past the retention bound.
    fn note_terminal(&mut self, id: u64) {
        self.terminal.push_back(id);
        while self.terminal.len() > MAX_TERMINAL_JOBS {
            let evicted = self.terminal.pop_front().unwrap();
            self.jobs.remove(&evicted);
        }
    }
}

/// Outcome of [`JobQueue::fetch`]: either the stored canonical response
/// text (pass-through, byte-identical to a synchronous run) or a status.
pub enum Fetched {
    /// The job finished; this is its canonical v1 response text.
    Ready(String),
    /// The job is not done (or does not exist): a status response.
    Status(Response),
}

/// A durable, retrying job queue shared by the server's job workers.
pub struct JobQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    journal: Mutex<Option<File>>,
    next_id: AtomicU64,
    retry: RetryPolicy,
}

impl JobQueue {
    /// An in-memory queue (no journal — jobs do not survive a restart).
    pub fn new(retry: RetryPolicy) -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: HashMap::new(),
                ready: VecDeque::new(),
                terminal: VecDeque::new(),
                totals: JobTotals::default(),
                draining: false,
            }),
            cond: Condvar::new(),
            journal: Mutex::new(None),
            next_id: AtomicU64::new(1),
            retry,
        }
    }

    /// A journaled queue: replays `path` if it exists (re-enqueueing every
    /// non-terminal job), then appends new records to it.
    pub fn with_journal(path: &Path, retry: RetryPolicy) -> io::Result<JobQueue> {
        let queue = JobQueue::new(retry);
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut text)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let (valid_len, unterminated) = queue.replay(&text);
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        // Drop the torn tail so the next record starts on a fresh line
        // instead of merging into the fragment; a final valid record the
        // crash cut at the newline gets its newline back instead.
        if (valid_len as usize) < text.len() {
            file.set_len(valid_len)?;
        }
        if unterminated {
            file.write_all(b"\n")?;
        }
        *queue.journal.lock().unwrap() = Some(file);
        Ok(queue)
    }

    /// Applies journal text to the (empty) queue. Stops at the first
    /// malformed line: a torn tail is the expected crash artifact, and
    /// anything after it is suspect. Returns how many leading bytes of
    /// `text` form valid records and whether the final valid record is
    /// missing its trailing newline, so the caller can repair the file
    /// before appending.
    fn replay(&self, text: &str) -> (u64, bool) {
        let mut st = self.state.lock().unwrap();
        let mut max_id = 0u64;
        let mut valid_len = 0usize;
        let mut unterminated = false;
        for segment in text.split_inclusive('\n') {
            let line = segment.strip_suffix('\n').unwrap_or(segment);
            let Ok(v) = json::parse(line) else { break };
            let (Some(op), Some(id)) = (
                v.get("op").and_then(|o| o.as_str()),
                v.get("id").and_then(|i| i.as_u64()),
            ) else {
                break;
            };
            let applied = match op {
                "submit" => match v
                    .get("job")
                    .and_then(|j| j.as_str())
                    .and_then(|s| decode_request(s).ok())
                {
                    Some(req) => {
                        st.jobs.insert(
                            id,
                            JobRecord {
                                req,
                                state: JobState::Queued,
                                attempts: 0,
                                message: None,
                                response: None,
                                not_before: None,
                            },
                        );
                        st.totals.submitted += 1;
                        true
                    }
                    None => false,
                },
                "done" => match v.get("resp").and_then(|r| r.as_str()) {
                    Some(resp) => {
                        let hit = match st.jobs.get_mut(&id) {
                            Some(rec) => {
                                rec.state = JobState::Done;
                                rec.response = Some(resp.to_string());
                                true
                            }
                            None => false,
                        };
                        if hit {
                            st.totals.completed += 1;
                            st.note_terminal(id);
                        }
                        true
                    }
                    None => false,
                },
                "fail" => {
                    let message = v.get("message").and_then(|m| m.as_str()).unwrap_or("");
                    let hit = match st.jobs.get_mut(&id) {
                        Some(rec) => {
                            rec.state = JobState::Failed;
                            rec.message = Some(message.to_string());
                            true
                        }
                        None => false,
                    };
                    if hit {
                        st.totals.failed += 1;
                        st.note_terminal(id);
                    }
                    true
                }
                "cancel" => {
                    let hit = match st.jobs.get_mut(&id) {
                        Some(rec) => {
                            rec.state = JobState::Cancelled;
                            true
                        }
                        None => false,
                    };
                    if hit {
                        st.totals.cancelled += 1;
                        st.note_terminal(id);
                    }
                    true
                }
                _ => false,
            };
            if !applied {
                break;
            }
            max_id = max_id.max(id);
            valid_len += segment.len();
            unterminated = !segment.ends_with('\n');
        }
        // Re-enqueue survivors in id order: deterministic restart order.
        let mut pending: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, r)| !r.state.is_terminal())
            .map(|(&id, _)| id)
            .collect();
        pending.sort_unstable();
        for id in pending {
            st.jobs.get_mut(&id).unwrap().state = JobState::Queued;
            st.ready.push_back(id);
        }
        self.next_id.store(max_id + 1, Ordering::SeqCst);
        (valid_len as u64, unterminated)
    }

    fn journal_line(&self, line: &str) {
        let mut guard = self.journal.lock().unwrap();
        if let Some(f) = guard.as_mut() {
            // Single write of line + newline: a crash tears at most the
            // final line, which replay tolerates.
            let mut buf = String::with_capacity(line.len() + 1);
            buf.push_str(line);
            buf.push('\n');
            let _ = f.write_all(buf.as_bytes());
            let _ = f.flush();
        }
    }

    fn has_journal(&self) -> bool {
        self.journal.lock().unwrap().is_some()
    }

    /// Accepts a queueable request as a job, returning its id.
    ///
    /// Rejects non-queueable verbs, a full queue, and — unless a journal
    /// makes the job durable across the restart — a draining server.
    /// The `Err` carries the refusal response verbatim.
    #[allow(clippy::result_large_err)] // the Err *is* the wire response
    pub fn submit(&self, job: Request) -> Result<u64, Response> {
        if !job.spec().queueable {
            return Err(Response::Error {
                message: format!("verb {:?} is not queueable", job.endpoint()),
            });
        }
        let mut st = self.state.lock().unwrap();
        if st.draining && !self.has_journal() {
            return Err(Response::Busy);
        }
        if st.live() >= MAX_RESIDENT_JOBS {
            return Err(Response::Busy);
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let line = JsonObj::new()
            .str("op", "submit")
            .u64("id", id)
            .str("job", &encode_request(&job))
            .finish();
        st.jobs.insert(
            id,
            JobRecord {
                req: job,
                state: JobState::Queued,
                attempts: 0,
                message: None,
                response: None,
                not_before: None,
            },
        );
        st.totals.submitted += 1;
        st.ready.push_back(id);
        // Journal while still holding the state lock: a worker can pick
        // the job up the instant the lock drops, and its terminal record
        // must never reach the journal before this submit record.
        self.journal_line(&line);
        drop(st);
        self.cond.notify_one();
        Ok(id)
    }

    fn status_of(id: u64, rec: &JobRecord) -> Response {
        Response::JobStatus {
            id,
            state: rec.state,
            attempts: rec.attempts,
            message: rec.message.clone(),
        }
    }

    /// Reports a job's status (idempotent). Terminal jobs evicted past
    /// [`MAX_TERMINAL_JOBS`] report "no such job".
    pub fn poll(&self, id: u64) -> Response {
        let st = self.state.lock().unwrap();
        match st.jobs.get(&id) {
            Some(rec) => Self::status_of(id, rec),
            None => Response::Error {
                message: format!("no such job {id}"),
            },
        }
    }

    /// Returns the stored response of a done job, or its status
    /// (idempotent — fetching twice returns the same bytes, until the
    /// job ages past the [`MAX_TERMINAL_JOBS`] retention bound).
    pub fn fetch(&self, id: u64) -> Fetched {
        let st = self.state.lock().unwrap();
        match st.jobs.get(&id) {
            Some(rec) => match &rec.response {
                Some(text) => Fetched::Ready(text.clone()),
                None => Fetched::Status(Self::status_of(id, rec)),
            },
            None => Fetched::Status(Response::Error {
                message: format!("no such job {id}"),
            }),
        }
    }

    /// Cancels a queued job. Running and terminal jobs are left untouched
    /// (their current status is returned), so cancel is idempotent.
    pub fn cancel(&self, id: u64) -> Response {
        let mut st = self.state.lock().unwrap();
        let Some(rec) = st.jobs.get_mut(&id) else {
            return Response::Error {
                message: format!("no such job {id}"),
            };
        };
        if rec.state == JobState::Queued {
            rec.state = JobState::Cancelled;
            let resp = Self::status_of(id, rec);
            st.totals.cancelled += 1;
            st.ready.retain(|&r| r != id);
            st.note_terminal(id);
            self.journal_line(&JsonObj::new().str("op", "cancel").u64("id", id).finish());
            resp
        } else {
            Self::status_of(id, rec)
        }
    }

    /// Lifetime job counters for the stats verb.
    pub fn totals(&self) -> JobTotals {
        self.state.lock().unwrap().totals
    }

    /// Jobs not yet in a terminal state (queued or running).
    pub fn pending(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.jobs.values().filter(|r| !r.state.is_terminal()).count()
    }

    /// Stops workers: in-flight attempts finish, queued jobs stay journaled
    /// for the next incarnation to replay.
    pub fn drain(&self) {
        self.state.lock().unwrap().draining = true;
        self.cond.notify_all();
    }

    /// Pops the next runnable job id, waiting while the queue is empty or
    /// every entry is backing off. Returns `None` once draining.
    fn next_job(&self) -> Option<u64> {
        let mut st = self.state.lock().unwrap();
        loop {
            let now = Instant::now();
            if let Some(pos) = st.ready.iter().position(|id| {
                st.jobs
                    .get(id)
                    .is_some_and(|r| r.not_before.is_none_or(|t| t <= now))
            }) {
                let id = st.ready.remove(pos).unwrap();
                let rec = st.jobs.get_mut(&id).unwrap();
                rec.state = JobState::Running;
                rec.attempts += 1;
                rec.not_before = None;
                return Some(id);
            }
            if st.draining {
                return None;
            }
            // Deferred entries need a timed wait; an empty queue can block
            // until submit/drain notifies.
            st = if st.ready.is_empty() {
                self.cond.wait(st).unwrap()
            } else {
                self.cond.wait_timeout(st, BACKOFF_TICK).unwrap().0
            };
        }
    }

    /// Runs one job worker until drained. Panicking attempts retry with
    /// exponential backoff up to the policy's attempt cap; structured
    /// errors are terminal.
    pub fn run_worker(&self, reg: &Registry) {
        while let Some(id) = self.next_job() {
            let req = {
                let st = self.state.lock().unwrap();
                st.jobs.get(&id).map(|r| r.req.clone())
            };
            let Some(req) = req else { continue };
            let outcome = catch_unwind(AssertUnwindSafe(|| execute(&req, reg)));
            let mut st = self.state.lock().unwrap();
            let Some(rec) = st.jobs.get_mut(&id) else {
                continue;
            };
            match outcome {
                Ok(Response::Error { message }) => {
                    rec.state = JobState::Failed;
                    rec.message = Some(message.clone());
                    st.totals.failed += 1;
                    st.note_terminal(id);
                    drop(st);
                    self.journal_line(
                        &JsonObj::new()
                            .str("op", "fail")
                            .u64("id", id)
                            .str("message", &message)
                            .finish(),
                    );
                }
                Ok(resp) => {
                    let text = encode_response(&resp);
                    rec.state = JobState::Done;
                    rec.response = Some(text.clone());
                    st.totals.completed += 1;
                    st.note_terminal(id);
                    drop(st);
                    self.journal_line(
                        &JsonObj::new()
                            .str("op", "done")
                            .u64("id", id)
                            .str("resp", &text)
                            .finish(),
                    );
                }
                Err(payload) => {
                    let what = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic".to_string());
                    let message = format!("panicked: {what}");
                    if rec.attempts >= self.retry.attempts() {
                        rec.state = JobState::Failed;
                        rec.message = Some(message.clone());
                        st.totals.failed += 1;
                        st.note_terminal(id);
                        drop(st);
                        self.journal_line(
                            &JsonObj::new()
                                .str("op", "fail")
                                .u64("id", id)
                                .str("message", &message)
                                .finish(),
                        );
                    } else {
                        let backoff = Duration::from_nanos(self.retry.backoff_ns(rec.attempts));
                        rec.state = JobState::Queued;
                        rec.message = Some(message);
                        rec.not_before = Some(Instant::now() + backoff);
                        st.totals.retried += 1;
                        st.ready.push_back(id);
                        drop(st);
                        self.cond.notify_one();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{AppSpec, FabricSpec};

    fn sim_request(procs: usize) -> Request {
        Request::Simulate {
            app: AppSpec::Inline {
                n: procs,
                edges: (0..procs)
                    .map(|i| (i, (i + 1) % procs, 64 * 1024, 16, 4096))
                    .collect(),
            },
            fabric: FabricSpec::Hfast,
            cutoff: 2048,
            faults: None,
            strategy: None,
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 1_000,
            max_backoff_ns: 10_000,
        }
    }

    #[test]
    fn submit_run_fetch_cycle() {
        let reg = Registry::new();
        let q = JobQueue::new(fast_retry());
        let id = q.submit(sim_request(8)).expect("queueable");
        // Drain after one pass so the worker loop terminates.
        let done = {
            std::thread::scope(|s| {
                let h = s.spawn(|| q.run_worker(&reg));
                loop {
                    if let Response::JobStatus { state, .. } = q.poll(id) {
                        if state.is_terminal() {
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                q.drain();
                h.join().unwrap();
                q.poll(id)
            })
        };
        let Response::JobStatus {
            state, attempts, ..
        } = done
        else {
            panic!("expected status");
        };
        assert_eq!(state, JobState::Done);
        assert_eq!(attempts, 1);
        let Fetched::Ready(text) = q.fetch(id) else {
            panic!("expected stored response");
        };
        // Fetch is idempotent: same bytes again.
        let Fetched::Ready(text2) = q.fetch(id) else {
            panic!("expected stored response twice");
        };
        assert_eq!(text, text2);
        assert!(text.starts_with(r#"{"type":"sim""#), "{text}");
    }

    #[test]
    fn panics_retry_to_the_cap_then_fail() {
        let reg = Registry::new();
        let q = JobQueue::new(fast_retry());
        let id = q.submit(Request::DebugPanic).expect("queueable");
        std::thread::scope(|s| {
            let h = s.spawn(|| q.run_worker(&reg));
            loop {
                if let Response::JobStatus { state, .. } = q.poll(id) {
                    if state.is_terminal() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            q.drain();
            h.join().unwrap();
        });
        let Response::JobStatus {
            state,
            attempts,
            message,
            ..
        } = q.poll(id)
        else {
            panic!("expected status");
        };
        assert_eq!(state, JobState::Failed);
        assert_eq!(attempts, 3, "retried to the max-attempt cap");
        assert!(message.unwrap().contains("panicked"));
        assert_eq!(q.totals().retried, 2);
        assert_eq!(q.totals().failed, 1);
    }

    #[test]
    fn unqueueable_and_unknown_ids_are_structured() {
        let q = JobQueue::new(RetryPolicy::default());
        assert!(matches!(
            q.submit(Request::Health),
            Err(Response::Error { .. })
        ));
        assert!(matches!(q.poll(99), Response::Error { .. }));
        assert!(matches!(q.cancel(99), Response::Error { .. }));
        assert!(matches!(
            q.fetch(99),
            Fetched::Status(Response::Error { .. })
        ));
    }

    #[test]
    fn cancel_is_idempotent_and_only_hits_queued_jobs() {
        let q = JobQueue::new(RetryPolicy::default());
        let id = q.submit(sim_request(4)).expect("queueable");
        let Response::JobStatus { state, .. } = q.cancel(id) else {
            panic!("expected status");
        };
        assert_eq!(state, JobState::Cancelled);
        // Second cancel: same answer, no double count.
        let Response::JobStatus { state, .. } = q.cancel(id) else {
            panic!("expected status");
        };
        assert_eq!(state, JobState::Cancelled);
        assert_eq!(q.totals().cancelled, 1);
    }

    #[test]
    fn journal_replay_restores_pending_and_done_jobs() {
        let dir = std::env::temp_dir().join(format!(
            "hfast-jobs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_file(&path);
        let reg = Registry::new();

        // First incarnation: finish one job, leave one queued, then "crash"
        // (drop without draining the queue's backlog).
        let (done_id, pending_id, done_text) = {
            let q = JobQueue::with_journal(&path, fast_retry()).unwrap();
            let done_id = q.submit(sim_request(4)).unwrap();
            std::thread::scope(|s| {
                let h = s.spawn(|| q.run_worker(&reg));
                loop {
                    if let Response::JobStatus { state, .. } = q.poll(done_id) {
                        if state.is_terminal() {
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                q.drain();
                h.join().unwrap();
            });
            let pending_id = q.submit(sim_request(6)).unwrap();
            let Fetched::Ready(text) = q.fetch(done_id) else {
                panic!("first incarnation finished the job");
            };
            (done_id, pending_id, text)
        };

        // Simulated torn tail from the crash: half a record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"op\":\"submit\",\"id\":9").unwrap();
        }

        // Second incarnation replays: done job still fetchable
        // byte-identically, pending job re-enqueued exactly once. It also
        // truncates the torn fragment, so its own appends start on a
        // fresh line.
        let new_id = {
            let q = JobQueue::with_journal(&path, fast_retry()).unwrap();
            let Fetched::Ready(text) = q.fetch(done_id) else {
                panic!("done job survived the restart");
            };
            assert_eq!(text, done_text, "stored response is byte-identical");
            let Response::JobStatus { state, .. } = q.poll(pending_id) else {
                panic!("pending job survived the restart");
            };
            assert_eq!(state, JobState::Queued);
            assert_eq!(q.pending(), 1, "no duplicate enqueue");
            // Fresh ids never collide with replayed ones.
            let new_id = q.submit(sim_request(4)).unwrap();
            assert!(new_id > pending_id);
            new_id
        };

        // Third incarnation: the post-crash submit must not have merged
        // into the torn fragment — every record is still replayable.
        let q = JobQueue::with_journal(&path, fast_retry()).unwrap();
        let Fetched::Ready(text) = q.fetch(done_id) else {
            panic!("done job survived two restarts");
        };
        assert_eq!(text, done_text);
        assert!(
            matches!(
                q.poll(new_id),
                Response::JobStatus {
                    state: JobState::Queued,
                    ..
                }
            ),
            "job submitted after the crash survived the next restart"
        );
        assert_eq!(q.pending(), 2, "both non-terminal jobs re-enqueued");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_tail_missing_only_its_newline_is_kept_and_repaired() {
        let dir = std::env::temp_dir().join(format!(
            "hfast-jobs-nl-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        // A crash can deliver the full final record but tear off its
        // newline: the record must replay, and the repair must keep the
        // next append from merging into it.
        {
            let line = JsonObj::new()
                .str("op", "submit")
                .u64("id", 1)
                .str("job", &encode_request(&sim_request(4)))
                .finish();
            let mut f = File::create(&path).unwrap();
            f.write_all(line.as_bytes()).unwrap();
        }
        let second_id = {
            let q = JobQueue::with_journal(&path, fast_retry()).unwrap();
            assert_eq!(q.pending(), 1, "newline-less record replayed");
            q.submit(sim_request(6)).unwrap()
        };
        let q = JobQueue::with_journal(&path, fast_retry()).unwrap();
        assert_eq!(q.pending(), 2, "repaired tail kept both records");
        assert!(matches!(
            q.poll(second_id),
            Response::JobStatus {
                state: JobState::Queued,
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn terminal_jobs_are_evicted_not_counted_against_the_cap() {
        let q = JobQueue::new(RetryPolicy::default());
        let first = q.submit(sim_request(4)).expect("queueable");
        q.cancel(first);
        // Push the oldest terminal job out of the retention window.
        for _ in 0..MAX_TERMINAL_JOBS {
            let id = q
                .submit(sim_request(4))
                .expect("terminal jobs must not brick submit");
            q.cancel(id);
        }
        assert!(
            matches!(q.poll(first), Response::Error { .. }),
            "oldest terminal job evicted"
        );
        // The map stayed bounded and submit still accepts live work.
        let fresh = q.submit(sim_request(4)).expect("cap counts live jobs only");
        assert!(matches!(
            q.poll(fresh),
            Response::JobStatus {
                state: JobState::Queued,
                ..
            }
        ));
        assert_eq!(q.totals().cancelled, (MAX_TERMINAL_JOBS as u64) + 1);
    }
}
