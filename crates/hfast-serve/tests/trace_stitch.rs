//! End-to-end stitcher check: a live 2-shard fleet capture must render
//! every cross-process request as ONE connected causal tree — the
//! client root span transitively parenting the router child and the
//! shard worker spans, with zero orphans.
//!
//! The heavy lifting runs in the `fleet_trace --capture` binary (the
//! per-shard `HFAST_TRACE` sink is probed once per process, so the
//! capture needs real subprocesses); this test drives it and then
//! re-validates the stitched document independently.

use std::process::Command;

use hfast_trace::trace_tree;

#[test]
fn two_shard_capture_stitches_into_one_tree_per_request() {
    let dir = std::env::temp_dir().join(format!("hfast-trace-stitch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = Command::new(env!("CARGO_BIN_EXE_fleet_trace"))
        .arg("--capture")
        .arg(&dir)
        .env_remove("HFAST_TRACE") // the capture sets per-process sinks itself
        .env_remove("HFAST_OBS")
        .output()
        .expect("run fleet_trace --capture");
    assert!(
        out.status.success(),
        "capture failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Re-validate the stitched document with our own eyes, not just the
    // binary's: every trace id the capture drove must form a single
    // connected tree that spans at least client + router + shard.
    let doc = std::fs::read_to_string(dir.join("fleet.json")).expect("stitched document");
    let mut checked = 0u64;
    for trace_id in 1..=64 {
        let tree = trace_tree(&doc, trace_id).expect("valid document");
        if tree.spans == 0 {
            continue;
        }
        checked += 1;
        assert_eq!(tree.roots, 1, "trace {trace_id}: exactly one root span");
        assert_eq!(tree.orphans, 0, "trace {trace_id}: every parent resolves");
        assert!(
            tree.spans >= 3,
            "trace {trace_id}: {} spans — must cover client, router and shard",
            tree.spans
        );
    }
    assert!(checked >= 4, "capture produced only {checked} traces");

    // The per-process inputs are all present: client, router, 2 shards.
    for name in [
        "client.jsonl",
        "router.jsonl",
        "shard-0.jsonl",
        "shard-1.jsonl",
    ] {
        let path = dir.join(name);
        assert!(path.exists(), "{name} missing from the capture");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
