//! Property and end-to-end tests for the serving daemon.
//!
//! The socket-driving tests each start a real server on an ephemeral
//! port, talk to it over TCP, and drain it — nothing is mocked. They are
//! intentionally small-scale (inline graphs, a handful of requests); the
//! sustained-load version lives in the `hfast-bench` integration suite.

use hfast_par::check::forall;
use hfast_par::rng::Rng64;
use hfast_serve::{
    decode_request, decode_request_versioned, decode_response, decode_response_versioned,
    encode_request, encode_request_versioned, encode_response, encode_response_versioned,
    read_frame, request_key, start, write_frame, AppSpec, Client, FabricSpec, FaultSpec, JobState,
    JobTotals, Request, Response, ServerConfig, Strategy, TdcRow, VerbLatency, VerbWindow,
    WireVersion, ENDPOINTS,
};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;

/// A random integer in the JSON-safe range: the protocol's numbers ride
/// on JSON, where integers are exact only up to 2^53 (the f64 mantissa).
fn u53(rng: &mut Rng64) -> u64 {
    rng.next_u64() >> 11
}

fn random_app(rng: &mut Rng64) -> AppSpec {
    if rng.bool(0.3) {
        AppSpec::Named {
            name: (*rng.pick(&["Cactus", "LBMHD", "GTC", "SuperLU", "PMEMD", "PARATEC"]))
                .to_string(),
            procs: rng.range(1, 128),
        }
    } else {
        let n = rng.range(2, 12);
        let edges = (0..rng.range(1, 10))
            .map(|_| {
                let a = rng.range(0, n);
                let mut b = rng.range(0, n);
                if b == a {
                    b = (a + 1) % n;
                }
                (
                    a,
                    b,
                    rng.range_u64(1, 1 << 24),
                    rng.range_u64(1, 64),
                    rng.range_u64(1, 1 << 20),
                )
            })
            .collect();
        AppSpec::Inline { n, edges }
    }
}

fn random_fabric(rng: &mut Rng64) -> FabricSpec {
    match rng.range(0, 3) {
        0 => FabricSpec::FatTree {
            ports: rng.range(4, 64),
        },
        1 => FabricSpec::Torus {
            dims: (rng.range(1, 6), rng.range(1, 6), rng.range(1, 6)),
        },
        _ => FabricSpec::Hfast,
    }
}

fn random_strategy(rng: &mut Rng64) -> Option<Strategy> {
    rng.bool(0.5).then(|| {
        *rng.pick(&[
            Strategy::PaperLinear,
            Strategy::BffCircuit,
            Strategy::DemandDecomp,
        ])
    })
}

fn random_simulate(rng: &mut Rng64) -> Request {
    Request::Simulate {
        app: random_app(rng),
        fabric: random_fabric(rng),
        cutoff: rng.range_u64(0, 1 << 16),
        faults: rng.bool(0.5).then(|| FaultSpec {
            seed: u53(rng),
            count: rng.range(0, 8),
            window: (rng.range_u64(0, 1000), rng.range_u64(1000, 1 << 20)),
            downtime_ns: rng.bool(0.5).then(|| rng.range_u64(1, 1 << 20)),
        }),
        strategy: random_strategy(rng),
    }
}

fn random_request(rng: &mut Rng64) -> Request {
    match rng.range(0, 13) {
        0 => Request::Health,
        1 => Request::Stats,
        2 => Request::Provision {
            app: random_app(rng),
            block_ports: rng.range(2, 64),
            cutoff: rng.range_u64(0, 1 << 20),
            strategy: random_strategy(rng),
        },
        3 => Request::Cost {
            app: random_app(rng),
            block_ports: rng.range(2, 64),
            cutoff: rng.range_u64(0, 1 << 20),
        },
        4 => Request::Tdc {
            app: random_app(rng),
            cutoffs: (0..rng.range(1, 8))
                .map(|_| rng.range_u64(0, 1 << 24))
                .collect(),
        },
        5 => random_simulate(rng),
        6 => Request::Shutdown,
        7 => Request::Submit {
            job: Box::new(if rng.bool(0.8) {
                random_simulate(rng)
            } else {
                Request::DebugPanic
            }),
        },
        8 => Request::Poll { id: u53(rng) },
        9 => Request::Fetch { id: u53(rng) },
        10 => Request::Cancel { id: u53(rng) },
        11 => Request::Metrics,
        _ => Request::DebugPanic,
    }
}

fn random_verb_latency(rng: &mut Rng64) -> Vec<VerbLatency> {
    (0..rng.range(0, 4))
        .map(|_| VerbLatency {
            verb: (*rng.pick(&ENDPOINTS)).to_string(),
            count: u53(rng),
            p50_ns: u53(rng),
            p95_ns: u53(rng),
            p99_ns: u53(rng),
        })
        .collect()
}

#[test]
fn any_request_round_trips_and_is_canonical() {
    forall("request codec round-trip", 200, |rng| {
        let req = random_request(rng);
        let text = encode_request(&req);
        let back = decode_request(&text).expect("encoded request decodes");
        assert_eq!(back, req);
        // Canonical: re-encoding the decoded value reproduces the bytes,
        // so the cache key is well-defined.
        assert_eq!(encode_request(&back), text);
        assert_eq!(request_key(&text), request_key(&encode_request(&back)));
        // The v2 envelope round-trips the same value and reports its
        // version; the v1 path reports V1.
        let v2 = encode_request_versioned(&req, WireVersion::V2);
        let (back2, ver) = decode_request_versioned(&v2).expect("v2 decodes");
        assert_eq!(back2, req);
        assert_eq!(ver, WireVersion::V2);
        assert_eq!(
            decode_request_versioned(&text).expect("v1 decodes").1,
            WireVersion::V1
        );
    });
}

#[test]
fn any_response_round_trips() {
    forall("response codec round-trip", 200, |rng| {
        let resp = match rng.range(0, 11) {
            0 => Response::Health {
                workers: rng.range(1, 64),
                queue: rng.range(1, 1024),
            },
            1 => Response::Stats {
                requests: u53(rng),
                shed: u53(rng),
                cache_hits: u53(rng),
                cache_misses: u53(rng),
                cache_evictions: u53(rng),
                cache_entries: u53(rng),
                cache_bytes: u53(rng),
                sim_events: u53(rng),
                sim_events_per_sec: u53(rng),
                strategy_hits: [u53(rng), u53(rng), u53(rng)],
                scenario_hits: [u53(rng), u53(rng), u53(rng), u53(rng), u53(rng)],
                graphs: u53(rng),
                fabrics: u53(rng),
                jobs: JobTotals {
                    submitted: u53(rng),
                    completed: u53(rng),
                    failed: u53(rng),
                    cancelled: u53(rng),
                    retried: u53(rng),
                },
                latency: random_verb_latency(rng),
            },
            2 => Response::Provisioned {
                n: rng.range(1, 4096),
                blocks: rng.range(0, 4096),
                total_block_ports: rng.range(0, 1 << 20),
                circuit_ports: rng.range(0, 1 << 20),
                ports_per_node: rng.f64() * 64.0,
                max_switch_hops: rng.range(0, 16),
            },
            3 => Response::CostReport {
                hfast: rng.f64() * 1e6,
                fat_tree: rng.f64() * 1e6,
                ratio: rng.f64(),
                hfast_wins: rng.bool(0.5),
                hfast_ports_per_node: rng.f64() * 64.0,
                fat_tree_ports_per_node: rng.range(1, 64),
            },
            4 => Response::TdcReport {
                rows: (0..rng.range(0, 6))
                    .map(|_| TdcRow {
                        cutoff: u53(rng),
                        max: rng.range(0, 4096),
                        min: rng.range(0, 4096),
                        avg: rng.f64() * 4096.0,
                        median: rng.range(0, 4096),
                    })
                    .collect(),
            },
            5 => Response::SimReport {
                completed: rng.range(0, 1 << 20),
                unrouted: rng.range(0, 1 << 20),
                abandoned: rng.range(0, 1 << 20),
                delivered_bytes: u53(rng),
                max_latency_ns: u53(rng),
                makespan_ns: u53(rng),
                total_retries: u53(rng),
                reprovisions: rng.range(0, 64),
            },
            6 => rng.pick(&[Response::Busy, Response::Ok]).clone(),
            7 if rng.bool(0.5) => Response::Metrics {
                window_ns: u53(rng),
                shards: u53(rng),
                queue_depth: u53(rng),
                cache_hits: u53(rng),
                cache_misses: u53(rng),
                jobs_pending: u53(rng),
                jobs_retried: u53(rng),
                hot_keys: u53(rng),
                verbs: (0..rng.range(0, 4))
                    .map(|_| VerbWindow {
                        verb: (*rng.pick(&ENDPOINTS)).to_string(),
                        count: u53(rng),
                        ok: u53(rng),
                        busy: u53(rng),
                        errors: u53(rng),
                        p50_ns: u53(rng),
                        p95_ns: u53(rng),
                        p99_ns: u53(rng),
                    })
                    .collect(),
            },
            7 => Response::JobAccepted { id: u53(rng) },
            8 => Response::JobStatus {
                id: u53(rng),
                state: *rng.pick(&[
                    JobState::Queued,
                    JobState::Running,
                    JobState::Done,
                    JobState::Failed,
                    JobState::Cancelled,
                ]),
                attempts: rng.range(0, 16) as u32,
                message: rng
                    .bool(0.5)
                    .then(|| format!("attempt #{} \"failed\"", rng.range(0, 100))),
            },
            _ => Response::Error {
                message: format!(
                    "error #{} with \"quotes\" and \\slashes",
                    rng.range(0, 1000)
                ),
            },
        };
        let text = encode_response(&resp);
        let back = decode_response(&text).expect("encoded response decodes");
        assert_eq!(back, resp);
        assert_eq!(encode_response(&back), text);
        let v2 = encode_response_versioned(&resp, WireVersion::V2);
        let (back2, ver) = decode_response_versioned(&v2).expect("v2 decodes");
        assert_eq!(back2, resp);
        assert_eq!(ver, WireVersion::V2);
    });
}

/// A small inline app whose requests are cheap enough to fire many times.
fn toy_app() -> AppSpec {
    AppSpec::Inline {
        n: 6,
        edges: vec![
            (0, 1, 1 << 16, 16, 4096),
            (1, 2, 1 << 14, 4, 4096),
            (2, 3, 1 << 18, 32, 8192),
            (4, 5, 1 << 12, 2, 2048),
        ],
    }
}

fn toy_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn cached_response_is_byte_identical_to_fresh() {
    let server = start("127.0.0.1:0", toy_config()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let requests = [
        Request::Provision {
            app: toy_app(),
            block_ports: 16,
            cutoff: 2048,
            strategy: None,
        },
        Request::Cost {
            app: toy_app(),
            block_ports: 8,
            cutoff: 4096,
        },
        Request::Tdc {
            app: toy_app(),
            cutoffs: vec![0, 4096, 1 << 16],
        },
        Request::Simulate {
            app: toy_app(),
            fabric: FabricSpec::Torus { dims: (2, 2, 2) },
            cutoff: 0,
            faults: Some(FaultSpec {
                seed: 42,
                count: 2,
                window: (0, 10_000),
                downtime_ns: None,
            }),
            strategy: None,
        },
    ];
    for req in &requests {
        let (_, fresh) = client.call_text(req).expect("fresh call");
        let (_, cached) = client.call_text(req).expect("cached call");
        assert_eq!(fresh, cached, "cache changed the bytes of {req:?}");
    }
    match client.call(&Request::Stats).expect("stats") {
        Response::Stats {
            cache_hits,
            cache_misses,
            ..
        } => {
            assert_eq!(cache_hits, requests.len() as u64);
            assert_eq!(cache_misses, requests.len() as u64);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    client.call(&Request::Shutdown).expect("shutdown");
    server.join();
}

/// Writes raw bytes with *no* length prefix, shuts down the write side,
/// and returns everything the server sends back before closing. The
/// unframed view of the wire that the truncation probes need.
fn send_unframed(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    stream.write_all(bytes).expect("write raw bytes");
    stream.flush().expect("flush");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown write side");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("drain server reply");
    out
}

#[test]
fn malformed_frames_are_structured_errors_and_leave_the_server_serving() {
    let server = start("127.0.0.1:0", toy_config()).expect("bind");
    let addr = server.local_addr();

    // Valid frame, garbage payload: structured error, connection usable.
    let mut stream = TcpStream::connect(addr).expect("connect");
    for bad in [
        "",
        "not json at all",
        "{\"type\":\"no_such_endpoint\"}",
        "[1,2,3]",
    ] {
        write_frame(&mut stream, bad).expect("write survives");
        let reply = read_frame(&mut stream).expect("call survives");
        match decode_response(&reply) {
            Ok(Response::Error { message }) => assert!(!message.is_empty()),
            other => panic!("payload {bad:?} should yield Error, got {other:?}"),
        }
    }
    // The same connection still serves real requests afterwards.
    write_frame(&mut stream, &encode_request(&Request::Health)).expect("health write");
    assert!(matches!(
        decode_response(&read_frame(&mut stream).expect("health read")),
        Ok(Response::Health { .. })
    ));

    // Oversized length prefix: one structured refusal, then close.
    let bytes = send_unframed(addr, &u32::MAX.to_be_bytes());
    assert!(bytes.len() > 4, "expected an error frame, got {bytes:?}");
    let text = std::str::from_utf8(&bytes[4..]).expect("utf8 payload");
    assert!(
        matches!(decode_response(text), Ok(Response::Error { .. })),
        "oversized prefix should refuse with Error, got {text}"
    );

    // Truncated frame (prefix promises more than arrives): the server
    // just drops the connection — nothing to answer.
    let mut partial = 100u32.to_be_bytes().to_vec();
    partial.extend_from_slice(b"only a few bytes");
    assert!(send_unframed(addr, &partial).is_empty());

    // After all of that the server still computes.
    let mut fine = Client::connect(addr).expect("connect");
    assert!(matches!(
        fine.call(&Request::Tdc {
            app: toy_app(),
            cutoffs: vec![2048],
        })
        .expect("tdc"),
        Response::TdcReport { .. }
    ));
    fine.call(&Request::Shutdown).expect("shutdown");
    server.join();
}

#[test]
fn a_panicking_handler_does_not_kill_its_worker() {
    // One worker: if the panic killed it, the follow-up request would
    // hang (nobody left to serve the queue) instead of answering.
    let server = start(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for _ in 0..3 {
        match client
            .call(&Request::DebugPanic)
            .expect("panic call answers")
        {
            Response::Error { message } => assert!(message.contains("panicked")),
            other => panic!("expected Error, got {other:?}"),
        }
        match client
            .call(&Request::Provision {
                app: toy_app(),
                block_ports: 16,
                cutoff: 2048,
                strategy: None,
            })
            .expect("worker survived")
        {
            Response::Provisioned { n, .. } => assert_eq!(n, 6),
            other => panic!("expected Provisioned, got {other:?}"),
        }
    }
    client.call(&Request::Shutdown).expect("shutdown");
    server.join();
}

#[test]
fn draining_server_sheds_new_compute_requests() {
    let server = start("127.0.0.1:0", toy_config()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.call(&Request::Shutdown).expect("shutdown ack");
    // The connection is already open, so the next request reaches the
    // server mid-drain; compute must be refused, not hung.
    match client.call(&Request::Provision {
        app: toy_app(),
        block_ports: 16,
        cutoff: 2048,
        strategy: None,
    }) {
        Ok(Response::Busy) => {}
        // The drain may close the connection before the request lands.
        Ok(other) => panic!("expected Busy, got {other:?}"),
        Err(_) => {}
    }
    server.join();
}
