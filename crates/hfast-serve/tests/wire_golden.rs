//! Golden wire-format tests: the v1 encoding is a compatibility
//! contract, so these pin exact bytes, not just round-trips. If any
//! assertion here fails, deployed v1 clients break — change the test
//! only alongside a deliberate, versioned protocol revision.
//!
//! Also covers the v2 envelope (`{"v":2,` prefix, otherwise the same
//! body), answered-in-kind behaviour over a real socket, and the
//! cross-version cache identity (a v2 request hits the cache entry a v1
//! request populated, because the cache key is the canonical v1 body).

use hfast_serve::{
    decode_request_traced, decode_request_versioned, decode_response_versioned, encode_request,
    encode_request_versioned, encode_response, encode_response_versioned, envelope_traced,
    envelope_v2, read_frame, request_key, start, strip_envelope, write_frame, AppSpec, Client,
    FabricSpec, JobState, Request, Response, ServerConfig, WireVersion,
};
use hfast_trace::TraceContext;
use std::net::TcpStream;

/// One pre-encoded frame out, one frame in — the raw view of the wire
/// that lets a test pin exact reply bytes.
fn raw_exchange(stream: &mut TcpStream, payload: &str) -> String {
    write_frame(stream, payload).expect("write frame");
    read_frame(stream).expect("read frame")
}

fn cost_req() -> Request {
    Request::Cost {
        app: AppSpec::Named {
            name: "GTC".into(),
            procs: 8,
        },
        block_ports: 16,
        cutoff: 2048,
    }
}

fn simulate_req() -> Request {
    Request::Simulate {
        app: AppSpec::Named {
            name: "Cactus".into(),
            procs: 4,
        },
        fabric: FabricSpec::FatTree { ports: 8 },
        cutoff: 2048,
        faults: None,
        strategy: None,
    }
}

#[test]
fn v1_request_bytes_are_pinned() {
    let golden: &[(Request, &str)] = &[
        (Request::Health, r#"{"type":"health"}"#),
        (Request::Stats, r#"{"type":"stats"}"#),
        (
            cost_req(),
            r#"{"type":"cost","app":{"name":"GTC","procs":8},"block_ports":16,"cutoff":2048}"#,
        ),
        (
            simulate_req(),
            r#"{"type":"simulate","app":{"name":"Cactus","procs":4},"fabric":{"kind":"fattree","ports":8},"cutoff":2048}"#,
        ),
        (
            Request::Submit {
                job: Box::new(simulate_req()),
            },
            r#"{"type":"submit","job":{"type":"simulate","app":{"name":"Cactus","procs":4},"fabric":{"kind":"fattree","ports":8},"cutoff":2048}}"#,
        ),
        (Request::Poll { id: 7 }, r#"{"type":"poll","id":7}"#),
        (Request::Fetch { id: 7 }, r#"{"type":"fetch","id":7}"#),
        (Request::Cancel { id: 7 }, r#"{"type":"cancel","id":7}"#),
    ];
    for (req, want) in golden {
        assert_eq!(&encode_request(req), want, "v1 encoding drifted");
        // The v2 form is exactly the v1 body behind a version tag.
        assert_eq!(
            encode_request_versioned(req, WireVersion::V2),
            format!("{{\"v\":2,{}", &want[1..]),
        );
        // Both decode back, reporting their version.
        let (back, v) = decode_request_versioned(want).expect("v1 decodes");
        assert_eq!((&back, v), (req, WireVersion::V1));
        let (back, v) = decode_request_versioned(&envelope_v2(want)).expect("v2 decodes");
        assert_eq!((&back, v), (req, WireVersion::V2));
    }
}

#[test]
fn v1_response_bytes_are_pinned() {
    let golden: &[(Response, &str)] = &[
        (Response::Busy, r#"{"type":"busy"}"#),
        (
            Response::Error {
                message: "nope".into(),
            },
            r#"{"type":"error","message":"nope"}"#,
        ),
        (
            Response::Health {
                workers: 4,
                queue: 0,
            },
            r#"{"type":"health","ok":true,"workers":4,"queue":0}"#,
        ),
        (
            Response::JobAccepted { id: (1 << 40) | 7 },
            r#"{"type":"job","id":1099511627783}"#,
        ),
        (
            Response::JobStatus {
                id: 7,
                state: JobState::Queued,
                attempts: 0,
                message: None,
            },
            r#"{"type":"job_status","id":7,"state":"queued","attempts":0}"#,
        ),
        (
            Response::JobStatus {
                id: 7,
                state: JobState::Failed,
                attempts: 3,
                message: Some("panic".into()),
            },
            r#"{"type":"job_status","id":7,"state":"failed","attempts":3,"message":"panic"}"#,
        ),
    ];
    for (resp, want) in golden {
        assert_eq!(&encode_response(resp), want, "v1 encoding drifted");
        assert_eq!(
            encode_response_versioned(resp, WireVersion::V2),
            format!("{{\"v\":2,{}", &want[1..]),
        );
        let (back, v) = decode_response_versioned(want).expect("v1 decodes");
        assert_eq!((&back, v), (resp, WireVersion::V1));
        let (back, v) = decode_response_versioned(&envelope_v2(want)).expect("v2 decodes");
        assert_eq!((&back, v), (resp, WireVersion::V2));
    }
}

/// The daemon answers in the version the request arrived in, on the same
/// connection, interleaved — version is per-frame, not per-connection.
#[test]
fn server_answers_in_kind_over_a_socket() {
    let server = start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).expect("connect");

    let req = cost_req();
    let v1_reply = raw_exchange(&mut stream, &encode_request(&req));
    assert!(
        v1_reply.starts_with(r#"{"type":"#),
        "v1 request must get an untagged v1 reply, got {v1_reply}"
    );

    let v2_reply = raw_exchange(
        &mut stream,
        &encode_request_versioned(&req, WireVersion::V2),
    );
    assert!(
        v2_reply.starts_with(r#"{"v":2,"type":"#),
        "v2 request must get a v2-tagged reply, got {v2_reply}"
    );
    // Same answer modulo the envelope: v2 body == tagged v1 body.
    assert_eq!(v2_reply, envelope_v2(&v1_reply));

    // Interleave again the other way round — no per-connection latching.
    let v1_again = raw_exchange(&mut stream, &encode_request(&req));
    assert_eq!(v1_again, v1_reply);

    // A traced v2 request gets the same v2 reply: trace context flows
    // request-ward only and never tags the response bytes.
    let ctx = TraceContext {
        trace_id: 1,
        parent_id: (1 << 60) | 1,
    };
    let traced_reply = raw_exchange(&mut stream, &envelope_traced(&encode_request(&req), ctx));
    assert_eq!(
        traced_reply, v2_reply,
        "tracing must not change reply bytes"
    );

    // The typed client checks in-kind answering for us too.
    let mut client = Client::connect(&addr).expect("connect typed");
    let typed = client
        .call_versioned(&req, WireVersion::V2)
        .expect("typed v2");
    assert!(matches!(typed, Response::CostReport { .. }));

    client.call(&Request::Shutdown).expect("drain");
    server.join();
}

/// The traced envelope is a strict superset of v2: pinned bytes, ids as
/// hex strings (a numeric id would round through f64 JSON parsers), and
/// the context-free v2 frame stays byte-for-byte what PR 8 shipped.
#[test]
fn traced_envelope_bytes_are_pinned() {
    let req = cost_req();
    let body = encode_request(&req);
    let ctx = TraceContext {
        trace_id: 3,
        parent_id: (1 << 60) | 3,
    };
    let traced = envelope_traced(&body, ctx);
    assert_eq!(
        traced,
        format!(
            "{{\"v\":2,\"trace\":{{\"id\":\"3\",\"parent\":\"1000000000000003\"}},{}",
            &body[1..]
        ),
        "traced envelope drifted"
    );
    let (back, version, got) = decode_request_traced(&traced).expect("traced decodes");
    assert_eq!(
        (back, version, got),
        (req.clone(), WireVersion::V2, Some(ctx))
    );
    assert_eq!(strip_envelope(&traced), body, "strip recovers the v1 body");

    // Without a trace member, the v2 frame is exactly the PR 8 bytes.
    let plain = encode_request_versioned(&req, WireVersion::V2);
    assert_eq!(plain, format!("{{\"v\":2,{}", &body[1..]));
    let (_, _, none) = decode_request_traced(&plain).expect("plain v2 decodes");
    assert_eq!(none, None, "no trace member, no context");
    let (_, _, none) = decode_request_traced(&body).expect("v1 decodes");
    assert_eq!(none, None);
}

/// v1 and v2 texts hash differently, but the daemon caches by the
/// canonical v1 body — so a v2 request is a cache hit on the entry a v1
/// request populated (and vice versa), not a duplicate computation.
#[test]
fn cache_is_shared_across_wire_versions() {
    assert_ne!(
        request_key(&encode_request(&cost_req())),
        request_key(&encode_request_versioned(&cost_req(), WireVersion::V2)),
        "sanity: the raw texts do hash apart",
    );

    let server = start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    client
        .call_versioned(&cost_req(), WireVersion::V1)
        .expect("v1 populates");
    client
        .call_versioned(&cost_req(), WireVersion::V2)
        .expect("v2 hits");

    match client.call(&Request::Stats).expect("stats") {
        Response::Stats {
            cache_hits,
            cache_misses,
            ..
        } => {
            assert_eq!(cache_misses, 1, "one compute for both versions");
            assert_eq!(cache_hits, 1, "the v2 request must hit the v1 entry");
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    client.call(&Request::Shutdown).expect("drain");
    server.join();
}
