//! Telemetry must be invisible on the wire: a daemon with `HFAST_TRACE`
//! and `HFAST_OBS` switched on answers every request with exactly the
//! bytes the switched-off daemon produces — for every verb, in the v1,
//! v2, and traced-v2 envelopes. The switches are probed once per
//! process, so the on/off pair must be real subprocesses.

use std::io::{BufRead as _, BufReader};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use hfast_serve::{
    decode_response, encode_request, encode_request_versioned, envelope_traced, read_frame,
    write_frame, AppSpec, FabricSpec, Request, Response, WireVersion,
};
use hfast_trace::TraceContext;

struct Daemon {
    child: Child,
    stream: TcpStream,
}

/// Spawns one shard daemon with the given telemetry environment and
/// connects to it, parsing the address from its `READY` line.
fn spawn_daemon(telemetry: Option<(&str, &str)>) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hfast-fleet"));
    cmd.args(["--shard", "127.0.0.1:0"])
        .env_remove("HFAST_TRACE")
        .env_remove("HFAST_OBS")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some((trace_sink, obs_sink)) = telemetry {
        cmd.env("HFAST_TRACE", trace_sink)
            .env("HFAST_OBS", obs_sink);
    }
    let mut child = cmd.spawn().expect("spawn shard daemon");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read READY line");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("expected READY line, got {line:?}"))
        .to_string();
    let stream = TcpStream::connect(&addr).expect("connect to daemon");
    Daemon { child, stream }
}

fn exchange(stream: &mut TcpStream, payload: &str) -> String {
    write_frame(stream, payload).expect("write frame");
    read_frame(stream).expect("read frame")
}

/// Requests whose responses are pure functions of the request — these
/// must answer byte-identically regardless of telemetry, including the
/// deterministic error paths of the job verbs and the panic probe.
fn deterministic_pool() -> Vec<Request> {
    let ring = |n: usize| AppSpec::Inline {
        n,
        edges: (0..n)
            .map(|i| (i, (i + 1) % n, 64 * 1024, 16, 4096))
            .collect(),
    };
    vec![
        Request::Health,
        Request::Provision {
            app: ring(8),
            block_ports: 16,
            cutoff: 2048,
            strategy: None,
        },
        Request::Cost {
            app: ring(8),
            block_ports: 8,
            cutoff: 4096,
        },
        Request::Tdc {
            app: ring(6),
            cutoffs: vec![0, 2048],
        },
        Request::Simulate {
            app: ring(6),
            fabric: FabricSpec::Hfast,
            cutoff: 2048,
            faults: None,
            strategy: None,
        },
        Request::DebugPanic,
        Request::Poll { id: 9999 },
        Request::Fetch { id: 9999 },
        Request::Cancel { id: 9999 },
    ]
}

/// Zeroes the fields whose values depend on wall-clock timing, leaving
/// every count, gauge, and byte-exact field to be compared strictly.
fn mask_timing(resp: Response) -> Response {
    match resp {
        Response::Stats {
            requests,
            shed,
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_entries,
            cache_bytes,
            sim_events,
            strategy_hits,
            scenario_hits,
            graphs,
            fabrics,
            jobs,
            mut latency,
            ..
        } => {
            for row in &mut latency {
                row.p50_ns = 0;
                row.p95_ns = 0;
                row.p99_ns = 0;
            }
            Response::Stats {
                requests,
                shed,
                cache_hits,
                cache_misses,
                cache_evictions,
                cache_entries,
                cache_bytes,
                sim_events,
                sim_events_per_sec: 0,
                strategy_hits,
                scenario_hits,
                graphs,
                fabrics,
                jobs,
                latency,
            }
        }
        Response::Metrics {
            window_ns,
            shards,
            queue_depth,
            cache_hits,
            cache_misses,
            jobs_pending,
            jobs_retried,
            hot_keys,
            mut verbs,
        } => {
            for row in &mut verbs {
                row.p50_ns = 0;
                row.p95_ns = 0;
                row.p99_ns = 0;
            }
            Response::Metrics {
                window_ns,
                shards,
                queue_depth,
                cache_hits,
                cache_misses,
                jobs_pending,
                jobs_retried,
                hot_keys,
                verbs,
            }
        }
        other => other,
    }
}

#[test]
fn telemetry_on_answers_byte_identically_to_telemetry_off() {
    let dir = std::env::temp_dir().join(format!("hfast-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("telemetry dir");
    let trace_sink = dir.join("trace.jsonl").display().to_string();
    let obs_sink = dir.join("obs.jsonl").display().to_string();

    let mut off = spawn_daemon(None);
    let mut on = spawn_daemon(Some((&trace_sink, &obs_sink)));

    // Every deterministic verb, in all three envelopes, in lockstep so
    // both daemons see the identical request sequence.
    let mut seq = 0u64;
    for req in &deterministic_pool() {
        let body = encode_request(req);
        let v2 = encode_request_versioned(req, WireVersion::V2);
        seq += 1;
        let traced = envelope_traced(
            &body,
            TraceContext {
                trace_id: seq,
                parent_id: (1 << 60) | seq,
            },
        );
        for payload in [&body, &v2, &traced] {
            let a = exchange(&mut off.stream, payload);
            let b = exchange(&mut on.stream, payload);
            assert_eq!(a, b, "telemetry changed the reply to {payload}");
        }
        // Within the telemetry-on daemon, the traced reply must equal
        // the plain v2 reply: context flows request-ward only.
        let plain = exchange(&mut on.stream, &v2);
        let traced_again = exchange(&mut on.stream, &traced);
        assert_eq!(traced_again, plain, "trace context leaked into the reply");
        // Rebalance: the off daemon sees the same two extra frames.
        exchange(&mut off.stream, &v2);
        exchange(&mut off.stream, &traced);
    }

    // Counter verbs: identical request history, so everything but the
    // latency quantiles must match exactly (masked compare).
    for req in [Request::Stats, Request::Metrics] {
        let body = encode_request(&req);
        let a = exchange(&mut off.stream, &body);
        let b = exchange(&mut on.stream, &body);
        let a = mask_timing(decode_response(&a).expect("off decodes"));
        let b = mask_timing(decode_response(&b).expect("on decodes"));
        assert_eq!(a, b, "telemetry changed the {} counters", req.endpoint());
    }

    // A real durable job: accepted with the same id, completes on both,
    // and fetches byte-identical results.
    let submit = Request::Submit {
        job: Box::new(Request::Simulate {
            app: AppSpec::Inline {
                n: 6,
                edges: (0..6)
                    .map(|i| (i, (i + 1) % 6, 64 * 1024, 16, 4096))
                    .collect(),
            },
            fabric: FabricSpec::Hfast,
            cutoff: 4096,
            faults: None,
            strategy: None,
        }),
    };
    let body = encode_request(&submit);
    let a = exchange(&mut off.stream, &body);
    let b = exchange(&mut on.stream, &body);
    assert_eq!(a, b, "job acceptance differs under telemetry");
    let id = match decode_response(&a).expect("job accepted") {
        Response::JobAccepted { id } => id,
        other => panic!("expected JobAccepted, got {other:?}"),
    };
    let await_done = |stream: &mut TcpStream| {
        let poll = encode_request(&Request::Poll { id });
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let text = exchange(stream, &poll);
            if text.contains("\"state\":\"done\"") {
                return;
            }
            assert!(Instant::now() < deadline, "job never finished: {text}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    await_done(&mut off.stream);
    await_done(&mut on.stream);
    let fetch = encode_request(&Request::Fetch { id });
    let a = exchange(&mut off.stream, &fetch);
    let b = exchange(&mut on.stream, &fetch);
    assert_eq!(a, b, "fetched job bytes differ under telemetry");

    // Shutdown acknowledges identically; the telemetry-on daemon then
    // flushes a non-empty span file on drain, the off daemon writes none.
    let bye = encode_request(&Request::Shutdown);
    let a = exchange(&mut off.stream, &bye);
    let b = exchange(&mut on.stream, &bye);
    assert_eq!(a, b, "shutdown ack differs under telemetry");
    assert!(off.child.wait().expect("off exits").success());
    assert!(on.child.wait().expect("on exits").success());
    let spans = std::fs::read_to_string(&trace_sink).expect("span sink written");
    assert!(
        spans.lines().count() > 1,
        "telemetry-on daemon exported no spans"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
