//! Fleet integration: in-process shard daemons addressed through
//! [`FleetClient`]'s consistent-hash routing. The PR's acceptance
//! properties live here — shard count must be invisible in the bytes
//! (digests identical across 1, 2, and 4 shards), pure verbs must fail
//! over to replicas when the owning shard is down, and journaled jobs
//! must survive a shard restart with zero loss.

use std::time::{Duration, Instant};

use hfast_serve::{
    start, AppSpec, Client, FabricSpec, FleetClient, JobState, Request, Response, ServerConfig,
    ServerHandle,
};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Deterministic all-cacheable pool over the paper apps, mirroring the
/// load generator's mix without depending on `hfast-bench` (which
/// depends on this crate).
fn pool() -> Vec<Request> {
    let mut pool = Vec::new();
    for name in ["Cactus", "LBMHD", "GTC", "SuperLU"] {
        let app = AppSpec::Named {
            name: name.to_string(),
            procs: 8,
        };
        pool.push(Request::Provision {
            app: app.clone(),
            block_ports: 16,
            cutoff: 2048,
            strategy: None,
        });
        pool.push(Request::Cost {
            app: app.clone(),
            block_ports: 16,
            cutoff: 2048,
        });
        pool.push(Request::Tdc {
            app: app.clone(),
            cutoffs: vec![0, 2048],
        });
        pool.push(Request::Simulate {
            app,
            fabric: FabricSpec::FatTree { ports: 8 },
            cutoff: 2048,
            faults: None,
            strategy: None,
        });
    }
    pool
}

fn start_shards(n: usize, config: &ServerConfig) -> (Vec<ServerHandle>, Vec<String>) {
    let handles: Vec<ServerHandle> = (0..n)
        .map(|_| start("127.0.0.1:0", config.clone()).expect("bind shard"))
        .collect();
    let addrs = handles.iter().map(|h| h.local_addr().to_string()).collect();
    (handles, addrs)
}

fn drain_all(handles: Vec<ServerHandle>, addrs: &[String]) {
    for addr in addrs {
        let mut c = Client::connect(addr).expect("connect for drain");
        c.call(&Request::Shutdown).expect("drain");
    }
    for h in handles {
        h.join();
    }
}

/// Sends the pool three times through a fleet of `n` shards and folds an
/// FNV digest over every response's exact bytes.
fn fleet_digest(n: usize) -> u64 {
    let (handles, addrs) = start_shards(n, &ServerConfig::default());
    let mut client = FleetClient::connect(&addrs);
    let mut digest = FNV_OFFSET;
    for _ in 0..3 {
        for req in &pool() {
            let (resp, raw) = client.call_text(req).expect("fleet call");
            assert!(
                !matches!(resp, Response::Busy | Response::Error { .. }),
                "pool request failed: {raw}"
            );
            digest = fnv_fold(digest, raw.as_bytes());
        }
    }
    drain_all(handles, &addrs);
    digest
}

#[test]
fn digest_is_identical_across_shard_counts() {
    let one = fleet_digest(1);
    let two = fleet_digest(2);
    let four = fleet_digest(4);
    assert_eq!(
        one, two,
        "2-shard fleet must serve byte-identical responses"
    );
    assert_eq!(
        one, four,
        "4-shard fleet must serve byte-identical responses"
    );
}

/// With one of two shards down, every pure (cacheable) request still
/// succeeds — the ring's replica takes over — and the bytes match what
/// the healthy fleet served.
#[test]
fn pure_verbs_fail_over_to_replicas() {
    let (handles, addrs) = start_shards(2, &ServerConfig::default());
    let mut client = FleetClient::connect(&addrs);
    let baseline: Vec<String> = pool()
        .iter()
        .map(|req| client.call_text(req).expect("healthy call").1)
        .collect();

    // Take shard 0 down for good.
    let mut handles = handles;
    let mut c = Client::connect(&addrs[0]).expect("connect shard 0");
    c.call(&Request::Shutdown).expect("drain shard 0");
    drop(c);
    handles.remove(0).join();

    // Half the keys now route to a dead owner; the client must land every
    // one of them on the survivor with identical bytes.
    let mut degraded = FleetClient::connect(&addrs);
    for (req, want) in pool().iter().zip(&baseline) {
        let (_, raw) = degraded.call_text(req).expect("degraded call");
        assert_eq!(&raw, want, "failover changed response bytes");
    }

    drain_all(handles, &addrs[1..]);
}

/// Journaled jobs survive their shard restarting: submit through the
/// fleet, restart the owning shard from its journal, and every result is
/// still fetchable, byte-identical to the synchronous answer.
#[test]
fn journaled_jobs_survive_a_shard_restart() {
    let dir = std::env::temp_dir().join(format!("hfast-fleet-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("journal dir");
    let config = |shard: usize| ServerConfig {
        journal: Some(dir.join(format!("shard-{shard}.jsonl"))),
        ..ServerConfig::default()
    };

    let shard0 = start("127.0.0.1:0", config(0)).expect("bind shard 0");
    let shard1 = start("127.0.0.1:0", config(1)).expect("bind shard 1");
    let addrs = vec![
        shard0.local_addr().to_string(),
        shard1.local_addr().to_string(),
    ];

    let job = Request::Simulate {
        app: AppSpec::Named {
            name: "GTC".into(),
            procs: 8,
        },
        fabric: FabricSpec::FatTree { ports: 8 },
        cutoff: 2048,
        faults: None,
        strategy: None,
    };
    let mut client = FleetClient::connect(&addrs);
    let (_, want) = client.call_text(&job).expect("synchronous baseline");

    let mut ids = Vec::new();
    for _ in 0..6 {
        match client
            .call_text(&Request::Submit {
                job: Box::new(job.clone()),
            })
            .expect("submit")
            .0
        {
            Response::JobAccepted { id } => ids.push(id),
            other => panic!("expected JobAccepted, got {other:?}"),
        }
    }

    // Wait for every job to finish, then restart shard 0 from its journal.
    let deadline = Instant::now() + Duration::from_secs(20);
    for &id in &ids {
        loop {
            match client.call_text(&Request::Poll { id }).expect("poll").0 {
                Response::JobStatus {
                    state: JobState::Done,
                    ..
                } => break,
                Response::JobStatus { state, .. } => {
                    assert!(!state.is_terminal(), "job {id} ended in {state:?}");
                    assert!(Instant::now() < deadline, "job {id} never finished");
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => panic!("expected JobStatus, got {other:?}"),
            }
        }
    }

    let mut c = Client::connect(&addrs[0]).expect("connect shard 0");
    c.call(&Request::Shutdown).expect("drain shard 0");
    drop(c);
    shard0.join();
    // Rebind the same address so the fleet's view stays valid; the port
    // was just freed by the drain, but give the OS a few tries.
    let shard0 = {
        let mut last = None;
        let mut handle = None;
        for _ in 0..50 {
            match start(addrs[0].as_str(), config(0)) {
                Ok(h) => {
                    handle = Some(h);
                    break;
                }
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        handle.unwrap_or_else(|| panic!("rebind shard 0: {last:?}"))
    };

    // Every job — including those that lived on the restarted shard —
    // must still fetch, and the replayed results must be byte-identical.
    let mut revived = FleetClient::connect(&addrs);
    for &id in &ids {
        let (_, raw) = revived
            .call_text(&Request::Fetch { id })
            .expect("fetch after restart");
        assert_eq!(raw, want, "job {id} result changed across the restart");
    }

    drain_all(vec![shard0, shard1], &addrs);
    let _ = std::fs::remove_dir_all(&dir);
}
