//! Communicator splitting (`MPI_Comm_split` analogue).
//!
//! Rather than spawning new communicator objects, the runtime's collectives
//! operate over [`Group`]s; `split` is the collective that *derives* those
//! groups: every rank contributes a `(color, key)` pair, and each rank
//! receives the group of all ranks sharing its color, ordered by key (ties
//! broken by rank) — exactly MPI's semantics.

use crate::comm::Comm;
use crate::group::Group;
use crate::message::Payload;
use crate::Result;

impl Comm {
    /// Splits the world into color groups.
    ///
    /// Collective over all ranks. Returns the caller's group: the ranks
    /// that passed the same `color`, sorted by `(key, rank)`.
    pub fn split(&mut self, color: u32, key: u32) -> Result<Group> {
        // Allgather the (color, key) pairs, encoded as f64 lanes — exact
        // for values below 2^52.
        let mine = Payload::from_f64s(&[f64::from(color), f64::from(key)]);
        let all = self.allgather(mine)?;
        let mut members: Vec<(u32, usize)> = Vec::new();
        for (rank, payload) in all.iter().enumerate() {
            let lanes = payload.to_f64s().expect("split payload is two f64s");
            let (c, k) = (lanes[0] as u32, lanes[1] as u32);
            if c == color {
                members.push((k, rank));
            }
        }
        members.sort_unstable();
        Group::new(members.into_iter().map(|(_, rank)| rank).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ReduceOp;
    use crate::World;

    #[test]
    fn split_by_parity() {
        let results = World::run(8, |comm| {
            let color = (comm.rank() % 2) as u32;
            comm.split(color, comm.rank() as u32).unwrap()
        })
        .unwrap();
        assert_eq!(results[0].members(), &[0, 2, 4, 6]);
        assert_eq!(results[1].members(), &[1, 3, 5, 7]);
        assert_eq!(results[3], results[5], "same color, same group");
    }

    #[test]
    fn split_key_reorders() {
        let results = World::run(4, |comm| {
            // Reverse key order: rank 3 becomes group index 0.
            comm.split(0, (3 - comm.rank()) as u32).unwrap()
        })
        .unwrap();
        assert_eq!(results[0].members(), &[3, 2, 1, 0]);
    }

    #[test]
    fn split_groups_drive_collectives() {
        let results = World::run(6, |comm| {
            let color = (comm.rank() / 3) as u32;
            let group = comm.split(color, 0).unwrap();
            let p = Payload::from_f64s(&[comm.rank() as f64]);
            comm.allreduce_in(&group, p, ReduceOp::Sum)
                .unwrap()
                .to_f64s()
                .unwrap()[0]
        })
        .unwrap();
        assert_eq!(results, vec![3.0, 3.0, 3.0, 12.0, 12.0, 12.0]);
    }

    #[test]
    fn singleton_colors() {
        let results = World::run(3, |comm| {
            let group = comm.split(comm.rank() as u32, 0).unwrap();
            group.len()
        })
        .unwrap();
        assert_eq!(results, vec![1, 1, 1]);
    }
}
