//! The per-rank communicator: point-to-point operations and completion calls.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::chan::{Receiver, RecvTimeoutError, Sender};
use crate::error::{MpiError, Result};
use crate::hook::{CallKind, CommEvent, CommHook, Scope};
use crate::message::{Envelope, Payload};
use crate::request::{RecvHandle, Request, RequestTable};
use crate::trace::CommTrace;
use crate::{Rank, Tag};

/// Source selector for receives (`MPI_ANY_SOURCE` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match a message from any rank.
    Any,
    /// Match only messages from the given rank.
    Rank(Rank),
}

impl SrcSel {
    /// True if the selector accepts the given source rank.
    #[inline]
    pub fn accepts(self, src: Rank) -> bool {
        match self {
            SrcSel::Any => true,
            SrcSel::Rank(r) => r == src,
        }
    }
}

/// Tag selector for receives (`MPI_ANY_TAG` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match any tag.
    Any,
    /// Match only the given tag.
    Tag(Tag),
}

impl TagSel {
    /// True if the selector accepts the given tag.
    #[inline]
    pub fn accepts(self, tag: Tag) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Tag(t) => t == tag,
        }
    }
}

/// Completion information for a receive or send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// For receives: the matched source. For sends: the destination.
    pub source: Rank,
    /// The message tag.
    pub tag: Tag,
    /// Message size in bytes.
    pub bytes: usize,
}

/// A rank's handle onto the world: all communication happens through this.
///
/// One `Comm` exists per rank thread; it is not `Sync` and is handed to the
/// rank's closure by [`World::run`](crate::World::run).
pub struct Comm {
    rank: Rank,
    size: usize,
    txs: Arc<Vec<Sender<Envelope>>>,
    rx: Receiver<Envelope>,
    /// Messages received but not yet matched by any receive.
    unexpected: VecDeque<Envelope>,
    /// Posted nonblocking receives.
    pub(crate) table: RequestTable,
    hook: Arc<dyn CommHook>,
    epoch: Instant,
    timeout: Duration,
    /// Causal tracing state, present only when a recorder is attached.
    trace: Option<CommTrace>,
    /// Per-rank counter of collective invocations, used for debugging and
    /// round-tag construction sanity checks.
    pub(crate) collective_count: u64,
}

impl Comm {
    #[allow(clippy::too_many_arguments)] // internal plumbing constructor
    pub(crate) fn new(
        rank: Rank,
        size: usize,
        txs: Arc<Vec<Sender<Envelope>>>,
        rx: Receiver<Envelope>,
        hook: Arc<dyn CommHook>,
        epoch: Instant,
        timeout: Duration,
        trace: Option<CommTrace>,
    ) -> Self {
        Comm {
            rank,
            size,
            txs,
            rx,
            unexpected: VecDeque::new(),
            table: RequestTable::default(),
            hook,
            epoch,
            timeout,
            trace,
            collective_count: 0,
        }
    }

    /// This process's rank, `0..size`.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Nanoseconds since world start.
    #[inline]
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn check_rank(&self, r: Rank) -> Result<()> {
        if r >= self.size {
            Err(MpiError::InvalidRank {
                rank: r,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    fn check_tag(&self, tag: Tag) -> Result<()> {
        if tag.is_collective() {
            Err(MpiError::ReservedTag(tag.0))
        } else {
            Ok(())
        }
    }

    pub(crate) fn emit(
        &self,
        kind: CallKind,
        scope: Scope,
        peer: Option<Rank>,
        bytes: usize,
        tag: Option<Tag>,
        t_start_ns: u64,
    ) {
        let ev = CommEvent {
            rank: self.rank,
            kind,
            scope,
            peer,
            bytes,
            tag,
            t_start_ns,
            t_end_ns: self.now_ns(),
        };
        self.hook.on_event(&ev);
    }

    // ------------------------------------------------------------------
    // raw transport (no hook events, no tag restrictions)
    // ------------------------------------------------------------------

    /// Sends an envelope; when tracing is on, stamps it with a fresh
    /// [`SpanContext`](hfast_trace::SpanContext) and returns the stamped
    /// span id (0 otherwise) so the caller can record the send span.
    pub(crate) fn send_raw(&self, dest: Rank, tag: Tag, payload: Payload) -> Result<u64> {
        self.check_rank(dest)?;
        let stamp = self.trace.as_ref().map(|t| t.send_stamp());
        let span_id = stamp.as_ref().map_or(0, |s| s.span_id);
        self.txs[dest]
            .send(Envelope::stamped(self.rank, tag, payload, stamp))
            .map_err(|_| MpiError::Disconnected {
                rank: self.rank,
                peer: dest,
            })?;
        Ok(span_id)
    }

    /// Records the send-side span closing now, if tracing is on.
    fn trace_send(&self, name: &'static str, t0: u64, span_id: u64, dest: Rank, bytes: usize) {
        if let Some(t) = &self.trace {
            let dur = self.now_ns().saturating_sub(t0).max(1);
            t.record(
                name,
                t0,
                dur,
                span_id,
                0,
                vec![("dst", dest as u64), ("bytes", bytes as u64)],
            );
        }
    }

    /// Records the receive-side span for a delivered envelope, parented to
    /// the originating send span and merging its Lamport clock.
    fn trace_recv(&self, name: &'static str, t0: u64, env: &Envelope) {
        if let Some(t) = &self.trace {
            if let Some(stamp) = &env.stamp {
                let (span_id, clock) = t.recv_merge(stamp);
                let dur = self.now_ns().saturating_sub(t0).max(1);
                t.record(
                    name,
                    t0,
                    dur,
                    span_id,
                    stamp.span_id,
                    vec![
                        ("src", env.src as u64),
                        ("bytes", env.payload.len() as u64),
                        ("clock", clock),
                    ],
                );
            }
        }
    }

    /// Pumps one envelope off the wire, delivering to posted receives first.
    ///
    /// Returns the envelope if it matched neither a posted receive nor was
    /// queued (i.e. the caller's selectors accepted it).
    fn pump_one(
        &mut self,
        accept: impl Fn(&Envelope) -> bool,
        waiting_for: &dyn Fn() -> String,
    ) -> Result<Option<Envelope>> {
        let env = match self.rx.recv_timeout(self.timeout) {
            Ok(env) => env,
            Err(RecvTimeoutError::Timeout) => {
                return Err(MpiError::Timeout {
                    rank: self.rank,
                    waiting_for: waiting_for(),
                })
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(MpiError::Disconnected {
                    rank: self.rank,
                    peer: self.rank,
                })
            }
        };
        // Posted receives take priority: they were posted earlier than the
        // caller's current blocking operation.
        if self.table.try_match(&env) {
            return Ok(None);
        }
        if accept(&env) {
            return Ok(Some(env));
        }
        self.unexpected.push_back(env);
        Ok(None)
    }

    /// Blocking matched receive at the transport layer.
    pub(crate) fn recv_raw(&mut self, src: SrcSel, tag: TagSel) -> Result<Envelope> {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|e| src.accepts(e.src) && tag.accepts(e.tag))
        {
            return Ok(self.unexpected.remove(pos).expect("position valid"));
        }
        let me = self.rank;
        loop {
            let waiting = move || format!("recv(src={src:?}, tag={tag:?}) on rank {me}");
            if let Some(env) =
                self.pump_one(|e| src.accepts(e.src) && tag.accepts(e.tag), &waiting)?
            {
                return Ok(env);
            }
        }
    }

    /// Transport-scope send used by collective algorithms: emits a
    /// `TransportSend` event so network simulators can replay actual flows.
    pub(crate) fn send_transport(&self, dest: Rank, tag: Tag, payload: Payload) -> Result<()> {
        let t0 = self.now_ns();
        let bytes = payload.len();
        let span_id = self.send_raw(dest, tag, payload)?;
        self.emit(
            CallKind::TransportSend,
            Scope::Transport,
            Some(dest),
            bytes,
            Some(tag),
            t0,
        );
        self.trace_send("send", t0, span_id, dest, bytes);
        Ok(())
    }

    /// Transport-scope receive used by collective algorithms.
    pub(crate) fn recv_transport(&mut self, src: SrcSel, tag: TagSel) -> Result<Envelope> {
        let t0 = self.now_ns();
        let env = self.recv_raw(src, tag)?;
        self.emit(
            CallKind::TransportRecv,
            Scope::Transport,
            Some(env.src),
            env.payload.len(),
            Some(env.tag),
            t0,
        );
        self.trace_recv("recv", t0, &env);
        Ok(env)
    }

    // ------------------------------------------------------------------
    // public point-to-point API
    // ------------------------------------------------------------------

    /// Blocking standard-mode send (`MPI_Send`).
    pub fn send(&mut self, dest: Rank, tag: Tag, payload: Payload) -> Result<()> {
        self.check_tag(tag)?;
        let t0 = self.now_ns();
        let bytes = payload.len();
        let span_id = self.send_raw(dest, tag, payload)?;
        self.emit(CallKind::Send, Scope::Api, Some(dest), bytes, Some(tag), t0);
        self.trace_send("send", t0, span_id, dest, bytes);
        Ok(())
    }

    /// Blocking receive (`MPI_Recv`). Returns the matched status and payload.
    pub fn recv(&mut self, src: Rank, tag: Tag) -> Result<(Status, Payload)> {
        self.check_tag(tag)?;
        self.check_rank(src)?;
        self.recv_sel(SrcSel::Rank(src), TagSel::Tag(tag))
    }

    /// Blocking receive with wildcard selectors.
    pub fn recv_sel(&mut self, src: SrcSel, tag: TagSel) -> Result<(Status, Payload)> {
        if let TagSel::Tag(t) = tag {
            self.check_tag(t)?;
        }
        let t0 = self.now_ns();
        let env = self.recv_raw(src, tag)?;
        let status = Status {
            source: env.src,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        self.emit(
            CallKind::Recv,
            Scope::Api,
            Some(env.src),
            env.payload.len(),
            Some(env.tag),
            t0,
        );
        self.trace_recv("recv", t0, &env);
        Ok((status, env.payload))
    }

    /// Nonblocking send (`MPI_Isend`).
    ///
    /// The runtime buffers without bound, so the send completes locally; the
    /// returned request exists so the usual `isend → wait` call pattern (and
    /// its profile signature) matches real applications.
    pub fn isend(&mut self, dest: Rank, tag: Tag, payload: Payload) -> Result<Request> {
        self.check_tag(tag)?;
        let t0 = self.now_ns();
        let bytes = payload.len();
        let span_id = self.send_raw(dest, tag, payload)?;
        self.emit(
            CallKind::Isend,
            Scope::Api,
            Some(dest),
            bytes,
            Some(tag),
            t0,
        );
        self.trace_send("send", t0, span_id, dest, bytes);
        Ok(Request::Send(Status {
            source: dest,
            tag,
            bytes,
        }))
    }

    /// Nonblocking receive (`MPI_Irecv`).
    ///
    /// `expected_bytes` is the posted buffer size — it is what the profiling
    /// layer records for this call, mirroring how IPM sees the buffer-size
    /// argument of the real `MPI_Irecv`.
    pub fn irecv(&mut self, src: SrcSel, tag: TagSel, expected_bytes: usize) -> Result<Request> {
        if let TagSel::Tag(t) = tag {
            self.check_tag(t)?;
        }
        if let SrcSel::Rank(r) = src {
            self.check_rank(r)?;
        }
        let t0 = self.now_ns();
        let handle = self.table.post(src, tag);
        // An already-queued unexpected message may satisfy this receive.
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|e| src.accepts(e.src) && tag.accepts(e.tag))
        {
            let env = self.unexpected.remove(pos).expect("position valid");
            let consumed = self.table.try_match(&env);
            debug_assert!(consumed, "freshly posted receive must accept");
        }
        let peer = match src {
            SrcSel::Rank(r) => Some(r),
            SrcSel::Any => None,
        };
        let tag_opt = match tag {
            TagSel::Tag(t) => Some(t),
            TagSel::Any => None,
        };
        self.emit(
            CallKind::Irecv,
            Scope::Api,
            peer,
            expected_bytes,
            tag_opt,
            t0,
        );
        Ok(Request::Recv(handle))
    }

    /// Combined send and receive (`MPI_Sendrecv`).
    pub fn sendrecv(
        &mut self,
        dest: Rank,
        send_tag: Tag,
        payload: Payload,
        src: Rank,
        recv_tag: Tag,
    ) -> Result<(Status, Payload)> {
        self.check_tag(send_tag)?;
        self.check_tag(recv_tag)?;
        self.check_rank(src)?;
        let t0 = self.now_ns();
        let bytes = payload.len();
        let span_id = self.send_raw(dest, send_tag, payload)?;
        self.trace_send("send", t0, span_id, dest, bytes);
        let env = self.recv_raw(SrcSel::Rank(src), TagSel::Tag(recv_tag))?;
        let status = Status {
            source: env.src,
            tag: env.tag,
            bytes: env.payload.len(),
        };
        self.emit(
            CallKind::Sendrecv,
            Scope::Api,
            Some(dest),
            bytes,
            Some(send_tag),
            t0,
        );
        self.trace_recv("recv", t0, &env);
        Ok((status, env.payload))
    }

    // ------------------------------------------------------------------
    // completion calls
    // ------------------------------------------------------------------

    fn resolve_recv(&mut self, handle: RecvHandle) -> Result<Envelope> {
        loop {
            if let Some(env) = self.table.complete(handle) {
                return Ok(env);
            }
            if !self.table.is_complete(handle) && self.table.describe(handle).is_none() {
                return Err(MpiError::StaleRequest);
            }
            let me = self.rank;
            let desc = self.table.describe(handle);
            let waiting = move || format!("wait(irecv {desc:?}) on rank {me}");
            // Nothing matched yet: pump the wire.
            self.pump_one(|_| false, &waiting)?;
        }
    }

    /// Completes one request (`MPI_Wait`). For receives, returns the payload.
    pub fn wait(&mut self, request: Request) -> Result<(Status, Option<Payload>)> {
        let t0 = self.now_ns();
        let out = match request {
            Request::Send(status) => (status, None),
            Request::Recv(handle) => {
                let env = self.resolve_recv(handle)?;
                self.trace_recv("wait", t0, &env);
                (
                    Status {
                        source: env.src,
                        tag: env.tag,
                        bytes: env.payload.len(),
                    },
                    Some(env.payload),
                )
            }
        };
        self.emit(CallKind::Wait, Scope::Api, None, 0, None, t0);
        Ok(out)
    }

    /// Completes all requests (`MPI_Waitall`).
    pub fn waitall(&mut self, requests: Vec<Request>) -> Result<Vec<(Status, Option<Payload>)>> {
        let t0 = self.now_ns();
        let mut out = Vec::with_capacity(requests.len());
        for req in requests {
            match req {
                Request::Send(status) => out.push((status, None)),
                Request::Recv(handle) => {
                    let env = self.resolve_recv(handle)?;
                    self.trace_recv("wait", t0, &env);
                    out.push((
                        Status {
                            source: env.src,
                            tag: env.tag,
                            bytes: env.payload.len(),
                        },
                        Some(env.payload),
                    ));
                }
            }
        }
        self.emit(CallKind::Waitall, Scope::Api, None, 0, None, t0);
        Ok(out)
    }

    /// Completes any one request (`MPI_Waitany`).
    ///
    /// Removes and returns the completed request's index in `requests`
    /// together with its status/payload. Remaining requests stay pending.
    pub fn waitany(
        &mut self,
        requests: &mut Vec<Request>,
    ) -> Result<(usize, Status, Option<Payload>)> {
        assert!(!requests.is_empty(), "waitany on an empty request set");
        let t0 = self.now_ns();
        loop {
            // Send requests are complete by construction; also check matched
            // receives.
            let mut ready: Option<usize> = None;
            for (i, req) in requests.iter().enumerate() {
                match req {
                    Request::Send(_) => {
                        ready = Some(i);
                        break;
                    }
                    Request::Recv(h) => {
                        if self.table.is_complete(*h) {
                            ready = Some(i);
                            break;
                        }
                    }
                }
            }
            if let Some(i) = ready {
                let req = requests.remove(i);
                let out = match req {
                    Request::Send(status) => (i, status, None),
                    Request::Recv(handle) => {
                        let env = self.table.complete(handle).expect("checked complete");
                        self.trace_recv("wait", t0, &env);
                        (
                            i,
                            Status {
                                source: env.src,
                                tag: env.tag,
                                bytes: env.payload.len(),
                            },
                            Some(env.payload),
                        )
                    }
                };
                self.emit(CallKind::Waitany, Scope::Api, None, 0, None, t0);
                return Ok(out);
            }
            let me = self.rank;
            let n = requests.len();
            let waiting = move || format!("waitany over {n} requests on rank {me}");
            self.pump_one(|_| false, &waiting)?;
        }
    }

    /// Nonblocking completion check (`MPI_Test`).
    ///
    /// Returns the request back if still pending.
    pub fn test(
        &mut self,
        request: Request,
    ) -> Result<std::result::Result<(Status, Option<Payload>), Request>> {
        let t0 = self.now_ns();
        // Drain anything already on the wire without blocking.
        while let Ok(env) = self.rx.try_recv() {
            if !self.table.try_match(&env) {
                self.unexpected.push_back(env);
            }
        }
        let out = match request {
            Request::Send(status) => Ok((status, None)),
            Request::Recv(handle) => {
                if self.table.is_complete(handle) {
                    let env = self.table.complete(handle).expect("checked complete");
                    self.trace_recv("wait", t0, &env);
                    Ok((
                        Status {
                            source: env.src,
                            tag: env.tag,
                            bytes: env.payload.len(),
                        },
                        Some(env.payload),
                    ))
                } else {
                    Err(Request::Recv(handle))
                }
            }
        };
        self.emit(CallKind::Test, Scope::Api, None, 0, None, t0);
        Ok(out)
    }

    /// First queued unexpected message matching the selectors, as a status
    /// (probe support; does not consume the message). Collective-tagged
    /// envelopes are internal runtime traffic (user sends reject the
    /// reserved namespace), so an `ANY_TAG` probe must not see them —
    /// e.g. a peer's barrier token arriving early.
    pub(crate) fn peek_unexpected(&self, src: SrcSel, tag: TagSel) -> Option<Status> {
        self.unexpected
            .iter()
            .filter(|e| !(tag == TagSel::Any && e.tag.is_collective()))
            .find(|e| src.accepts(e.src) && tag.accepts(e.tag))
            .map(|e| Status {
                source: e.src,
                tag: e.tag,
                bytes: e.payload.len(),
            })
    }

    /// Pumps one envelope off the wire without accepting it for the caller
    /// (probe support): it is delivered to posted receives or queued.
    pub(crate) fn pump_for_probe(&mut self, src: SrcSel, tag: TagSel) -> Result<()> {
        let me = self.rank;
        let waiting = move || format!("probe(src={src:?}, tag={tag:?}) on rank {me}");
        self.pump_one(|_| false, &waiting)?;
        Ok(())
    }

    /// Drains everything already on the wire without blocking.
    pub(crate) fn drain_nonblocking(&mut self) {
        while let Ok(env) = self.rx.try_recv() {
            if !self.table.try_match(&env) {
                self.unexpected.push_back(env);
            }
        }
    }

    /// Number of posted-but-uncompleted receives (diagnostics).
    pub fn outstanding_recvs(&self) -> usize {
        self.table.outstanding()
    }

    /// Number of unexpected (arrived, unmatched) messages (diagnostics).
    pub fn unexpected_depth(&self) -> usize {
        self.unexpected.len()
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .field("unexpected", &self.unexpected.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn selector_accepts() {
        assert!(SrcSel::Any.accepts(3));
        assert!(SrcSel::Rank(3).accepts(3));
        assert!(!SrcSel::Rank(3).accepts(4));
        assert!(TagSel::Any.accepts(Tag(1)));
        assert!(TagSel::Tag(Tag(1)).accepts(Tag(1)));
        assert!(!TagSel::Tag(Tag(1)).accepts(Tag(2)));
    }

    #[test]
    fn ring_exchange_with_data() {
        let results = World::run(4, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let data = Payload::from_f64s(&[comm.rank() as f64]);
            comm.send(right, Tag(1), data).unwrap();
            let (_status, payload) = comm.recv(left, Tag(1)).unwrap();
            payload.to_f64s().unwrap()[0] as usize
        })
        .unwrap();
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn nonblocking_exchange() {
        let results = World::run(8, |comm| {
            let partner = comm.rank() ^ 1;
            let rreq = comm
                .irecv(SrcSel::Rank(partner), TagSel::Tag(Tag(9)), 16)
                .unwrap();
            let sreq = comm
                .isend(
                    partner,
                    Tag(9),
                    Payload::from_f64s(&[comm.rank() as f64 * 2.0]),
                )
                .unwrap();
            let (_, payload) = comm.wait(rreq).unwrap();
            comm.wait(sreq).unwrap();
            payload.unwrap().to_f64s().unwrap()[0]
        })
        .unwrap();
        for (r, v) in results.iter().enumerate() {
            assert_eq!(*v, (r ^ 1) as f64 * 2.0);
        }
    }

    #[test]
    fn sendrecv_shift() {
        let results = World::run(5, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let (status, _p) = comm
                .sendrecv(right, Tag(2), Payload::synthetic(128 << 10), left, Tag(2))
                .unwrap();
            (status.source, status.bytes)
        })
        .unwrap();
        for (r, (src, bytes)) in results.iter().enumerate() {
            assert_eq!(*src, (r + 4) % 5);
            assert_eq!(*bytes, 128 << 10);
        }
    }

    #[test]
    fn waitany_returns_as_messages_arrive() {
        let results = World::run(3, |comm| match comm.rank() {
            0 => {
                // Two receives from distinct peers, completed in arrival order.
                let mut reqs = vec![
                    comm.irecv(SrcSel::Rank(1), TagSel::Tag(Tag(5)), 8).unwrap(),
                    comm.irecv(SrcSel::Rank(2), TagSel::Tag(Tag(5)), 8).unwrap(),
                ];
                let mut sources = vec![];
                while !reqs.is_empty() {
                    let (_, status, _) = comm.waitany(&mut reqs).unwrap();
                    sources.push(status.source);
                }
                sources.sort_unstable();
                sources
            }
            r => {
                comm.send(0, Tag(5), Payload::synthetic(8)).unwrap();
                vec![r]
            }
        })
        .unwrap();
        assert_eq!(results[0], vec![1, 2]);
    }

    #[test]
    fn any_source_recv() {
        let results = World::run(4, |comm| {
            if comm.rank() == 0 {
                let mut total = 0;
                for _ in 0..3 {
                    let (status, _) = comm.recv_sel(SrcSel::Any, TagSel::Tag(Tag(3))).unwrap();
                    total += status.source;
                }
                total
            } else {
                comm.send(0, Tag(3), Payload::synthetic(4)).unwrap();
                0
            }
        })
        .unwrap();
        assert_eq!(results[0], 1 + 2 + 3);
    }

    #[test]
    fn message_order_preserved_per_pair() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(1, Tag(7), Payload::from_f64s(&[i as f64]))
                        .unwrap();
                }
                vec![]
            } else {
                let mut got = vec![];
                for _ in 0..10 {
                    let (_, p) = comm.recv(0, Tag(7)).unwrap();
                    got.push(p.to_f64s().unwrap()[0] as u32);
                }
                got
            }
        })
        .unwrap();
        assert_eq!(results[1], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn unexpected_messages_are_buffered() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(1), Payload::synthetic(1)).unwrap();
                comm.send(1, Tag(2), Payload::synthetic(2)).unwrap();
                0
            } else {
                // Receive in reverse tag order: tag-1 message is buffered.
                let (s2, _) = comm.recv(0, Tag(2)).unwrap();
                let (s1, _) = comm.recv(0, Tag(1)).unwrap();
                assert_eq!(s2.bytes, 2);
                assert_eq!(s1.bytes, 1);
                comm.unexpected_depth()
            }
        })
        .unwrap();
        assert_eq!(results[1], 0, "all buffered messages consumed");
    }

    #[test]
    fn invalid_rank_rejected() {
        World::run(2, |comm| {
            let err = comm.send(5, Tag(1), Payload::synthetic(1)).unwrap_err();
            assert!(matches!(err, MpiError::InvalidRank { rank: 5, size: 2 }));
        })
        .unwrap();
    }

    #[test]
    fn reserved_tag_rejected() {
        World::run(1, |comm| {
            let err = comm
                .send(0, Tag(Tag::COLLECTIVE_BASE | 1), Payload::synthetic(1))
                .unwrap_err();
            assert!(matches!(err, MpiError::ReservedTag(_)));
        })
        .unwrap();
    }

    #[test]
    fn test_polls_without_blocking() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                let req = comm.irecv(SrcSel::Rank(1), TagSel::Tag(Tag(4)), 8).unwrap();
                // Poll until complete.
                let mut req = req;
                loop {
                    match comm.test(req).unwrap() {
                        Ok((status, _)) => return status.bytes,
                        Err(pending) => req = pending,
                    }
                }
            } else {
                comm.send(0, Tag(4), Payload::synthetic(8)).unwrap();
                8
            }
        })
        .unwrap();
        assert_eq!(results, vec![8, 8]);
    }

    #[test]
    fn self_send_works() {
        let results = World::run(1, |comm| {
            comm.send(0, Tag(1), Payload::synthetic(64)).unwrap();
            let (s, _) = comm.recv(0, Tag(1)).unwrap();
            s.bytes
        })
        .unwrap();
        assert_eq!(results, vec![64]);
    }
}
