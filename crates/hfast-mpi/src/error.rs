//! Error types for the message-passing runtime.

use crate::Rank;

/// Errors surfaced by runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// A destination or source rank was outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: Rank,
        /// The world size it exceeded.
        size: usize,
    },
    /// An application used a tag in the reserved collective namespace.
    ReservedTag(u32),
    /// A blocking operation exceeded the world's configured timeout.
    ///
    /// The runtime uses a timeout instead of hanging forever so that a peer
    /// that panicked (and will never send) turns into a diagnosable error.
    Timeout {
        /// The rank that stalled.
        rank: Rank,
        /// A description of the operation it was waiting on.
        waiting_for: String,
    },
    /// The channel to a peer was disconnected (its thread exited early).
    Disconnected {
        /// The rank observing the disconnect.
        rank: Rank,
        /// The peer whose channel closed.
        peer: Rank,
    },
    /// A request handle was used after it already completed.
    StaleRequest,
    /// A collective was invoked with inconsistent arguments across ranks
    /// (detectable cases only, e.g. mismatched reduce payload lengths).
    CollectiveMismatch(String),
    /// The world failed to launch or a rank thread panicked.
    RankPanic {
        /// The lowest-numbered rank that panicked.
        rank: Rank,
    },
    /// A group operation referenced a rank that is not a member.
    NotInGroup {
        /// The rank that is not a member.
        rank: Rank,
    },
    /// Empty or otherwise invalid group description.
    InvalidGroup(String),
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for world of size {size}")
            }
            MpiError::ReservedTag(t) => {
                write!(f, "tag {t:#x} lies in the reserved collective namespace")
            }
            MpiError::Timeout { rank, waiting_for } => {
                write!(f, "rank {rank} timed out waiting for {waiting_for}")
            }
            MpiError::Disconnected { rank, peer } => {
                write!(f, "rank {rank}: channel to peer {peer} disconnected")
            }
            MpiError::StaleRequest => write!(f, "request already completed"),
            MpiError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
            MpiError::RankPanic { rank } => write!(f, "rank {rank} panicked"),
            MpiError::NotInGroup { rank } => write!(f, "rank {rank} is not a group member"),
            MpiError::InvalidGroup(msg) => write!(f, "invalid group: {msg}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Convenience alias used across the runtime.
pub type Result<T> = std::result::Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpiError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        assert!(e.to_string().contains("size 4"));
        let e = MpiError::Timeout {
            rank: 1,
            waiting_for: "recv(src=0, tag=5)".into(),
        };
        assert!(e.to_string().contains("timed out"));
    }
}
