//! Message probing (`MPI_Probe` / `MPI_Iprobe`).
//!
//! Probing inspects the next matching incoming message *without* consuming
//! it — the idiom real codes use to size receive buffers for
//! unpredictable-length messages (SuperLU's pivot rows, PMEMD's variable
//! particle buffers).

use crate::comm::{Comm, SrcSel, Status, TagSel};
use crate::hook::{CallKind, Scope};
use crate::Result;

impl Comm {
    /// Blocks until a message matching the selectors is available and
    /// returns its status; the message stays queued for a later `recv`.
    pub fn probe(&mut self, src: SrcSel, tag: TagSel) -> Result<Status> {
        let t0 = self.now_ns();
        let status = loop {
            if let Some(status) = self.peek_unexpected(src, tag) {
                break status;
            }
            self.pump_for_probe(src, tag)?;
        };
        self.emit(
            CallKind::Probe,
            Scope::Api,
            Some(status.source),
            status.bytes,
            Some(status.tag),
            t0,
        );
        Ok(status)
    }

    /// Nonblocking probe: drains whatever is already on the wire and
    /// reports the first matching queued message, if any.
    pub fn iprobe(&mut self, src: SrcSel, tag: TagSel) -> Result<Option<Status>> {
        let t0 = self.now_ns();
        self.drain_nonblocking();
        let status = self.peek_unexpected(src, tag);
        self.emit(
            CallKind::Iprobe,
            Scope::Api,
            status.map(|s| s.source),
            status.map_or(0, |s| s.bytes),
            status.map(|s| s.tag),
            t0,
        );
        Ok(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Payload, Tag, World};

    #[test]
    fn probe_then_recv_sized_exactly() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(5), Payload::synthetic(12_345)).unwrap();
                0
            } else {
                let status = comm.probe(SrcSel::Rank(0), TagSel::Tag(Tag(5))).unwrap();
                assert_eq!(status.bytes, 12_345, "probe reports the size");
                // The message is still there for the actual receive.
                let (s2, _) = comm.recv(0, Tag(5)).unwrap();
                assert_eq!(s2.bytes, status.bytes);
                assert_eq!(comm.unexpected_depth(), 0);
                status.bytes
            }
        })
        .unwrap();
        assert_eq!(results[1], 12_345);
    }

    #[test]
    fn iprobe_reports_absence_without_blocking() {
        World::run(2, |comm| {
            if comm.rank() == 1 {
                // Nothing sent yet: must return None immediately.
                let probe = comm.iprobe(SrcSel::Any, TagSel::Any).unwrap();
                assert!(probe.is_none());
            }
            comm.barrier().unwrap();
            if comm.rank() == 0 {
                comm.send(1, Tag(3), Payload::synthetic(64)).unwrap();
            } else {
                // Poll until the message lands.
                loop {
                    if let Some(status) = comm.iprobe(SrcSel::Rank(0), TagSel::Tag(Tag(3))).unwrap()
                    {
                        assert_eq!(status.bytes, 64);
                        break;
                    }
                    std::thread::yield_now();
                }
                comm.recv(0, Tag(3)).unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn iprobe_ignores_internal_collective_traffic() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier().unwrap();
            } else {
                // Rank 0 is already in the barrier, so its token lands
                // in our unexpected queue — an ANY/ANY probe must never
                // surface that internal message as receivable.
                while comm.unexpected_depth() == 0 {
                    assert!(comm.iprobe(SrcSel::Any, TagSel::Any).unwrap().is_none());
                    std::thread::yield_now();
                }
                assert!(comm.iprobe(SrcSel::Any, TagSel::Any).unwrap().is_none());
                comm.barrier().unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn probe_respects_selectors() {
        World::run(3, |comm| {
            if comm.rank() == 0 {
                comm.send(2, Tag(1), Payload::synthetic(10)).unwrap();
            } else if comm.rank() == 1 {
                comm.send(2, Tag(2), Payload::synthetic(20)).unwrap();
            } else {
                // Probe specifically for rank 1's tag-2 message even if
                // rank 0's arrives first.
                let s = comm.probe(SrcSel::Rank(1), TagSel::Tag(Tag(2))).unwrap();
                assert_eq!((s.source, s.bytes), (1, 20));
                comm.recv(1, Tag(2)).unwrap();
                comm.recv(0, Tag(1)).unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn probe_does_not_steal_from_posted_receives() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, Tag(7), Payload::synthetic(99)).unwrap();
                comm.send(1, Tag(7), Payload::synthetic(11)).unwrap();
            } else {
                // Post a receive first; the probe must see the *second*
                // message once the first is claimed by the posted receive.
                let req = comm
                    .irecv(SrcSel::Rank(0), TagSel::Tag(Tag(7)), 99)
                    .unwrap();
                let s = comm.probe(SrcSel::Rank(0), TagSel::Tag(Tag(7))).unwrap();
                assert_eq!(s.bytes, 11, "first message went to the irecv");
                let (done, _) = comm.wait(req).unwrap();
                assert_eq!(done.bytes, 99);
                comm.recv(0, Tag(7)).unwrap();
            }
        })
        .unwrap();
    }
}
