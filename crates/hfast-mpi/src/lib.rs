//! # hfast-mpi — a threaded message-passing runtime with an MPI-like API
//!
//! This crate is the *substrate* beneath the HFAST reproduction: a small,
//! self-contained message-passing runtime whose API mirrors the subset of MPI
//! exercised by the six applications studied in the SC'05 paper
//! (point-to-point blocking and nonblocking operations, completion calls, and
//! the common collectives).
//!
//! Ranks execute as OS threads inside [`World::run`]; messages travel over
//! unbounded mailbox channels ([`chan`]). The runtime exposes a PMPI-style
//! observer boundary
//! ([`CommHook`]) that fires one [`CommEvent`] per API call, which is exactly
//! the interposition point the IPM profiling layer of the paper uses — the
//! `hfast-ipm` crate implements a profiler on top of it.
//!
//! ## Payloads
//!
//! Profiling a communication *topology* requires message sizes and partners,
//! not message contents. [`Payload`] therefore has two forms:
//!
//! * [`Payload::Synthetic`] — carries only a length. The six application
//!   kernels use this form so that multi-hundred-rank profiling runs cost
//!   almost nothing.
//! * [`Payload::Data`] — carries real bytes ([`Bytes`]); used by tests
//!   to verify that the runtime actually moves data correctly (collectives
//!   included).
//!
//! ## Quick example
//!
//! ```
//! use hfast_mpi::{World, Payload, Tag};
//!
//! let results = World::run(4, |comm| {
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     let req = comm.isend(right, Tag(7), Payload::synthetic(1024)).unwrap();
//!     let (status, _payload) = comm.recv(left, Tag(7)).unwrap();
//!     comm.wait(req).unwrap();
//!     status.source
//! })
//! .unwrap();
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```

#![warn(missing_docs)]

pub mod bytes;
pub mod chan;
pub mod collectives;
pub mod comm;
pub mod error;
pub mod group;
pub mod hook;
pub mod message;
pub mod obs;
pub mod probe;
pub mod request;
pub mod runtime;
pub mod split;
pub mod trace;

pub use bytes::Bytes;
pub use comm::{Comm, SrcSel, Status, TagSel};
pub use error::{MpiError, Result};
pub use group::Group;
pub use hook::{CallKind, CommEvent, CommHook, MultiHook, NullHook, RecordingHook, Scope};
pub use message::{Payload, ReduceOp};
pub use obs::{RankObs, WorldObs};
pub use request::Request;
pub use runtime::{World, WorldConfig};
pub use trace::CommTrace;

/// Index of a process in a [`World`] (0-based, dense).
pub type Rank = usize;

/// A message tag. Application tags must leave the top bit clear; the runtime
/// reserves tags with the top bit set for collective transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u32);

impl Tag {
    /// Tag namespace reserved for collective-internal transport messages.
    pub const COLLECTIVE_BASE: u32 = 0x8000_0000;

    /// Returns true if this tag lies in the reserved collective namespace.
    #[inline]
    pub fn is_collective(self) -> bool {
        self.0 & Self::COLLECTIVE_BASE != 0
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_collective_namespace() {
        assert!(!Tag(0).is_collective());
        assert!(!Tag(0x7fff_ffff).is_collective());
        assert!(Tag(Tag::COLLECTIVE_BASE).is_collective());
        assert!(Tag(Tag::COLLECTIVE_BASE | 42).is_collective());
    }
}
