//! Per-rank causal tracing state behind the `CommHook` boundary.
//!
//! When a world runs with a [`TraceRecorder`] attached (explicitly via
//! [`WorldConfig::trace`](crate::WorldConfig::trace) or automatically when
//! `HFAST_TRACE` is set), each [`Comm`](crate::Comm) owns one [`CommTrace`]:
//! a span-id counter and a Lamport clock, both plain `Cell`s because a
//! `Comm` never leaves its rank thread. Every outgoing envelope is stamped
//! with a [`SpanContext`]; every delivery merges the sender's logical
//! clock and records a span parented to the originating send — which is
//! what lets the Perfetto exporter draw cross-rank message arrows.
//!
//! Span ids derive from `(rank, counter)` ([`rank_span_id`]), never
//! wall-clock or a global RNG: two identical runs allocate identical ids.

use std::cell::Cell;
use std::sync::Arc;

use hfast_trace::{rank_span_id, SpanContext, TraceRecorder, Track};

use crate::Rank;

/// One rank's tracing state: recorder handle, span-id counter, Lamport
/// clock.
pub struct CommTrace {
    recorder: Arc<TraceRecorder>,
    trace_id: u64,
    rank: Rank,
    counter: Cell<u64>,
    clock: Cell<u64>,
}

impl CommTrace {
    /// Tracing state for `rank`, recording into `recorder`.
    pub fn new(recorder: Arc<TraceRecorder>, trace_id: u64, rank: Rank) -> Self {
        CommTrace {
            recorder,
            trace_id,
            rank,
            counter: Cell::new(0),
            clock: Cell::new(0),
        }
    }

    fn next_span_id(&self) -> u64 {
        let c = self.counter.get() + 1;
        self.counter.set(c);
        rank_span_id(self.rank, c)
    }

    /// Allocates the stamp for an outgoing message: the local clock ticks
    /// and the new span becomes the causal parent of the matching recv.
    pub(crate) fn send_stamp(&self) -> SpanContext {
        let clock = self.clock.get() + 1;
        self.clock.set(clock);
        SpanContext::root(self.trace_id, self.next_span_id(), clock)
    }

    /// Merges an incoming stamp into the Lamport clock and allocates the
    /// receive-side span id.
    pub(crate) fn recv_merge(&self, stamp: &SpanContext) -> (u64, u64) {
        let clock = self.clock.get().max(stamp.clock) + 1;
        self.clock.set(clock);
        (self.next_span_id(), clock)
    }

    /// Records a span on this rank's track.
    pub(crate) fn record(
        &self,
        name: &'static str,
        t_ns: u64,
        dur_ns: u64,
        span_id: u64,
        parent_id: u64,
        fields: Vec<(&'static str, u64)>,
    ) {
        self.recorder.record_span(
            Track::Rank(self.rank),
            name,
            t_ns,
            dur_ns,
            span_id,
            parent_id,
            fields,
        );
    }
}

impl std::fmt::Debug for CommTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommTrace")
            .field("rank", &self.rank)
            .field("counter", &self.counter.get())
            .field("clock", &self.clock.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_stamps_are_unique_and_ordered() {
        let rec = Arc::new(TraceRecorder::new());
        let t = CommTrace::new(Arc::clone(&rec), 1, 3);
        let a = t.send_stamp();
        let b = t.send_stamp();
        assert_ne!(a.span_id, b.span_id);
        assert!(b.clock > a.clock);
        assert_eq!(a.span_id, rank_span_id(3, 1));
    }

    #[test]
    fn recv_merge_advances_past_sender_clock() {
        let rec = Arc::new(TraceRecorder::new());
        let t = CommTrace::new(Arc::clone(&rec), 1, 0);
        let stamp = SpanContext::root(1, rank_span_id(7, 1), 41);
        let (span_id, clock) = t.recv_merge(&stamp);
        assert_eq!(clock, 42, "max(0, 41) + 1");
        assert_eq!(span_id, rank_span_id(0, 1));
        // A later local send keeps advancing from the merged clock.
        assert_eq!(t.send_stamp().clock, 43);
    }
}
