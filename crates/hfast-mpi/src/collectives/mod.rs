//! Collective operations, built from point-to-point transport.
//!
//! Each collective is implemented with a standard algorithm (binomial trees,
//! dissemination, ring exchange) over the transport layer, and emits exactly
//! one API-scope [`CommEvent`](crate::CommEvent) per participating rank — the
//! same view IPM gets of a real MPI collective. The transport messages the
//! algorithms generate are emitted as `Transport`-scope events so a network
//! simulator can replay the actual flows.
//!
//! All collectives take a [`Group`](crate::Group); use [`Group::world`](crate::Group::world) for
//! whole-world operations. Collectives on the same group must be invoked in
//! the same order by all members (the usual MPI requirement).
//!
//! ## Tag discipline
//!
//! Transport messages use tags in the reserved namespace encoding the
//! operation and its internal round: because the runtime's channels preserve
//! per-pair FIFO order and matching is non-overtaking, consecutive
//! same-operation collectives between the same pair match in order without a
//! global sequence number.

pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod barrier;
pub mod bcast;
pub mod gather;
pub mod reduce;
pub mod reduce_scatter;
pub mod scan;
pub mod scatter;

use crate::Tag;

/// Operation identifiers for transport tag construction.
#[derive(Debug, Clone, Copy)]
#[repr(u8)]
pub(crate) enum OpId {
    Barrier = 1,
    Bcast = 2,
    Reduce = 3,
    Gather = 4,
    Allgather = 5,
    Alltoall = 6,
    Scatter = 7,
    Scan = 9,
    /// Reserved for a future direct reduce-scatter algorithm; the current
    /// implementation reuses the per-block `Reduce` tags.
    #[allow(dead_code)]
    ReduceScatter = 8,
}

/// Builds a reserved-namespace tag for a collective's internal round.
#[inline]
pub(crate) fn coll_tag(op: OpId, round: u32) -> Tag {
    debug_assert!(round <= 0xFFFF, "collective round overflows tag space");
    Tag(Tag::COLLECTIVE_BASE | ((op as u32) << 16) | (round & 0xFFFF))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_tags_are_reserved_and_distinct() {
        let t1 = coll_tag(OpId::Bcast, 0);
        let t2 = coll_tag(OpId::Bcast, 1);
        let t3 = coll_tag(OpId::Reduce, 0);
        assert!(t1.is_collective());
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
        assert_ne!(t2, t3);
    }
}
