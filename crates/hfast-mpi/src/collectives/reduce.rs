//! All-to-one reduction via a binomial tree.

use super::{coll_tag, OpId};
use crate::comm::{Comm, SrcSel, TagSel};
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::{Payload, ReduceOp};
use crate::{Rank, Result};

impl Comm {
    /// Reduction over the whole world (`MPI_Reduce`).
    ///
    /// Returns `Some(result)` on the root, `None` elsewhere.
    pub fn reduce(
        &mut self,
        root: Rank,
        payload: Payload,
        op: ReduceOp,
    ) -> Result<Option<Payload>> {
        let group = Group::world(self.size());
        self.reduce_in(&group, root, payload, op)
    }

    /// Reduction over a group to the member with world rank `root`.
    ///
    /// Binomial tree mirror of broadcast: at round *k*, members whose
    /// virtual rank has bit *k* set send their partial result to the member
    /// with that bit cleared, which folds it in.
    pub fn reduce_in(
        &mut self,
        group: &Group,
        root: Rank,
        payload: Payload,
        op: ReduceOp,
    ) -> Result<Option<Payload>> {
        let t0 = self.now_ns();
        let bytes = payload.len();
        let out = self.reduce_impl(group, root, payload, op)?;
        self.collective_count += 1;
        self.emit(CallKind::Reduce, Scope::Api, Some(root), bytes, None, t0);
        Ok(out)
    }

    /// Reduction algorithm without the API-event emission, for reuse inside
    /// composite collectives.
    pub(crate) fn reduce_impl(
        &mut self,
        group: &Group,
        root: Rank,
        payload: Payload,
        op: ReduceOp,
    ) -> Result<Option<Payload>> {
        let n = group.len();
        let me = group.index_of(self.rank())?;
        let root_idx = group.index_of(root)?;
        let vrank = (me + n - root_idx) % n;

        let mut acc = payload;
        let mut mask = 1usize;
        let mut round = 0u32;
        let mut is_root_side = true;
        while mask < n {
            if vrank & mask == 0 {
                // Potential receiver from vrank | mask.
                let child_v = vrank | mask;
                if child_v < n {
                    let child = group.rank_at((child_v + root_idx) % n)?;
                    let env = self.recv_transport(
                        SrcSel::Rank(child),
                        TagSel::Tag(coll_tag(OpId::Reduce, round)),
                    )?;
                    acc = op.combine(&acc, &env.payload)?;
                }
            } else {
                // Send partial to parent and exit the combining phase.
                let parent_v = vrank & !mask;
                let parent = group.rank_at((parent_v + root_idx) % n)?;
                self.send_transport(parent, coll_tag(OpId::Reduce, round), acc.clone())?;
                is_root_side = false;
                break;
            }
            mask <<= 1;
            round += 1;
        }

        if vrank == 0 {
            debug_assert!(is_root_side);
            Ok(Some(acc))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn sum_reduce_to_root0() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let results = World::run(size, |comm| {
                let payload = Payload::from_f64s(&[comm.rank() as f64, 1.0]);
                comm.reduce(0, payload, ReduceOp::Sum).unwrap()
            })
            .unwrap();
            let expected_sum: f64 = (0..size).map(|r| r as f64).sum();
            let root = results[0].as_ref().unwrap().to_f64s().unwrap();
            assert_eq!(root, vec![expected_sum, size as f64]);
            for r in &results[1..] {
                assert!(r.is_none(), "non-root ranks get None");
            }
        }
    }

    #[test]
    fn max_reduce_to_nonzero_root() {
        let results = World::run(7, |comm| {
            let payload = Payload::from_f64s(&[(comm.rank() as f64 * 7.0) % 5.0]);
            comm.reduce(3, payload, ReduceOp::Max).unwrap()
        })
        .unwrap();
        let expected = (0..7)
            .map(|r| (r as f64 * 7.0) % 5.0)
            .fold(f64::MIN, f64::max);
        assert_eq!(
            results[3].as_ref().unwrap().to_f64s().unwrap(),
            vec![expected]
        );
        assert!(results[0].is_none());
    }

    #[test]
    fn synthetic_reduce_preserves_size() {
        let results = World::run(6, |comm| {
            comm.reduce(0, Payload::synthetic(256), ReduceOp::Sum)
                .unwrap()
        })
        .unwrap();
        assert_eq!(results[0], Some(Payload::Synthetic(256)));
    }

    #[test]
    fn reduce_in_subgroup() {
        let results = World::run(8, |comm| {
            if comm.rank() >= 4 {
                let group = Group::new(vec![4, 5, 6, 7]).unwrap();
                let payload = Payload::from_f64s(&[comm.rank() as f64]);
                comm.reduce_in(&group, 6, payload, ReduceOp::Sum).unwrap()
            } else {
                None
            }
        })
        .unwrap();
        assert_eq!(
            results[6].as_ref().unwrap().to_f64s().unwrap(),
            vec![4.0 + 5.0 + 6.0 + 7.0]
        );
        assert!(results[4].is_none() && results[5].is_none() && results[7].is_none());
    }

    #[test]
    fn mismatched_lengths_error() {
        let err = World::run(2, |comm| {
            let payload = if comm.rank() == 0 {
                Payload::synthetic(8)
            } else {
                Payload::synthetic(16)
            };
            comm.reduce(0, payload, ReduceOp::Sum)
        })
        .unwrap();
        assert!(err[0].is_err(), "root detects mismatched reduce lengths");
    }
}
