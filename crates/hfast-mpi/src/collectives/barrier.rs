//! Barrier synchronization via the dissemination algorithm.

use super::{coll_tag, OpId};
use crate::comm::{Comm, SrcSel, TagSel};
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::Payload;
use crate::Result;

impl Comm {
    /// Barrier over the whole world (`MPI_Barrier`).
    pub fn barrier(&mut self) -> Result<()> {
        let group = Group::world(self.size());
        self.barrier_in(&group)
    }

    /// Barrier over a group.
    ///
    /// Dissemination algorithm: ⌈log₂ n⌉ rounds; in round *k* each member
    /// signals the member 2ᵏ ahead and waits for the member 2ᵏ behind. No
    /// member exits before every member has entered.
    pub fn barrier_in(&mut self, group: &Group) -> Result<()> {
        let t0 = self.now_ns();
        let n = group.len();
        let me = group.index_of(self.rank())?;
        let mut k = 0u32;
        while (1usize << k) < n {
            let dist = 1usize << k;
            let to = group.rank_at((me + dist) % n)?;
            let from = group.rank_at((me + n - dist) % n)?;
            let tag = coll_tag(OpId::Barrier, k);
            self.send_transport(to, tag, Payload::synthetic(0))?;
            self.recv_transport(SrcSel::Rank(from), TagSel::Tag(tag))?;
            k += 1;
        }
        self.collective_count += 1;
        self.emit(CallKind::Barrier, Scope::Api, None, 0, None, t0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Group, World};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_synchronizes_all_ranks() {
        // Counter must reach `size` before any rank passes the barrier.
        let entered = AtomicUsize::new(0);
        World::run(8, |comm| {
            entered.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            assert_eq!(entered.load(Ordering::SeqCst), 8);
        })
        .unwrap();
    }

    #[test]
    fn repeated_barriers() {
        World::run(5, |comm| {
            for _ in 0..20 {
                comm.barrier().unwrap();
            }
        })
        .unwrap();
    }

    #[test]
    fn subgroup_barrier() {
        let seen = AtomicUsize::new(0);
        World::run(6, |comm| {
            if comm.rank() % 2 == 0 {
                let group = Group::new(vec![0, 2, 4]).unwrap();
                seen.fetch_add(1, Ordering::SeqCst);
                comm.barrier_in(&group).unwrap();
                assert!(seen.load(Ordering::SeqCst) >= 3);
            }
        })
        .unwrap();
    }

    #[test]
    fn single_member_barrier_is_noop() {
        World::run(3, |comm| {
            let group = Group::new(vec![comm.rank()]).unwrap();
            comm.barrier_in(&group).unwrap();
        })
        .unwrap();
    }
}
