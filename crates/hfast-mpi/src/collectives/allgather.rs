//! All-to-all gather via the ring algorithm.

use super::{coll_tag, OpId};
use crate::comm::{Comm, SrcSel, TagSel};
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::Payload;
use crate::Result;

impl Comm {
    /// Allgather over the whole world (`MPI_Allgather`).
    ///
    /// Every rank returns all contributions in rank order.
    pub fn allgather(&mut self, payload: Payload) -> Result<Vec<Payload>> {
        let group = Group::world(self.size());
        self.allgather_in(&group, payload)
    }

    /// Allgather over a group.
    ///
    /// Ring algorithm: n−1 rounds; in round *k* each member forwards the
    /// block it received in round *k−1* to its right neighbour, so every
    /// block travels the full ring using only nearest-neighbour links.
    pub fn allgather_in(&mut self, group: &Group, payload: Payload) -> Result<Vec<Payload>> {
        let t0 = self.now_ns();
        let n = group.len();
        let me = group.index_of(self.rank())?;
        let bytes = payload.len();

        let mut blocks: Vec<Option<Payload>> = (0..n).map(|_| None).collect();
        blocks[me] = Some(payload);
        if n > 1 {
            let right = group.rank_at((me + 1) % n)?;
            let left_idx = (me + n - 1) % n;
            let left = group.rank_at(left_idx)?;
            for k in 0..n - 1 {
                // Block that originated k hops behind us is what we forward.
                let send_block = (me + n - k) % n;
                let recv_block = (me + n - k - 1) % n;
                let to_send = blocks[send_block]
                    .clone()
                    .expect("block received in previous round");
                self.send_transport(right, coll_tag(OpId::Allgather, k as u32), to_send)?;
                let env = self.recv_transport(
                    SrcSel::Rank(left),
                    TagSel::Tag(coll_tag(OpId::Allgather, k as u32)),
                )?;
                blocks[recv_block] = Some(env.payload);
            }
        }

        self.collective_count += 1;
        self.emit(CallKind::Allgather, Scope::Api, None, bytes, None, t0);
        Ok(blocks
            .into_iter()
            .map(|b| b.expect("ring completed all blocks"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn allgather_all_ranks_see_all_blocks() {
        for size in [1usize, 2, 3, 6, 9] {
            let results = World::run(size, |comm| {
                let payload = Payload::from_f64s(&[comm.rank() as f64 + 0.5]);
                comm.allgather(payload).unwrap()
            })
            .unwrap();
            for blocks in results {
                assert_eq!(blocks.len(), size);
                for (i, b) in blocks.iter().enumerate() {
                    assert_eq!(b.to_f64s().unwrap(), vec![i as f64 + 0.5]);
                }
            }
        }
    }

    #[test]
    fn allgather_in_subgroup() {
        let results = World::run(6, |comm| {
            if comm.rank() < 3 {
                let group = Group::new(vec![0, 1, 2]).unwrap();
                let p = Payload::from_f64s(&[comm.rank() as f64]);
                Some(comm.allgather_in(&group, p).unwrap())
            } else {
                None
            }
        })
        .unwrap();
        for blocks in results.iter().take(3) {
            let blocks = blocks.as_ref().unwrap();
            let vals: Vec<f64> = blocks.iter().map(|b| b.to_f64s().unwrap()[0]).collect();
            assert_eq!(vals, vec![0.0, 1.0, 2.0]);
        }
    }

    #[test]
    fn allgather_synthetic() {
        let results = World::run(4, |comm| {
            comm.allgather(Payload::synthetic(768)).unwrap().len()
        })
        .unwrap();
        assert_eq!(results, vec![4; 4]);
    }
}

#[cfg(test)]
mod variable_size_tests {
    use crate::{Payload, World};

    /// `MPI_Allgatherv` semantics: the ring forwards whatever each member
    /// contributed, so variable block sizes arrive intact everywhere.
    #[test]
    fn allgather_accepts_variable_contributions() {
        let results = World::run(4, |comm| {
            let bytes = 64 << comm.rank();
            comm.allgather(Payload::synthetic(bytes)).unwrap()
        })
        .unwrap();
        for blocks in results {
            for (i, b) in blocks.iter().enumerate() {
                assert_eq!(b.len(), 64 << i);
            }
        }
    }
}
