//! All-to-one gather.

use super::{coll_tag, OpId};
use crate::comm::{Comm, SrcSel, TagSel};
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::Payload;
use crate::{Rank, Result};

impl Comm {
    /// Gather over the whole world (`MPI_Gather`).
    ///
    /// Each rank contributes `payload`; the root returns contributions in
    /// rank order, other ranks return `None`.
    pub fn gather(&mut self, root: Rank, payload: Payload) -> Result<Option<Vec<Payload>>> {
        let group = Group::world(self.size());
        self.gather_in(&group, root, payload)
    }

    /// Gather over a group to the member with world rank `root`.
    ///
    /// Linear algorithm (each member sends directly to the root), which is
    /// what common MPI implementations use for `MPI_Gather` and what gives
    /// the root its characteristic high in-degree — the pattern that drives
    /// GTC's gather-heavy profile in the paper.
    pub fn gather_in(
        &mut self,
        group: &Group,
        root: Rank,
        payload: Payload,
    ) -> Result<Option<Vec<Payload>>> {
        let t0 = self.now_ns();
        let n = group.len();
        let me = group.index_of(self.rank())?;
        let root_idx = group.index_of(root)?;
        let bytes = payload.len();

        let out = if me == root_idx {
            let mut parts: Vec<Option<Payload>> = (0..n).map(|_| None).collect();
            parts[me] = Some(payload);
            for (i, slot) in parts.iter_mut().enumerate() {
                if i == me {
                    continue;
                }
                let src = group.rank_at(i)?;
                let env =
                    self.recv_transport(SrcSel::Rank(src), TagSel::Tag(coll_tag(OpId::Gather, 0)))?;
                *slot = Some(env.payload);
            }
            Some(
                parts
                    .into_iter()
                    .map(|p| p.expect("all contributions received"))
                    .collect(),
            )
        } else {
            self.send_transport(root, coll_tag(OpId::Gather, 0), payload)?;
            None
        };

        self.collective_count += 1;
        self.emit(CallKind::Gather, Scope::Api, Some(root), bytes, None, t0);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn gather_collects_in_rank_order() {
        let results = World::run(7, |comm| {
            let payload = Payload::from_f64s(&[comm.rank() as f64 * 3.0]);
            comm.gather(2, payload).unwrap()
        })
        .unwrap();
        let at_root = results[2].as_ref().unwrap();
        assert_eq!(at_root.len(), 7);
        for (i, p) in at_root.iter().enumerate() {
            assert_eq!(p.to_f64s().unwrap(), vec![i as f64 * 3.0]);
        }
        assert!(results[0].is_none());
    }

    #[test]
    fn gather_in_group_order() {
        let results = World::run(6, |comm| {
            if comm.rank() % 2 == 0 {
                let group = Group::new(vec![4, 0, 2]).unwrap();
                let payload = Payload::from_f64s(&[comm.rank() as f64]);
                comm.gather_in(&group, 4, payload).unwrap()
            } else {
                None
            }
        })
        .unwrap();
        let at_root = results[4].as_ref().unwrap();
        // Group order [4, 0, 2], not world order.
        assert_eq!(at_root[0].to_f64s().unwrap(), vec![4.0]);
        assert_eq!(at_root[1].to_f64s().unwrap(), vec![0.0]);
        assert_eq!(at_root[2].to_f64s().unwrap(), vec![2.0]);
    }

    #[test]
    fn gather_synthetic_sizes() {
        let results =
            World::run(5, |comm| comm.gather(0, Payload::synthetic(100)).unwrap()).unwrap();
        let at_root = results[0].as_ref().unwrap();
        assert!(at_root.iter().all(|p| p.len() == 100));
    }

    #[test]
    fn single_member_gather() {
        let results = World::run(1, |comm| comm.gather(0, Payload::synthetic(9)).unwrap()).unwrap();
        assert_eq!(results[0].as_ref().unwrap().len(), 1);
    }
}

#[cfg(test)]
mod variable_size_tests {
    use super::*;
    use crate::World;

    /// `MPI_Gatherv` semantics come for free: contributions need not be
    /// equal-sized, and the root sees each rank's true length.
    #[test]
    fn gather_accepts_variable_contributions() {
        let results = World::run(5, |comm| {
            let bytes = 100 * (comm.rank() + 1);
            comm.gather(0, Payload::synthetic(bytes)).unwrap()
        })
        .unwrap();
        let at_root = results[0].as_ref().unwrap();
        for (i, p) in at_root.iter().enumerate() {
            assert_eq!(p.len(), 100 * (i + 1));
        }
    }
}
