//! All-to-all reduction.

use crate::comm::Comm;
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::{Payload, ReduceOp};
use crate::Result;

impl Comm {
    /// Allreduce over the whole world (`MPI_Allreduce`).
    pub fn allreduce(&mut self, payload: Payload, op: ReduceOp) -> Result<Payload> {
        let group = Group::world(self.size());
        self.allreduce_in(&group, payload, op)
    }

    /// Allreduce over a group: reduce to the first member, then broadcast.
    ///
    /// Reduce+broadcast works for any group size (recursive doubling would
    /// need power-of-two handling) and keeps the transport flows simple to
    /// reason about for replay; both are O(log n) rounds.
    pub fn allreduce_in(
        &mut self,
        group: &Group,
        payload: Payload,
        op: ReduceOp,
    ) -> Result<Payload> {
        let t0 = self.now_ns();
        let bytes = payload.len();
        let root = group.rank_at(0)?;
        let reduced = self.reduce_impl(group, root, payload, op)?;
        let result = self.bcast_impl(group, root, reduced)?;
        self.collective_count += 1;
        self.emit(CallKind::Allreduce, Scope::Api, None, bytes, None, t0);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn allreduce_sum_all_sizes() {
        for size in [1usize, 2, 4, 5, 7, 12] {
            let results = World::run(size, |comm| {
                let p = Payload::from_f64s(&[comm.rank() as f64, 2.0]);
                comm.allreduce(p, ReduceOp::Sum).unwrap().to_f64s().unwrap()
            })
            .unwrap();
            let sum: f64 = (0..size).map(|r| r as f64).sum();
            for r in results {
                assert_eq!(r, vec![sum, 2.0 * size as f64]);
            }
        }
    }

    #[test]
    fn allreduce_min() {
        let results = World::run(6, |comm| {
            let p = Payload::from_f64s(&[10.0 - comm.rank() as f64]);
            comm.allreduce(p, ReduceOp::Min).unwrap().to_f64s().unwrap()[0]
        })
        .unwrap();
        assert_eq!(results, vec![5.0; 6]);
    }

    #[test]
    fn allreduce_in_subgroup() {
        let results = World::run(8, |comm| {
            let parity = comm.rank() % 2;
            let members: Vec<usize> = (0..8).filter(|r| r % 2 == parity).collect();
            let group = Group::new(members).unwrap();
            let p = Payload::from_f64s(&[comm.rank() as f64]);
            comm.allreduce_in(&group, p, ReduceOp::Sum)
                .unwrap()
                .to_f64s()
                .unwrap()[0]
        })
        .unwrap();
        for (r, v) in results.iter().enumerate() {
            let expected: f64 = (0..8).filter(|x| x % 2 == r % 2).map(|x| x as f64).sum();
            assert_eq!(*v, expected);
        }
    }

    #[test]
    fn allreduce_counts_as_one_collective() {
        use crate::hook::{CommHook, RecordingHook};
        use std::sync::Arc;
        let hook = Arc::new(RecordingHook::new());
        crate::World::run_with(
            crate::WorldConfig::new(4).hook(hook.clone() as Arc<dyn CommHook>),
            |comm| {
                comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)
                    .unwrap();
            },
        )
        .unwrap();
        let events = hook.take();
        let api_events: Vec<_> = events
            .iter()
            .filter(|e| e.scope == crate::Scope::Api)
            .collect();
        // Exactly one Allreduce API event per rank, nothing else at API scope.
        assert_eq!(api_events.len(), 4);
        assert!(api_events.iter().all(|e| e.kind == CallKind::Allreduce));
    }
}
