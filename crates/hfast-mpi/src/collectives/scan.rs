//! Inclusive prefix reduction (`MPI_Scan`).

use super::{coll_tag, OpId};
use crate::comm::{Comm, SrcSel, TagSel};
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::{Payload, ReduceOp};
use crate::Result;

impl Comm {
    /// Inclusive scan over the whole world: rank *i* receives the reduction
    /// of contributions from ranks `0..=i`.
    pub fn scan(&mut self, payload: Payload, op: ReduceOp) -> Result<Payload> {
        let group = Group::world(self.size());
        self.scan_in(&group, payload, op)
    }

    /// Inclusive scan over a group (by group order).
    ///
    /// Hillis-Steele doubling: ⌈log₂ n⌉ rounds; in round *k* each member
    /// sends its running prefix to the member 2ᵏ ahead and folds in the
    /// prefix received from 2ᵏ behind.
    pub fn scan_in(&mut self, group: &Group, payload: Payload, op: ReduceOp) -> Result<Payload> {
        let t0 = self.now_ns();
        let n = group.len();
        let me = group.index_of(self.rank())?;
        let bytes = payload.len();

        let mut acc = payload;
        let mut k = 0u32;
        while (1usize << k) < n {
            let dist = 1usize << k;
            let tag = coll_tag(OpId::Scan, k);
            if me + dist < n {
                let to = group.rank_at(me + dist)?;
                self.send_transport(to, tag, acc.clone())?;
            }
            if me >= dist {
                let from = group.rank_at(me - dist)?;
                let env = self.recv_transport(SrcSel::Rank(from), TagSel::Tag(tag))?;
                // Prefix order: earlier ranks' contribution combines on the
                // left; all supported operators are associative.
                acc = op.combine(&env.payload, &acc)?;
            }
            k += 1;
        }

        self.collective_count += 1;
        self.emit(CallKind::Scan, Scope::Api, None, bytes, None, t0);
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn inclusive_sum_scan() {
        for size in [1usize, 2, 3, 5, 8, 13] {
            let results = World::run(size, |comm| {
                let p = Payload::from_f64s(&[comm.rank() as f64 + 1.0]);
                comm.scan(p, ReduceOp::Sum).unwrap().to_f64s().unwrap()[0]
            })
            .unwrap();
            for (r, v) in results.iter().enumerate() {
                let expected: f64 = (0..=r).map(|x| x as f64 + 1.0).sum();
                assert_eq!(*v, expected, "rank {r} of {size}");
            }
        }
    }

    #[test]
    fn max_scan_is_running_maximum() {
        let results = World::run(7, |comm| {
            // Non-monotone inputs: 3, 1, 4, 1, 5, 9, 2.
            let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
            let p = Payload::from_f64s(&[vals[comm.rank()]]);
            comm.scan(p, ReduceOp::Max).unwrap().to_f64s().unwrap()[0]
        })
        .unwrap();
        assert_eq!(results, vec![3.0, 3.0, 4.0, 4.0, 5.0, 9.0, 9.0]);
    }

    #[test]
    fn scan_in_subgroup_uses_group_order() {
        let results = World::run(6, |comm| {
            if comm.rank() % 2 == 0 {
                let group = Group::new(vec![4, 2, 0]).unwrap();
                let p = Payload::from_f64s(&[comm.rank() as f64]);
                Some(
                    comm.scan_in(&group, p, ReduceOp::Sum)
                        .unwrap()
                        .to_f64s()
                        .unwrap()[0],
                )
            } else {
                None
            }
        })
        .unwrap();
        // Group order [4, 2, 0]: prefixes 4, 6, 6.
        assert_eq!(results[4], Some(4.0));
        assert_eq!(results[2], Some(6.0));
        assert_eq!(results[0], Some(6.0));
    }

    #[test]
    fn synthetic_scan_preserves_size() {
        let results = World::run(5, |comm| {
            comm.scan(Payload::synthetic(128), ReduceOp::Sum)
                .unwrap()
                .len()
        })
        .unwrap();
        assert_eq!(results, vec![128; 5]);
    }
}
