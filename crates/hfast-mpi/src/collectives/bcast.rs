//! One-to-all broadcast via a binomial tree.

use super::{coll_tag, OpId};
use crate::comm::{Comm, SrcSel, TagSel};
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::Payload;
use crate::{MpiError, Rank, Result};

impl Comm {
    /// Broadcast over the whole world (`MPI_Bcast`).
    ///
    /// The root passes `Some(payload)`; every rank (root included) returns
    /// the broadcast payload.
    pub fn bcast(&mut self, root: Rank, payload: Option<Payload>) -> Result<Payload> {
        let group = Group::world(self.size());
        self.bcast_in(&group, root, payload)
    }

    /// Broadcast over a group from the member with world rank `root`.
    ///
    /// Binomial tree: ⌈log₂ n⌉ levels; the profiled cost per rank is one
    /// `MPI_Bcast` call of the payload size, matching IPM's API-level view.
    pub fn bcast_in(
        &mut self,
        group: &Group,
        root: Rank,
        payload: Option<Payload>,
    ) -> Result<Payload> {
        let t0 = self.now_ns();
        let data = self.bcast_impl(group, root, payload)?;
        let bytes = data.len();
        self.collective_count += 1;
        self.emit(CallKind::Bcast, Scope::Api, Some(root), bytes, None, t0);
        Ok(data)
    }

    /// Broadcast algorithm without the API-event emission, for reuse inside
    /// composite collectives (e.g. allreduce = reduce + bcast counts as one
    /// API call).
    pub(crate) fn bcast_impl(
        &mut self,
        group: &Group,
        root: Rank,
        payload: Option<Payload>,
    ) -> Result<Payload> {
        let n = group.len();
        let me = group.index_of(self.rank())?;
        let root_idx = group.index_of(root)?;
        let vrank = (me + n - root_idx) % n;

        let data = if vrank == 0 {
            payload.ok_or_else(|| {
                MpiError::CollectiveMismatch("bcast root must supply a payload".into())
            })?
        } else {
            // Receive from the parent in the binomial tree: the parent of
            // vrank is vrank with its lowest set bit cleared.
            let mut mask = 1usize;
            let mut received = None;
            let mut round = 0u32;
            while mask < n {
                if vrank & mask != 0 {
                    let parent_v = vrank & !mask;
                    let parent = group.rank_at((parent_v + root_idx) % n)?;
                    let env = self.recv_transport(
                        SrcSel::Rank(parent),
                        TagSel::Tag(coll_tag(OpId::Bcast, round)),
                    )?;
                    received = Some(env.payload);
                    break;
                }
                mask <<= 1;
                round += 1;
            }
            received.expect("non-root vrank has a parent")
        };

        // Forward to children: vrank + mask for each mask below the lowest
        // set bit of vrank (all masks for the root).
        let lowest = if vrank == 0 {
            n.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut mask = 1usize;
        let mut round = 0u32;
        let mut sends: Vec<(Rank, u32)> = Vec::new();
        while mask < n && mask < lowest {
            let child_v = vrank | mask;
            if child_v != vrank && child_v < n {
                let child = group.rank_at((child_v + root_idx) % n)?;
                sends.push((child, round));
            }
            mask <<= 1;
            round += 1;
        }
        // Send deepest-first so far subtrees start receiving early.
        for (child, round) in sends.into_iter().rev() {
            self.send_transport(child, coll_tag(OpId::Bcast, round), data.clone())?;
        }

        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn bcast_from_rank0() {
        let results = World::run(9, |comm| {
            let payload = if comm.rank() == 0 {
                Some(Payload::from_f64s(&[3.25, -1.0]))
            } else {
                None
            };
            let p = comm.bcast(0, payload).unwrap();
            p.to_f64s().unwrap()
        })
        .unwrap();
        for r in results {
            assert_eq!(r, vec![3.25, -1.0]);
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        for size in [2usize, 3, 4, 7, 8, 16] {
            let results = World::run(size, move |comm| {
                let root = size - 1;
                let payload = if comm.rank() == root {
                    Some(Payload::from_f64s(&[root as f64]))
                } else {
                    None
                };
                comm.bcast(root, payload).unwrap().to_f64s().unwrap()[0]
            })
            .unwrap();
            for v in results {
                assert_eq!(v, (size - 1) as f64);
            }
        }
    }

    #[test]
    fn bcast_synthetic_preserves_size() {
        let results = World::run(5, |comm| {
            let payload = if comm.rank() == 2 {
                Some(Payload::synthetic(4096))
            } else {
                None
            };
            comm.bcast(2, payload).unwrap().len()
        })
        .unwrap();
        assert_eq!(results, vec![4096; 5]);
    }

    #[test]
    fn bcast_in_subgroup() {
        let results = World::run(6, |comm| {
            if comm.rank() % 2 == 1 {
                let group = Group::new(vec![1, 3, 5]).unwrap();
                let payload = if comm.rank() == 3 {
                    Some(Payload::from_f64s(&[42.0]))
                } else {
                    None
                };
                comm.bcast_in(&group, 3, payload)
                    .unwrap()
                    .to_f64s()
                    .unwrap()[0]
            } else {
                0.0
            }
        })
        .unwrap();
        assert_eq!(results[1], 42.0);
        assert_eq!(results[3], 42.0);
        assert_eq!(results[5], 42.0);
    }

    #[test]
    fn root_without_payload_errors() {
        World::run(1, |comm| {
            let err = comm.bcast(0, None).unwrap_err();
            assert!(matches!(err, MpiError::CollectiveMismatch(_)));
        })
        .unwrap();
    }

    #[test]
    fn consecutive_bcasts_do_not_cross_match() {
        let results = World::run(4, |comm| {
            let mut got = vec![];
            for i in 0..5 {
                let payload = if comm.rank() == 0 {
                    Some(Payload::from_f64s(&[i as f64]))
                } else {
                    None
                };
                got.push(comm.bcast(0, payload).unwrap().to_f64s().unwrap()[0]);
            }
            got
        })
        .unwrap();
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        }
    }
}
