//! Reduction followed by scatter of the result blocks.

use crate::comm::Comm;
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::{Payload, ReduceOp};
use crate::{MpiError, Result};

impl Comm {
    /// Reduce-scatter over the whole world (`MPI_Reduce_scatter`).
    ///
    /// Every rank contributes one payload block per rank; block *i* is
    /// reduced across all ranks and delivered to rank *i*.
    pub fn reduce_scatter(&mut self, payloads: Vec<Payload>, op: ReduceOp) -> Result<Payload> {
        let group = Group::world(self.size());
        self.reduce_scatter_in(&group, payloads, op)
    }

    /// Reduce-scatter over a group; blocks are indexed by group position.
    ///
    /// Implemented as reduce-to-first-member of each block followed by the
    /// deliveries, reusing the binomial reduction per block. The API-level
    /// profile is a single `MPI_Reduce_scatter` of the per-block size.
    pub fn reduce_scatter_in(
        &mut self,
        group: &Group,
        payloads: Vec<Payload>,
        op: ReduceOp,
    ) -> Result<Payload> {
        let t0 = self.now_ns();
        let n = group.len();
        if payloads.len() != n {
            return Err(MpiError::CollectiveMismatch(format!(
                "reduce_scatter needs one block per member: got {} for group of {n}",
                payloads.len()
            )));
        }
        let me = group.index_of(self.rank())?;
        let bytes = payloads.get(me).map(Payload::len).unwrap_or(0);

        // Reduce block i to the member at index i: each block's reduction is
        // rooted at its recipient, so the scatter phase is implicit.
        let mut mine: Option<Payload> = None;
        for (i, block) in payloads.into_iter().enumerate() {
            let root = group.rank_at(i)?;
            let reduced = self.reduce_impl(group, root, block, op)?;
            if i == me {
                mine = Some(reduced.expect("member is root of its own block"));
            }
        }

        self.collective_count += 1;
        self.emit(CallKind::ReduceScatter, Scope::Api, None, bytes, None, t0);
        Ok(mine.expect("own block reduced"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn reduce_scatter_sums_blocks() {
        for size in [1usize, 2, 4, 6] {
            let results = World::run(size, |comm| {
                // Block j from rank r holds r + j/1000.
                let payloads: Vec<Payload> = (0..comm.size())
                    .map(|j| Payload::from_f64s(&[comm.rank() as f64 + j as f64 / 1000.0]))
                    .collect();
                comm.reduce_scatter(payloads, ReduceOp::Sum)
                    .unwrap()
                    .to_f64s()
                    .unwrap()[0]
            })
            .unwrap();
            let rank_sum: f64 = (0..size).map(|r| r as f64).sum();
            for (j, v) in results.iter().enumerate() {
                let expected = rank_sum + size as f64 * (j as f64 / 1000.0);
                assert!((v - expected).abs() < 1e-9, "block {j}: {v} vs {expected}");
            }
        }
    }

    #[test]
    fn reduce_scatter_wrong_count_errors() {
        World::run(1, |comm| {
            let err = comm.reduce_scatter(vec![], ReduceOp::Sum).unwrap_err();
            assert!(matches!(err, MpiError::CollectiveMismatch(_)));
        })
        .unwrap();
    }

    #[test]
    fn reduce_scatter_synthetic() {
        let results = World::run(3, |comm| {
            let payloads = vec![Payload::synthetic(512); 3];
            comm.reduce_scatter(payloads, ReduceOp::Max).unwrap().len()
        })
        .unwrap();
        assert_eq!(results, vec![512; 3]);
    }
}
