//! Personalized all-to-all exchange.

use super::{coll_tag, OpId};
use crate::comm::{Comm, SrcSel, TagSel};
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::Payload;
use crate::{MpiError, Result};

impl Comm {
    /// All-to-all over the whole world (`MPI_Alltoall`).
    ///
    /// `payloads[i]` goes to rank `i`; the result holds the block received
    /// from each rank. This is the global-transpose primitive behind
    /// PARATEC's 3D FFTs in the paper.
    pub fn alltoall(&mut self, payloads: Vec<Payload>) -> Result<Vec<Payload>> {
        let group = Group::world(self.size());
        self.alltoall_in(&group, payloads)
    }

    /// All-to-all over a group; `payloads` are indexed by group position.
    ///
    /// Shifted-pairwise schedule: n−1 rounds, in round *k* each member sends
    /// to the member *k* ahead and receives from the member *k* behind, which
    /// spreads load evenly and avoids hot spots.
    pub fn alltoall_in(&mut self, group: &Group, payloads: Vec<Payload>) -> Result<Vec<Payload>> {
        let t0 = self.now_ns();
        let n = group.len();
        if payloads.len() != n {
            return Err(MpiError::CollectiveMismatch(format!(
                "alltoall needs one payload per member: got {} for group of {n}",
                payloads.len()
            )));
        }
        let me = group.index_of(self.rank())?;
        // IPM sees the per-destination block size as the buffer argument.
        let block_bytes = payloads.iter().map(Payload::len).max().unwrap_or(0);

        let mut blocks: Vec<Option<Payload>> = (0..n).map(|_| None).collect();
        let mut payloads: Vec<Option<Payload>> = payloads.into_iter().map(Some).collect();
        blocks[me] = payloads[me].take();
        for k in 1..n {
            let to_idx = (me + k) % n;
            let from_idx = (me + n - k) % n;
            let to = group.rank_at(to_idx)?;
            let from = group.rank_at(from_idx)?;
            let outgoing = payloads[to_idx].take().expect("each block sent once");
            self.send_transport(to, coll_tag(OpId::Alltoall, k as u32), outgoing)?;
            let env = self.recv_transport(
                SrcSel::Rank(from),
                TagSel::Tag(coll_tag(OpId::Alltoall, k as u32)),
            )?;
            blocks[from_idx] = Some(env.payload);
        }

        self.collective_count += 1;
        self.emit(CallKind::Alltoall, Scope::Api, None, block_bytes, None, t0);
        Ok(blocks
            .into_iter()
            .map(|b| b.expect("all blocks exchanged"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn alltoall_transposes() {
        for size in [1usize, 2, 3, 5, 8] {
            let results = World::run(size, |comm| {
                // Block for rank j encodes (my_rank, j).
                let payloads: Vec<Payload> = (0..comm.size())
                    .map(|j| Payload::from_f64s(&[comm.rank() as f64, j as f64]))
                    .collect();
                comm.alltoall(payloads).unwrap()
            })
            .unwrap();
            for (i, blocks) in results.iter().enumerate() {
                for (j, b) in blocks.iter().enumerate() {
                    // Rank i's block j came from rank j, addressed to i.
                    assert_eq!(b.to_f64s().unwrap(), vec![j as f64, i as f64]);
                }
            }
        }
    }

    #[test]
    fn alltoall_wrong_block_count_errors() {
        World::run(3, |comm| {
            let err = comm.alltoall(vec![Payload::synthetic(1); 2]).unwrap_err();
            assert!(matches!(err, MpiError::CollectiveMismatch(_)));
        })
        .unwrap();
    }

    #[test]
    fn alltoall_in_subgroup() {
        let results = World::run(5, |comm| {
            if comm.rank() < 3 {
                let group = Group::new(vec![0, 1, 2]).unwrap();
                let payloads: Vec<Payload> = (0..3)
                    .map(|j| Payload::from_f64s(&[(comm.rank() * 10 + j) as f64]))
                    .collect();
                Some(comm.alltoall_in(&group, payloads).unwrap())
            } else {
                None
            }
        })
        .unwrap();
        for (i, blocks) in results.iter().take(3).enumerate() {
            let blocks = blocks.as_ref().unwrap();
            for (j, b) in blocks.iter().enumerate() {
                assert_eq!(b.to_f64s().unwrap(), vec![(j * 10 + i) as f64]);
            }
        }
    }

    #[test]
    fn repeated_alltoalls() {
        let results = World::run(4, |comm| {
            let mut sum = 0.0;
            for round in 0..8 {
                let payloads: Vec<Payload> = (0..4)
                    .map(|_| Payload::from_f64s(&[round as f64]))
                    .collect();
                let got = comm.alltoall(payloads).unwrap();
                sum += got.iter().map(|b| b.to_f64s().unwrap()[0]).sum::<f64>();
            }
            sum
        })
        .unwrap();
        let expected: f64 = (0..8).map(|r| (r * 4) as f64).sum();
        assert_eq!(results, vec![expected; 4]);
    }
}
