//! One-to-all scatter.

use super::{coll_tag, OpId};
use crate::comm::{Comm, SrcSel, TagSel};
use crate::group::Group;
use crate::hook::{CallKind, Scope};
use crate::message::Payload;
use crate::{MpiError, Rank, Result};

impl Comm {
    /// Scatter over the whole world (`MPI_Scatter`).
    ///
    /// The root passes one payload per rank; each rank returns its block.
    pub fn scatter(&mut self, root: Rank, payloads: Option<Vec<Payload>>) -> Result<Payload> {
        let group = Group::world(self.size());
        self.scatter_in(&group, root, payloads)
    }

    /// Scatter over a group from the member with world rank `root`.
    ///
    /// Linear algorithm: the root sends each member its block directly.
    pub fn scatter_in(
        &mut self,
        group: &Group,
        root: Rank,
        payloads: Option<Vec<Payload>>,
    ) -> Result<Payload> {
        let t0 = self.now_ns();
        let n = group.len();
        let me = group.index_of(self.rank())?;
        let root_idx = group.index_of(root)?;

        let mine = if me == root_idx {
            let mut payloads = payloads.ok_or_else(|| {
                MpiError::CollectiveMismatch("scatter root must supply payloads".into())
            })?;
            if payloads.len() != n {
                return Err(MpiError::CollectiveMismatch(format!(
                    "scatter needs one payload per member: got {} for group of {n}",
                    payloads.len()
                )));
            }
            for i in (0..n).rev() {
                if i == me {
                    continue;
                }
                let dest = group.rank_at(i)?;
                let block = payloads[i].clone();
                self.send_transport(dest, coll_tag(OpId::Scatter, 0), block)?;
            }
            payloads.swap_remove(me)
        } else {
            let env =
                self.recv_transport(SrcSel::Rank(root), TagSel::Tag(coll_tag(OpId::Scatter, 0)))?;
            env.payload
        };

        let bytes = mine.len();
        self.collective_count += 1;
        self.emit(CallKind::Scatter, Scope::Api, Some(root), bytes, None, t0);
        Ok(mine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn scatter_distributes_blocks() {
        let results = World::run(6, |comm| {
            let payloads = if comm.rank() == 1 {
                Some(
                    (0..6)
                        .map(|i| Payload::from_f64s(&[i as f64 * 11.0]))
                        .collect(),
                )
            } else {
                None
            };
            comm.scatter(1, payloads).unwrap().to_f64s().unwrap()[0]
        })
        .unwrap();
        for (r, v) in results.iter().enumerate() {
            assert_eq!(*v, r as f64 * 11.0);
        }
    }

    #[test]
    fn scatter_wrong_count_errors() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.scatter(0, Some(vec![Payload::synthetic(1); 5])).err()
            } else {
                // Peer would block forever on a root error; don't participate.
                None
            }
        });
        // Rank 1 never receives because root errored before sending; the
        // world surfaces rank 1's timeout or completes with rank 0's error.
        match results {
            Ok(r) => assert!(matches!(r[0], Some(MpiError::CollectiveMismatch(_)))),
            Err(e) => assert!(matches!(
                e,
                MpiError::Timeout { .. } | MpiError::RankPanic { .. }
            )),
        }
    }

    #[test]
    fn scatter_in_subgroup() {
        let results = World::run(4, |comm| {
            if comm.rank() % 2 == 0 {
                let group = Group::new(vec![2, 0]).unwrap();
                let payloads = if comm.rank() == 2 {
                    Some(vec![
                        Payload::from_f64s(&[20.0]),
                        Payload::from_f64s(&[0.0]),
                    ])
                } else {
                    None
                };
                comm.scatter_in(&group, 2, payloads)
                    .unwrap()
                    .to_f64s()
                    .unwrap()[0]
            } else {
                -1.0
            }
        })
        .unwrap();
        assert_eq!(results[2], 20.0);
        assert_eq!(results[0], 0.0);
    }
}
