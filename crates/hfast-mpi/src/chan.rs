//! The mailbox channel used between ranks.
//!
//! A thin facade over [`std::sync::mpsc`]: unbounded, multi-producer (every
//! rank holds a clone of every other rank's sender), single-consumer (each
//! rank drains only its own mailbox). Isolating the choice of channel here
//! keeps the runtime free of external dependencies and gives one place to
//! swap the transport later (e.g. for a bounded or sharded mailbox).

pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), i);
        }
    }

    #[test]
    fn timeout_when_empty() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnected_when_all_senders_dropped() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn senders_work_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
        });
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got.len(), 200);
    }
}
