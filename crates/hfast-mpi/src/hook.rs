//! The PMPI-style observer boundary.
//!
//! Every API call on a [`Comm`](crate::Comm) emits exactly one [`CommEvent`]
//! to the world's [`CommHook`]. This is the same interposition point the IPM
//! profiling layer of the paper uses (the MPI name-shifted profiling
//! interface): the profiler sees call kind, buffer size, partner, and timing,
//! without the runtime knowing anything about profiling.

use std::sync::Mutex;

use crate::{Rank, Tag};

/// Which API entry point produced an event.
///
/// The variants cover the MPI subset exercised by the six SC'05 study
/// applications (see paper Figure 2) plus the transport-level sends the
/// collectives are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CallKind {
    /// Blocking standard-mode send.
    Send,
    /// Blocking receive.
    Recv,
    /// Nonblocking send.
    Isend,
    /// Nonblocking receive.
    Irecv,
    /// Combined send+receive.
    Sendrecv,
    /// Completion of a single request.
    Wait,
    /// Completion of a set of requests.
    Waitall,
    /// Completion of any one request out of a set.
    Waitany,
    /// Nonblocking completion probe.
    Test,
    /// Barrier synchronization.
    Barrier,
    /// One-to-all broadcast.
    Bcast,
    /// All-to-one reduction.
    Reduce,
    /// All-to-all reduction.
    Allreduce,
    /// All-to-one gather.
    Gather,
    /// All-to-all gather.
    Allgather,
    /// Personalized all-to-all exchange.
    Alltoall,
    /// One-to-all scatter.
    Scatter,
    /// Reduction followed by scatter.
    ReduceScatter,
    /// Inclusive prefix reduction.
    Scan,
    /// Blocking message probe.
    Probe,
    /// Nonblocking message probe.
    Iprobe,
    /// Transport-level send inside a collective algorithm.
    TransportSend,
    /// Transport-level receive inside a collective algorithm.
    TransportRecv,
}

impl CallKind {
    /// Every variant, in declaration order (so `ALL[k.index()] == k`).
    pub const ALL: [CallKind; 23] = [
        CallKind::Send,
        CallKind::Recv,
        CallKind::Isend,
        CallKind::Irecv,
        CallKind::Sendrecv,
        CallKind::Wait,
        CallKind::Waitall,
        CallKind::Waitany,
        CallKind::Test,
        CallKind::Barrier,
        CallKind::Bcast,
        CallKind::Reduce,
        CallKind::Allreduce,
        CallKind::Gather,
        CallKind::Allgather,
        CallKind::Alltoall,
        CallKind::Scatter,
        CallKind::ReduceScatter,
        CallKind::Scan,
        CallKind::Probe,
        CallKind::Iprobe,
        CallKind::TransportSend,
        CallKind::TransportRecv,
    ];

    /// Dense index of this variant (for per-kind counter tables).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// MPI-style display name (e.g. `MPI_Isend`).
    pub fn mpi_name(self) -> &'static str {
        match self {
            CallKind::Send => "MPI_Send",
            CallKind::Recv => "MPI_Recv",
            CallKind::Isend => "MPI_Isend",
            CallKind::Irecv => "MPI_Irecv",
            CallKind::Sendrecv => "MPI_Sendrecv",
            CallKind::Wait => "MPI_Wait",
            CallKind::Waitall => "MPI_Waitall",
            CallKind::Waitany => "MPI_Waitany",
            CallKind::Test => "MPI_Test",
            CallKind::Barrier => "MPI_Barrier",
            CallKind::Bcast => "MPI_Bcast",
            CallKind::Reduce => "MPI_Reduce",
            CallKind::Allreduce => "MPI_Allreduce",
            CallKind::Gather => "MPI_Gather",
            CallKind::Allgather => "MPI_Allgather",
            CallKind::Alltoall => "MPI_Alltoall",
            CallKind::Scatter => "MPI_Scatter",
            CallKind::ReduceScatter => "MPI_Reduce_scatter",
            CallKind::Scan => "MPI_Scan",
            CallKind::Probe => "MPI_Probe",
            CallKind::Iprobe => "MPI_Iprobe",
            CallKind::TransportSend => "transport::send",
            CallKind::TransportRecv => "transport::recv",
        }
    }

    /// True for collective operations (the paper's "Col." bucket in Table 3).
    #[inline]
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            CallKind::Barrier
                | CallKind::Bcast
                | CallKind::Reduce
                | CallKind::Allreduce
                | CallKind::Gather
                | CallKind::Allgather
                | CallKind::Alltoall
                | CallKind::Scatter
                | CallKind::ReduceScatter
                | CallKind::Scan
        )
    }

    /// True for point-to-point *data* calls (sends/receives, not completions).
    #[inline]
    pub fn is_ptp_data(self) -> bool {
        matches!(
            self,
            CallKind::Send
                | CallKind::Recv
                | CallKind::Isend
                | CallKind::Irecv
                | CallKind::Sendrecv
        )
    }

    /// True for completion calls (`Wait*`/`Test`).
    #[inline]
    pub fn is_completion(self) -> bool {
        matches!(
            self,
            CallKind::Wait | CallKind::Waitall | CallKind::Waitany | CallKind::Test
        )
    }

    /// True for the calls the paper counts in the point-to-point bucket:
    /// everything that is neither a collective nor transport-internal.
    ///
    /// (Figure 2 shows Wait/Waitall slices inside each code's call mix and
    /// Table 3's `% PTP calls` + `% Col. calls` sum to 100, so completions
    /// belong to the PTP bucket.)
    #[inline]
    pub fn in_ptp_bucket(self) -> bool {
        !self.is_collective() && !self.is_transport()
    }

    /// True for transport-internal events generated by collective algorithms.
    #[inline]
    pub fn is_transport(self) -> bool {
        matches!(self, CallKind::TransportSend | CallKind::TransportRecv)
    }

    /// True if the event's `bytes` field reflects outbound traffic
    /// (used when building the directed volume matrix from send-side events
    /// only, so that each message is counted exactly once).
    #[inline]
    pub fn is_outbound(self) -> bool {
        matches!(
            self,
            CallKind::Send | CallKind::Isend | CallKind::Sendrecv | CallKind::TransportSend
        )
    }
}

impl std::fmt::Display for CallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mpi_name())
    }
}

/// Whether an event crossed the public API boundary or is internal transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// An application-issued call (what IPM profiles).
    Api,
    /// A message generated inside a collective algorithm (what a network
    /// simulator replays).
    Transport,
}

/// One observed communication call.
#[derive(Debug, Clone, PartialEq)]
pub struct CommEvent {
    /// The rank that issued the call.
    pub rank: Rank,
    /// Which API entry point.
    pub kind: CallKind,
    /// API versus transport boundary.
    pub scope: Scope,
    /// Peer rank: destination for sends, (matched) source for receives,
    /// root for rooted collectives, `None` otherwise.
    pub peer: Option<Rank>,
    /// Buffer size in bytes as passed to the call (0 for completions and
    /// barriers).
    pub bytes: usize,
    /// Message tag where applicable.
    pub tag: Option<Tag>,
    /// Call entry time, nanoseconds since world start.
    pub t_start_ns: u64,
    /// Call exit time, nanoseconds since world start.
    pub t_end_ns: u64,
}

impl CommEvent {
    /// Wall-clock duration of the call in nanoseconds.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }
}

/// Observer of communication events.
///
/// Implementations must be cheap and thread-safe: every rank thread calls
/// `on_event` inline with its communication.
pub trait CommHook: Send + Sync {
    /// Called once per API (and transport) call, after the call completes.
    fn on_event(&self, event: &CommEvent);
}

/// A hook that discards all events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHook;

impl CommHook for NullHook {
    #[inline]
    fn on_event(&self, _event: &CommEvent) {}
}

/// A hook that records every event; intended for tests and small traces.
#[derive(Debug, Default)]
pub struct RecordingHook {
    events: Mutex<Vec<CommEvent>>,
}

impl RecordingHook {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the recorded events, sorted by start time.
    pub fn take(&self) -> Vec<CommEvent> {
        let mut evs = std::mem::take(&mut *self.events.lock().expect("recording hook poisoned"));
        evs.sort_by_key(|e| (e.t_start_ns, e.rank));
        evs
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recording hook poisoned").len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CommHook for RecordingHook {
    fn on_event(&self, event: &CommEvent) {
        self.events
            .lock()
            .expect("recording hook poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_api_calls() {
        // Every non-transport kind is either collective or PTP-bucket.
        let kinds = [
            CallKind::Send,
            CallKind::Recv,
            CallKind::Isend,
            CallKind::Irecv,
            CallKind::Sendrecv,
            CallKind::Wait,
            CallKind::Waitall,
            CallKind::Waitany,
            CallKind::Test,
            CallKind::Barrier,
            CallKind::Bcast,
            CallKind::Reduce,
            CallKind::Allreduce,
            CallKind::Gather,
            CallKind::Allgather,
            CallKind::Alltoall,
            CallKind::Scatter,
            CallKind::ReduceScatter,
            CallKind::Scan,
            CallKind::Probe,
            CallKind::Iprobe,
        ];
        for k in kinds {
            assert!(
                k.is_collective() ^ k.in_ptp_bucket(),
                "{k} must be in exactly one bucket"
            );
        }
    }

    #[test]
    fn completions_are_ptp_but_not_data() {
        assert!(CallKind::Wait.in_ptp_bucket());
        assert!(!CallKind::Wait.is_ptp_data());
        assert!(CallKind::Isend.is_ptp_data());
    }

    #[test]
    fn transport_is_excluded_from_both_buckets() {
        assert!(!CallKind::TransportSend.in_ptp_bucket());
        assert!(!CallKind::TransportSend.is_collective());
        assert!(CallKind::TransportSend.is_transport());
    }

    #[test]
    fn mpi_names_match_convention() {
        assert_eq!(CallKind::Isend.mpi_name(), "MPI_Isend");
        assert_eq!(CallKind::ReduceScatter.mpi_name(), "MPI_Reduce_scatter");
    }

    #[test]
    fn recording_hook_collects_and_sorts() {
        let hook = RecordingHook::new();
        let ev = |t, kind| CommEvent {
            rank: 0,
            kind,
            scope: Scope::Api,
            peer: None,
            bytes: 0,
            tag: None,
            t_start_ns: t,
            t_end_ns: t + 1,
        };
        hook.on_event(&ev(50, CallKind::Barrier));
        hook.on_event(&ev(10, CallKind::Send));
        assert_eq!(hook.len(), 2);
        let evs = hook.take();
        assert_eq!(evs[0].kind, CallKind::Send);
        assert_eq!(evs[1].kind, CallKind::Barrier);
        assert!(hook.is_empty());
    }

    #[test]
    fn elapsed_saturates() {
        let ev = CommEvent {
            rank: 0,
            kind: CallKind::Send,
            scope: Scope::Api,
            peer: Some(1),
            bytes: 8,
            tag: Some(Tag(1)),
            t_start_ns: 100,
            t_end_ns: 40,
        };
        assert_eq!(ev.elapsed_ns(), 0);
    }
}

/// Fans events out to several hooks (e.g. the IPM profiler plus a
/// time-windowed TDC monitor in one run).
pub struct MultiHook {
    hooks: Vec<std::sync::Arc<dyn CommHook>>,
}

impl MultiHook {
    /// Combines the given hooks; events are delivered in order.
    pub fn new(hooks: Vec<std::sync::Arc<dyn CommHook>>) -> Self {
        MultiHook { hooks }
    }
}

impl CommHook for MultiHook {
    fn on_event(&self, event: &CommEvent) {
        for hook in &self.hooks {
            hook.on_event(event);
        }
    }
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn multi_hook_fans_out() {
        let a = Arc::new(RecordingHook::new());
        let b = Arc::new(RecordingHook::new());
        let multi = MultiHook::new(vec![a.clone(), b.clone()]);
        multi.on_event(&CommEvent {
            rank: 0,
            kind: CallKind::Send,
            scope: Scope::Api,
            peer: Some(1),
            bytes: 8,
            tag: None,
            t_start_ns: 0,
            t_end_ns: 1,
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
