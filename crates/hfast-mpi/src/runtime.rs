//! World launch: spawns one OS thread per rank and wires up mailboxes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hfast_trace::TraceRecorder;

use crate::chan::unbounded;
use crate::comm::Comm;
use crate::error::{MpiError, Result};
use crate::hook::{CommHook, MultiHook, NullHook};
use crate::message::Envelope;
use crate::obs::WorldObs;
use crate::trace::CommTrace;

/// Configuration for a [`World`] launch.
#[derive(Clone)]
pub struct WorldConfig {
    /// Number of ranks.
    pub size: usize,
    /// How long a blocking operation may stall before the runtime reports a
    /// [`MpiError::Timeout`] instead of deadlocking. A peer that panicked
    /// (and will never send) thereby turns into a diagnosable error.
    pub timeout: Duration,
    /// Observer for communication events.
    pub hook: Arc<dyn CommHook>,
    /// Causal span recorder. When set, every rank stamps its outgoing
    /// envelopes and records send/recv spans into it; the caller owns the
    /// recorder and its export. When unset but `HFAST_TRACE` is on, the
    /// world attaches a recorder itself and writes a Perfetto JSON
    /// document to the `HFAST_TRACE` sink at world end.
    pub trace: Option<Arc<TraceRecorder>>,
}

impl WorldConfig {
    /// Default configuration: given size, 30 s timeout, no observer.
    pub fn new(size: usize) -> Self {
        WorldConfig {
            size,
            timeout: Duration::from_secs(30),
            hook: Arc::new(NullHook),
            trace: None,
        }
    }

    /// Sets the blocking-operation timeout.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Installs an observer hook.
    pub fn hook(mut self, hook: Arc<dyn CommHook>) -> Self {
        self.hook = hook;
        self
    }

    /// Attaches a causal span recorder (the caller exports it).
    pub fn trace(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.trace = Some(recorder);
        self
    }
}

impl std::fmt::Debug for WorldConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldConfig")
            .field("size", &self.size)
            .field("timeout", &self.timeout)
            .finish()
    }
}

/// Entry point to the runtime: spawns ranks and runs a closure on each.
#[derive(Debug)]
pub struct World;

impl World {
    /// Runs `f` on `size` ranks with default configuration.
    ///
    /// Returns each rank's result, indexed by rank.
    pub fn run<F, R>(size: usize, f: F) -> Result<Vec<R>>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        Self::run_with(WorldConfig::new(size), f)
    }

    /// Runs `f` on each rank under the given configuration.
    ///
    /// Rank 0 runs on the calling thread; ranks 1.. run on scoped threads.
    /// If any rank panics, the world reports [`MpiError::RankPanic`] for the
    /// lowest panicked rank after all ranks have stopped.
    pub fn run_with<F, R>(config: WorldConfig, f: F) -> Result<Vec<R>>
    where
        F: Fn(&mut Comm) -> R + Sync,
        R: Send,
    {
        let size = config.size;
        assert!(size > 0, "world size must be positive");
        // With HFAST_OBS on, an IPM-shaped counter set rides along on the
        // hook boundary and is exported when the world ends. Counters only —
        // event timing and rank scheduling are unaffected.
        let obs = hfast_obs::enabled().then(|| Arc::new(WorldObs::new(size)));
        let hook: Arc<dyn CommHook> = match &obs {
            Some(o) => Arc::new(MultiHook::new(vec![
                Arc::clone(&config.hook),
                Arc::clone(o) as Arc<dyn CommHook>,
            ])),
            None => Arc::clone(&config.hook),
        };
        // Tracing: a caller-supplied recorder wins; otherwise HFAST_TRACE
        // attaches one whose Perfetto export goes to the env sink at the
        // end of the world.
        let auto_trace = config.trace.is_none() && hfast_trace::enabled();
        let trace: Option<Arc<TraceRecorder>> = config
            .trace
            .clone()
            .or_else(|| auto_trace.then(|| Arc::new(TraceRecorder::new())));
        let rank_trace = |rank: usize| {
            trace
                .as_ref()
                .map(|r| CommTrace::new(Arc::clone(r), 1, rank))
        };
        let mut txs = Vec::with_capacity(size);
        let mut rxs = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<Envelope>();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        let epoch = Instant::now();
        let f = &f;

        let mut results: Vec<Option<R>> = Vec::with_capacity(size);
        for _ in 0..size {
            results.push(None);
        }
        let mut panicked: Vec<usize> = vec![];

        // Keep rank 0's receiver; hand out the rest.
        let mut rx_iter = rxs.into_iter();
        let rx0 = rx_iter.next().expect("size > 0");

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size.saturating_sub(1));
            for (i, rx) in rx_iter.enumerate() {
                let rank = i + 1;
                let txs = Arc::clone(&txs);
                let hook = Arc::clone(&hook);
                let timeout = config.timeout;
                let rtrace = rank_trace(rank);
                let handle = scope.spawn(move || {
                    let mut comm = Comm::new(rank, size, txs, rx, hook, epoch, timeout, rtrace);
                    f(&mut comm)
                });
                handles.push((rank, handle));
            }

            // Rank 0 on the calling thread.
            let mut comm0 = Comm::new(
                0,
                size,
                Arc::clone(&txs),
                rx0,
                Arc::clone(&hook),
                epoch,
                config.timeout,
                rank_trace(0),
            );
            let r0 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm0)));
            match r0 {
                Ok(v) => results[0] = Some(v),
                Err(_) => panicked.push(0),
            }
            drop(comm0); // release rank 0's channel endpoints

            for (rank, handle) in handles {
                match handle.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(_) => panicked.push(rank),
                }
            }
        });

        if let Some(o) = &obs {
            o.export();
        }
        if auto_trace {
            if let Some(rec) = &trace {
                hfast_trace::write_to_env_sink(&hfast_trace::export(&rec.snapshot()));
            }
        }
        if let Some(&rank) = panicked.iter().min() {
            return Err(MpiError::RankPanic { rank });
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("non-panicked rank produced a result"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::{CallKind, RecordingHook, Scope};
    use crate::message::Payload;
    use crate::Tag;

    #[test]
    fn results_indexed_by_rank() {
        let results = World::run(6, |comm| comm.rank() * 10).unwrap();
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn single_rank_world() {
        let results = World::run(1, |comm| (comm.rank(), comm.size())).unwrap();
        assert_eq!(results, vec![(0, 1)]);
    }

    #[test]
    fn rank_panic_is_reported() {
        let err = World::run_with(
            WorldConfig::new(2).timeout(Duration::from_millis(200)),
            |comm| {
                if comm.rank() == 1 {
                    panic!("deliberate test panic");
                }
            },
        )
        .unwrap_err();
        assert_eq!(err, MpiError::RankPanic { rank: 1 });
    }

    #[test]
    fn timeout_surfaces_instead_of_deadlock() {
        let results = World::run_with(
            WorldConfig::new(2).timeout(Duration::from_millis(100)),
            |comm| {
                if comm.rank() == 0 {
                    // Nobody ever sends this.
                    comm.recv(1, Tag(1)).err()
                } else {
                    None
                }
            },
        )
        .unwrap();
        assert!(matches!(
            results[0],
            Some(MpiError::Timeout { rank: 0, .. })
        ));
    }

    #[test]
    fn hook_sees_api_events() {
        let hook = Arc::new(RecordingHook::new());
        World::run_with(
            WorldConfig::new(2).hook(hook.clone() as Arc<dyn CommHook>),
            |comm| {
                if comm.rank() == 0 {
                    comm.send(1, Tag(5), Payload::synthetic(100)).unwrap();
                } else {
                    comm.recv(0, Tag(5)).unwrap();
                }
            },
        )
        .unwrap();
        let events = hook.take();
        assert_eq!(events.len(), 2);
        let send = events.iter().find(|e| e.kind == CallKind::Send).unwrap();
        assert_eq!(send.rank, 0);
        assert_eq!(send.peer, Some(1));
        assert_eq!(send.bytes, 100);
        assert_eq!(send.scope, Scope::Api);
        let recv = events.iter().find(|e| e.kind == CallKind::Recv).unwrap();
        assert_eq!(recv.rank, 1);
        assert_eq!(recv.peer, Some(0));
        assert_eq!(recv.bytes, 100);
    }

    #[test]
    fn moderate_scale_all_ranks_communicate() {
        // 64 ranks, ring exchange — smoke test for the threaded launch path.
        let results = World::run(64, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let req = comm.isend(right, Tag(1), Payload::synthetic(8)).unwrap();
            let (status, _) = comm.recv(left, Tag(1)).unwrap();
            comm.wait(req).unwrap();
            status.source
        })
        .unwrap();
        assert_eq!(results.len(), 64);
        for (r, src) in results.iter().enumerate() {
            assert_eq!(*src, (r + 63) % 64);
        }
    }
}
