//! Nonblocking request handles and the per-communicator request table.

use crate::comm::{SrcSel, Status, TagSel};
use crate::message::Envelope;

/// Handle to an outstanding nonblocking operation.
///
/// Obtained from [`Comm::isend`](crate::Comm::isend) /
/// [`Comm::irecv`](crate::Comm::irecv) and resolved by the `wait*` family.
#[derive(Debug)]
pub enum Request {
    /// A completed (buffered) send. The runtime's channels buffer without
    /// bound, so standard-mode sends complete locally at post time — the
    /// request only carries the status for `wait` to report.
    Send(Status),
    /// A pending receive, indexed into the communicator's request table.
    Recv(RecvHandle),
}

/// Opaque index of a posted receive in the request table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvHandle(pub(crate) usize);

/// A posted, not-yet-matched receive.
#[derive(Debug)]
pub(crate) struct PendingRecv {
    pub src: SrcSel,
    pub tag: TagSel,
    /// Filled when a matching envelope is delivered.
    pub matched: Option<Envelope>,
    /// Posting order, used for MPI-conforming match priority.
    pub seq: u64,
}

/// Table of posted receives for one communicator.
///
/// Slots are reused after completion; posting order is tracked with a
/// monotonically increasing sequence number so that matching respects MPI's
/// non-overtaking rule between identical (source, tag) pairs.
#[derive(Debug, Default)]
pub(crate) struct RequestTable {
    slots: Vec<Option<PendingRecv>>,
    free: Vec<usize>,
    next_seq: u64,
}

impl RequestTable {
    /// Posts a new pending receive, returning its handle.
    pub fn post(&mut self, src: SrcSel, tag: TagSel) -> RecvHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pending = PendingRecv {
            src,
            tag,
            matched: None,
            seq,
        };
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx].is_none());
            self.slots[idx] = Some(pending);
            RecvHandle(idx)
        } else {
            self.slots.push(Some(pending));
            RecvHandle(self.slots.len() - 1)
        }
    }

    /// Attempts to match an incoming envelope against posted receives.
    ///
    /// Chooses the *earliest-posted* unmatched receive whose selectors accept
    /// the envelope. Returns `true` if the envelope was consumed.
    pub fn try_match(&mut self, env: &Envelope) -> bool {
        let mut best: Option<(u64, usize)> = None;
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Some(p) = slot {
                if p.matched.is_none()
                    && p.src.accepts(env.src)
                    && p.tag.accepts(env.tag)
                    && best.is_none_or(|(seq, _)| p.seq < seq)
                {
                    best = Some((p.seq, idx));
                }
            }
        }
        if let Some((_, idx)) = best {
            self.slots[idx]
                .as_mut()
                .expect("matched slot occupied")
                .matched = Some(env.clone());
            true
        } else {
            false
        }
    }

    /// True if the handle's receive has been matched.
    pub fn is_complete(&self, h: RecvHandle) -> bool {
        self.slots
            .get(h.0)
            .and_then(|s| s.as_ref())
            .is_some_and(|p| p.matched.is_some())
    }

    /// Takes the matched envelope for a completed receive and frees the slot.
    ///
    /// Returns `None` if the receive is incomplete or the handle is stale.
    pub fn complete(&mut self, h: RecvHandle) -> Option<Envelope> {
        let slot = self.slots.get_mut(h.0)?;
        let done = slot.as_ref().is_some_and(|p| p.matched.is_some());
        if !done {
            return None;
        }
        let pending = slot.take().expect("checked occupied");
        self.free.push(h.0);
        pending.matched
    }

    /// Selectors of a still-pending receive (for timeout diagnostics).
    pub fn describe(&self, h: RecvHandle) -> Option<(SrcSel, TagSel)> {
        self.slots
            .get(h.0)
            .and_then(|s| s.as_ref())
            .map(|p| (p.src, p.tag))
    }

    /// Number of posted-but-uncompleted receives.
    pub fn outstanding(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use crate::Tag;

    fn env(src: usize, tag: u32) -> Envelope {
        Envelope::new(src, Tag(tag), Payload::synthetic(4))
    }

    #[test]
    fn post_match_complete_cycle() {
        let mut t = RequestTable::default();
        let h = t.post(SrcSel::Rank(2), TagSel::Tag(Tag(7)));
        assert!(!t.is_complete(h));
        assert!(!t.try_match(&env(1, 7)), "wrong source must not match");
        assert!(!t.try_match(&env(2, 8)), "wrong tag must not match");
        assert!(t.try_match(&env(2, 7)));
        assert!(t.is_complete(h));
        let e = t.complete(h).unwrap();
        assert_eq!(e.src, 2);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn match_priority_is_posting_order() {
        let mut t = RequestTable::default();
        let h1 = t.post(SrcSel::Any, TagSel::Any);
        let h2 = t.post(SrcSel::Any, TagSel::Any);
        assert!(t.try_match(&env(0, 1)));
        assert!(t.is_complete(h1), "earliest-posted receive matches first");
        assert!(!t.is_complete(h2));
        assert!(t.try_match(&env(0, 2)));
        assert!(t.is_complete(h2));
    }

    #[test]
    fn slot_reuse_does_not_confuse_handles() {
        let mut t = RequestTable::default();
        let h1 = t.post(SrcSel::Rank(0), TagSel::Tag(Tag(1)));
        assert!(t.try_match(&env(0, 1)));
        assert!(t.complete(h1).is_some());
        // Reuses slot 0 with a *later* sequence number.
        let h2 = t.post(SrcSel::Rank(0), TagSel::Tag(Tag(2)));
        assert_eq!(h1.0, h2.0, "slot is reused");
        assert!(!t.is_complete(h2));
        assert!(t.complete(h2).is_none(), "incomplete receive yields None");
    }

    #[test]
    fn any_source_any_tag() {
        let mut t = RequestTable::default();
        let h = t.post(SrcSel::Any, TagSel::Any);
        assert!(t.try_match(&env(5, 99)));
        let e = t.complete(h).unwrap();
        assert_eq!(e.src, 5);
        assert_eq!(e.tag, Tag(99));
    }

    #[test]
    fn describe_reports_selectors() {
        let mut t = RequestTable::default();
        let h = t.post(SrcSel::Rank(3), TagSel::Any);
        let (s, g) = t.describe(h).unwrap();
        assert_eq!(s, SrcSel::Rank(3));
        assert_eq!(g, TagSel::Any);
    }
}
