//! Cheaply cloneable immutable byte buffers.
//!
//! A minimal stand-in for the `bytes` crate's `Bytes`: an `Arc<[u8]>`, so a
//! payload forwarded through a reduction tree or fanned out by a broadcast
//! clones a pointer, not the buffer.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes(Arc::from(s))
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes(Arc::from(&a[..]))
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_forms_agree() {
        let v = Bytes::from(vec![1u8, 2, 3]);
        let s = Bytes::from(&[1u8, 2, 3][..]);
        let a = Bytes::from([1u8, 2, 3]);
        assert_eq!(v, s);
        assert_eq!(v, a);
        assert_eq!(v.len(), 3);
        assert_eq!(&v[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn empty_default() {
        assert!(Bytes::default().is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn slice_ops_via_deref() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(b.chunks_exact(4).count(), 2);
        assert_eq!(b.iter().sum::<u8>(), 36);
    }
}
