//! Process groups for sub-communicator collectives.
//!
//! GTC in the paper performs gathers *within toroidal planes*, i.e. over a
//! subset of ranks. Rather than a full communicator-split machinery, the
//! collectives here accept a [`Group`]: an ordered list of world ranks. All
//! members must call the collective with an identical group for it to
//! complete.

use crate::error::{MpiError, Result};
use crate::Rank;

/// An ordered set of world ranks participating in a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<Rank>,
}

impl Group {
    /// The group of all ranks `0..size`.
    pub fn world(size: usize) -> Self {
        Group {
            members: (0..size).collect(),
        }
    }

    /// A group from an explicit member list.
    ///
    /// Members must be distinct; they are kept in the given order (the order
    /// defines group-local indices, like MPI group ranks).
    pub fn new(members: Vec<Rank>) -> Result<Self> {
        if members.is_empty() {
            return Err(MpiError::InvalidGroup("empty group".into()));
        }
        let mut seen = vec![];
        for &m in &members {
            if seen.contains(&m) {
                return Err(MpiError::InvalidGroup(format!("duplicate member {m}")));
            }
            seen.push(m);
        }
        Ok(Group { members })
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the group has a single member.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members in group order.
    #[inline]
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// Group-local index of a world rank.
    pub fn index_of(&self, rank: Rank) -> Result<usize> {
        self.members
            .iter()
            .position(|&m| m == rank)
            .ok_or(MpiError::NotInGroup { rank })
    }

    /// World rank at a group-local index.
    pub fn rank_at(&self, index: usize) -> Result<Rank> {
        self.members
            .get(index)
            .copied()
            .ok_or_else(|| MpiError::InvalidGroup(format!("index {index} out of bounds")))
    }

    /// True if `rank` is a member.
    pub fn contains(&self, rank: Rank) -> bool {
        self.members.contains(&rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group_is_dense() {
        let g = Group::world(4);
        assert_eq!(g.members(), &[0, 1, 2, 3]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.index_of(2).unwrap(), 2);
    }

    #[test]
    fn custom_group_preserves_order() {
        let g = Group::new(vec![7, 3, 11]).unwrap();
        assert_eq!(g.index_of(3).unwrap(), 1);
        assert_eq!(g.rank_at(2).unwrap(), 11);
        assert!(g.contains(7));
        assert!(!g.contains(0));
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(Group::new(vec![]).is_err());
        assert!(Group::new(vec![1, 2, 1]).is_err());
    }

    #[test]
    fn non_member_lookup_errors() {
        let g = Group::new(vec![0, 2]).unwrap();
        assert!(matches!(
            g.index_of(1),
            Err(MpiError::NotInGroup { rank: 1 })
        ));
        assert!(g.rank_at(5).is_err());
    }
}
