//! Message payloads, envelopes, and reduction operators.

use crate::bytes::Bytes;
use crate::{Rank, Tag};

/// The body of a message.
///
/// Profiling the communication *topology* of an application requires sizes
/// and partners, not contents, so the runtime supports a size-only form used
/// by the application kernels for cheap large-scale runs alongside a real
/// data form used wherever correctness of the transported bytes matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A message of the given length whose contents are immaterial.
    Synthetic(usize),
    /// A message carrying real bytes (cheaply cloneable).
    Data(Bytes),
}

impl Payload {
    /// A size-only payload of `len` bytes.
    #[inline]
    pub fn synthetic(len: usize) -> Self {
        Payload::Synthetic(len)
    }

    /// A payload carrying the given bytes.
    #[inline]
    pub fn data(bytes: impl Into<Bytes>) -> Self {
        Payload::Data(bytes.into())
    }

    /// A payload carrying `values` encoded as little-endian `f64`s.
    pub fn from_f64s(values: &[f64]) -> Self {
        let mut buf = Vec::with_capacity(values.len() * 8);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Payload::Data(Bytes::from(buf))
    }

    /// Decodes the payload as little-endian `f64`s.
    ///
    /// Returns `None` for synthetic payloads or lengths that are not a
    /// multiple of 8.
    pub fn to_f64s(&self) -> Option<Vec<f64>> {
        match self {
            Payload::Synthetic(_) => None,
            Payload::Data(b) => {
                if b.len() % 8 != 0 {
                    return None;
                }
                Some(
                    b.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
                        .collect(),
                )
            }
        }
    }

    /// The message size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Payload::Synthetic(n) => *n,
            Payload::Data(b) => b.len(),
        }
    }

    /// True if the message carries zero bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this payload carries real data.
    #[inline]
    pub fn is_data(&self) -> bool {
        matches!(self, Payload::Data(_))
    }
}

/// Elementwise reduction operators over `f64` lanes, mirroring the MPI
/// predefined operations the studied applications use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Elementwise product.
    Prod,
}

impl ReduceOp {
    /// Applies the operator to a pair of lanes.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Prod => a * b,
        }
    }

    /// Combines two payloads under this operator.
    ///
    /// * Two synthetic payloads of equal length combine to a synthetic
    ///   payload of that length (sizes flow through the reduction tree just
    ///   as data would).
    /// * Two data payloads are interpreted as `f64` lanes and combined
    ///   elementwise.
    ///
    /// Mixing forms or mismatching lengths is a collective-argument error.
    pub fn combine(self, a: &Payload, b: &Payload) -> crate::Result<Payload> {
        use crate::MpiError;
        match (a, b) {
            (Payload::Synthetic(x), Payload::Synthetic(y)) => {
                if x != y {
                    return Err(MpiError::CollectiveMismatch(format!(
                        "reduce payload lengths differ: {x} vs {y}"
                    )));
                }
                Ok(Payload::Synthetic(*x))
            }
            (Payload::Data(_), Payload::Data(_)) => {
                let (xa, xb) = (a.to_f64s(), b.to_f64s());
                match (xa, xb) {
                    (Some(va), Some(vb)) if va.len() == vb.len() => {
                        let out: Vec<f64> = va
                            .iter()
                            .zip(&vb)
                            .map(|(&x, &y)| self.apply(x, y))
                            .collect();
                        Ok(Payload::from_f64s(&out))
                    }
                    _ => Err(MpiError::CollectiveMismatch(
                        "reduce data payloads must be equal-length f64 vectors".into(),
                    )),
                }
            }
            _ => Err(MpiError::CollectiveMismatch(
                "cannot mix synthetic and data payloads in a reduction".into(),
            )),
        }
    }
}

/// A message in flight: payload plus routing metadata.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Message body.
    pub payload: Payload,
    /// Causal stamp of the originating send span, when tracing is on.
    pub stamp: Option<hfast_trace::SpanContext>,
}

impl Envelope {
    /// Creates an unstamped envelope.
    pub fn new(src: Rank, tag: Tag, payload: Payload) -> Self {
        Envelope {
            src,
            tag,
            payload,
            stamp: None,
        }
    }

    /// Creates an envelope carrying a causal stamp.
    pub fn stamped(
        src: Rank,
        tag: Tag,
        payload: Payload,
        stamp: Option<hfast_trace::SpanContext>,
    ) -> Self {
        Envelope {
            src,
            tag,
            payload,
            stamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_lengths() {
        assert_eq!(Payload::synthetic(1024).len(), 1024);
        assert_eq!(Payload::data(vec![1u8, 2, 3]).len(), 3);
        assert!(Payload::synthetic(0).is_empty());
        assert!(!Payload::synthetic(1).is_empty());
    }

    #[test]
    fn f64_roundtrip() {
        let vals = [1.5, -2.25, 0.0, 1e300];
        let p = Payload::from_f64s(&vals);
        assert_eq!(p.len(), 32);
        assert_eq!(p.to_f64s().unwrap(), vals);
    }

    #[test]
    fn synthetic_has_no_f64_view() {
        assert!(Payload::synthetic(16).to_f64s().is_none());
    }

    #[test]
    fn reduce_ops_apply() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Prod.apply(2.0, 3.0), 6.0);
    }

    #[test]
    fn combine_synthetic_preserves_len() {
        let p = ReduceOp::Sum
            .combine(&Payload::synthetic(64), &Payload::synthetic(64))
            .unwrap();
        assert_eq!(p, Payload::Synthetic(64));
    }

    #[test]
    fn combine_synthetic_mismatch_errors() {
        assert!(ReduceOp::Sum
            .combine(&Payload::synthetic(64), &Payload::synthetic(32))
            .is_err());
    }

    #[test]
    fn combine_data_elementwise() {
        let a = Payload::from_f64s(&[1.0, 5.0]);
        let b = Payload::from_f64s(&[3.0, 2.0]);
        let sum = ReduceOp::Sum.combine(&a, &b).unwrap();
        assert_eq!(sum.to_f64s().unwrap(), vec![4.0, 7.0]);
        let max = ReduceOp::Max.combine(&a, &b).unwrap();
        assert_eq!(max.to_f64s().unwrap(), vec![3.0, 5.0]);
    }

    #[test]
    fn combine_mixed_forms_errors() {
        let a = Payload::from_f64s(&[1.0]);
        let b = Payload::synthetic(8);
        assert!(ReduceOp::Sum.combine(&a, &b).is_err());
    }
}
