//! Property-based tests for the message-passing runtime: payload codecs,
//! reduction semantics, and randomized communication schedules.

use hfast_mpi::{Group, Payload, ReduceOp, Tag, World};
use hfast_par::{forall, Rng64};

fn f64s(rng: &mut Rng64, lo: usize, hi: usize, span: f64) -> Vec<f64> {
    (0..rng.range(lo, hi))
        .map(|_| (rng.f64() * 2.0 - 1.0) * span)
        .collect()
}

#[test]
fn f64_payload_roundtrip() {
    forall("f64_payload_roundtrip", 48, |rng| {
        let values = f64s(rng, 0, 64, 1e12);
        let p = Payload::from_f64s(&values);
        assert_eq!(p.len(), values.len() * 8);
        assert_eq!(p.to_f64s().unwrap(), values);
    });
}

#[test]
fn reduce_combine_matches_scalar_fold() {
    forall("reduce_combine_matches_scalar_fold", 48, |rng| {
        let lanes = rng.range(1, 16);
        let a: Vec<f64> = (0..lanes).map(|_| (rng.f64() * 2.0 - 1.0) * 1e6).collect();
        let b: Vec<f64> = (0..lanes).map(|_| (rng.f64() * 2.0 - 1.0) * 1e6).collect();
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
            let combined = op
                .combine(&Payload::from_f64s(&a), &Payload::from_f64s(&b))
                .unwrap()
                .to_f64s()
                .unwrap();
            for ((&x, &y), &z) in a.iter().zip(&b).zip(&combined) {
                assert_eq!(op.apply(x, y), z);
            }
        }
    });
}

#[test]
fn allreduce_agrees_with_local_fold() {
    forall("allreduce_agrees_with_local_fold", 24, |rng| {
        let size = rng.range(2, 9);
        let lane_count = rng.range(1, 5);
        let results = World::run(size, move |comm| {
            let mine: Vec<f64> = (0..lane_count)
                .map(|l| (comm.rank() * 31 + l * 7) as f64)
                .collect();
            comm.allreduce(Payload::from_f64s(&mine), ReduceOp::Sum)
                .unwrap()
                .to_f64s()
                .unwrap()
        })
        .unwrap();
        let expected: Vec<f64> = (0..lane_count)
            .map(|l| (0..size).map(|r| (r * 31 + l * 7) as f64).sum())
            .collect();
        for r in results {
            assert_eq!(&r, &expected);
        }
    });
}

#[test]
fn random_exchange_schedule_delivers_everything() {
    forall("random_exchange_schedule_delivers_everything", 24, |rng| {
        let size = rng.range(2, 8);
        // A random schedule, filtered to valid, non-self pairs.
        let sends: Vec<(usize, usize, usize)> = (0..rng.range(1, 24))
            .map(|_| (rng.range(0, 8), rng.range(0, 8), rng.range(1, 4096)))
            .filter(|&(s, d, _)| s < size && d < size && s != d)
            .collect();
        let sends2 = sends.clone();
        let results = World::run(size, move |comm| {
            let me = comm.rank();
            // Post receives for everything addressed to me, in order.
            let mut reqs = vec![];
            for &(s, d, bytes) in &sends2 {
                if d == me {
                    reqs.push((
                        comm.irecv(
                            hfast_mpi::SrcSel::Rank(s),
                            hfast_mpi::TagSel::Tag(Tag(9)),
                            bytes,
                        )
                        .unwrap(),
                        bytes,
                    ));
                }
            }
            for &(s, d, bytes) in &sends2 {
                if s == me {
                    comm.send(d, Tag(9), Payload::synthetic(bytes)).unwrap();
                }
            }
            let mut received = 0usize;
            for (req, _expected) in reqs {
                let (status, _) = comm.wait(req).unwrap();
                received += status.bytes;
            }
            received
        })
        .unwrap();
        let expected_per_rank: Vec<usize> = (0..size)
            .map(|r| {
                sends
                    .iter()
                    .filter(|&&(_, d, _)| d == r)
                    .map(|&(_, _, b)| b)
                    .sum()
            })
            .collect();
        assert_eq!(results, expected_per_rank);
    });
}

#[test]
fn gather_preserves_group_order() {
    forall("gather_preserves_group_order", 24, |rng| {
        let mut members: Vec<usize> = (0..rng.range(2, 6)).map(|_| rng.range(0, 10)).collect();
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 {
            members = vec![0, 9];
        }
        let members2 = members.clone();
        let results = World::run(10, move |comm| {
            if !members2.contains(&comm.rank()) {
                return None;
            }
            let group = Group::new(members2.clone()).unwrap();
            let root = members2[0];
            comm.gather_in(&group, root, Payload::from_f64s(&[comm.rank() as f64]))
                .unwrap()
        })
        .unwrap();
        let at_root = results[members[0]].as_ref().unwrap();
        for (i, payload) in at_root.iter().enumerate() {
            assert_eq!(payload.to_f64s().unwrap()[0] as usize, members[i]);
        }
    });
}

#[test]
fn alltoall_is_a_transpose() {
    forall("alltoall_is_a_transpose", 12, |rng| {
        let size = rng.range(2, 8);
        let results = World::run(size, move |comm| {
            let payloads: Vec<Payload> = (0..comm.size())
                .map(|j| Payload::from_f64s(&[(comm.rank() * 100 + j) as f64]))
                .collect();
            comm.alltoall(payloads).unwrap()
        })
        .unwrap();
        for (i, blocks) in results.iter().enumerate() {
            for (j, b) in blocks.iter().enumerate() {
                assert_eq!(b.to_f64s().unwrap()[0] as usize, j * 100 + i);
            }
        }
    });
}
