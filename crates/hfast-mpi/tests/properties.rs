//! Property-based tests for the message-passing runtime: payload codecs,
//! reduction semantics, and randomized communication schedules.

use std::collections::HashSet;
use std::sync::Arc;

use hfast_mpi::{Group, Payload, ReduceOp, Tag, World, WorldConfig};
use hfast_par::{forall, Rng64};
use hfast_trace::{export, validate, TraceRecorder};

fn f64s(rng: &mut Rng64, lo: usize, hi: usize, span: f64) -> Vec<f64> {
    (0..rng.range(lo, hi))
        .map(|_| (rng.f64() * 2.0 - 1.0) * span)
        .collect()
}

#[test]
fn f64_payload_roundtrip() {
    forall("f64_payload_roundtrip", 48, |rng| {
        let values = f64s(rng, 0, 64, 1e12);
        let p = Payload::from_f64s(&values);
        assert_eq!(p.len(), values.len() * 8);
        assert_eq!(p.to_f64s().unwrap(), values);
    });
}

#[test]
fn reduce_combine_matches_scalar_fold() {
    forall("reduce_combine_matches_scalar_fold", 48, |rng| {
        let lanes = rng.range(1, 16);
        let a: Vec<f64> = (0..lanes).map(|_| (rng.f64() * 2.0 - 1.0) * 1e6).collect();
        let b: Vec<f64> = (0..lanes).map(|_| (rng.f64() * 2.0 - 1.0) * 1e6).collect();
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod] {
            let combined = op
                .combine(&Payload::from_f64s(&a), &Payload::from_f64s(&b))
                .unwrap()
                .to_f64s()
                .unwrap();
            for ((&x, &y), &z) in a.iter().zip(&b).zip(&combined) {
                assert_eq!(op.apply(x, y), z);
            }
        }
    });
}

#[test]
fn allreduce_agrees_with_local_fold() {
    forall("allreduce_agrees_with_local_fold", 24, |rng| {
        let size = rng.range(2, 9);
        let lane_count = rng.range(1, 5);
        let results = World::run(size, move |comm| {
            let mine: Vec<f64> = (0..lane_count)
                .map(|l| (comm.rank() * 31 + l * 7) as f64)
                .collect();
            comm.allreduce(Payload::from_f64s(&mine), ReduceOp::Sum)
                .unwrap()
                .to_f64s()
                .unwrap()
        })
        .unwrap();
        let expected: Vec<f64> = (0..lane_count)
            .map(|l| (0..size).map(|r| (r * 31 + l * 7) as f64).sum())
            .collect();
        for r in results {
            assert_eq!(&r, &expected);
        }
    });
}

#[test]
fn random_exchange_schedule_delivers_everything() {
    forall("random_exchange_schedule_delivers_everything", 24, |rng| {
        let size = rng.range(2, 8);
        // A random schedule, filtered to valid, non-self pairs.
        let sends: Vec<(usize, usize, usize)> = (0..rng.range(1, 24))
            .map(|_| (rng.range(0, 8), rng.range(0, 8), rng.range(1, 4096)))
            .filter(|&(s, d, _)| s < size && d < size && s != d)
            .collect();
        let sends2 = sends.clone();
        let results = World::run(size, move |comm| {
            let me = comm.rank();
            // Post receives for everything addressed to me, in order.
            let mut reqs = vec![];
            for &(s, d, bytes) in &sends2 {
                if d == me {
                    reqs.push((
                        comm.irecv(
                            hfast_mpi::SrcSel::Rank(s),
                            hfast_mpi::TagSel::Tag(Tag(9)),
                            bytes,
                        )
                        .unwrap(),
                        bytes,
                    ));
                }
            }
            for &(s, d, bytes) in &sends2 {
                if s == me {
                    comm.send(d, Tag(9), Payload::synthetic(bytes)).unwrap();
                }
            }
            let mut received = 0usize;
            for (req, _expected) in reqs {
                let (status, _) = comm.wait(req).unwrap();
                received += status.bytes;
            }
            received
        })
        .unwrap();
        let expected_per_rank: Vec<usize> = (0..size)
            .map(|r| {
                sends
                    .iter()
                    .filter(|&&(_, d, _)| d == r)
                    .map(|&(_, _, b)| b)
                    .sum()
            })
            .collect();
        assert_eq!(results, expected_per_rank);
    });
}

#[test]
fn gather_preserves_group_order() {
    forall("gather_preserves_group_order", 24, |rng| {
        let mut members: Vec<usize> = (0..rng.range(2, 6)).map(|_| rng.range(0, 10)).collect();
        members.sort_unstable();
        members.dedup();
        if members.len() < 2 {
            members = vec![0, 9];
        }
        let members2 = members.clone();
        let results = World::run(10, move |comm| {
            if !members2.contains(&comm.rank()) {
                return None;
            }
            let group = Group::new(members2.clone()).unwrap();
            let root = members2[0];
            comm.gather_in(&group, root, Payload::from_f64s(&[comm.rank() as f64]))
                .unwrap()
        })
        .unwrap();
        let at_root = results[members[0]].as_ref().unwrap();
        for (i, payload) in at_root.iter().enumerate() {
            assert_eq!(payload.to_f64s().unwrap()[0] as usize, members[i]);
        }
    });
}

#[test]
fn alltoall_is_a_transpose() {
    forall("alltoall_is_a_transpose", 12, |rng| {
        let size = rng.range(2, 8);
        let results = World::run(size, move |comm| {
            let payloads: Vec<Payload> = (0..comm.size())
                .map(|j| Payload::from_f64s(&[(comm.rank() * 100 + j) as f64]))
                .collect();
            comm.alltoall(payloads).unwrap()
        })
        .unwrap();
        for (i, blocks) in results.iter().enumerate() {
            for (j, b) in blocks.iter().enumerate() {
                assert_eq!(b.to_f64s().unwrap()[0] as usize, j * 100 + i);
            }
        }
    });
}

/// A random valid point-to-point schedule: (src, dst, bytes) triples with
/// src != dst, all inside a `size`-rank world.
fn random_schedule(rng: &mut Rng64, size: usize) -> Vec<(usize, usize, usize)> {
    (0..rng.range(1, 24))
        .map(|_| (rng.range(0, 8), rng.range(0, 8), rng.range(1, 4096)))
        .filter(|&(s, d, _)| s < size && d < size && s != d)
        .collect()
}

/// The random-exchange workload: post receives for everything addressed
/// to this rank, send everything this rank originates, wait, and return
/// total bytes received.
fn exchange(comm: &mut hfast_mpi::Comm, sends: &[(usize, usize, usize)]) -> usize {
    let me = comm.rank();
    let mut reqs = vec![];
    for &(s, d, bytes) in sends {
        if d == me {
            reqs.push(
                comm.irecv(
                    hfast_mpi::SrcSel::Rank(s),
                    hfast_mpi::TagSel::Tag(Tag(3)),
                    bytes,
                )
                .unwrap(),
            );
        }
    }
    for &(s, d, bytes) in sends {
        if s == me {
            comm.send(d, Tag(3), Payload::synthetic(bytes)).unwrap();
        }
    }
    reqs.into_iter()
        .map(|req| comm.wait(req).unwrap().0.bytes)
        .sum()
}

#[test]
fn every_recv_span_links_to_its_send() {
    // Satellite: the SpanContext stamped into each message envelope must
    // make every recv-family span a child of the originating send span —
    // no orphans, on any random point-to-point schedule.
    forall("every_recv_span_links_to_its_send", 16, |rng| {
        let size = rng.range(2, 8);
        let sends = random_schedule(rng, size);
        if sends.is_empty() {
            return;
        }
        let rec = Arc::new(TraceRecorder::new());
        let sends2 = sends.clone();
        World::run_with(
            WorldConfig::new(size).trace(Arc::clone(&rec)),
            move |comm| exchange(comm, &sends2),
        )
        .unwrap();

        let spans = rec.snapshot();
        let send_ids: HashSet<u64> = spans
            .iter()
            .filter(|s| s.name == "send")
            .map(|s| s.span_id)
            .collect();
        assert_eq!(
            send_ids.len(),
            sends.len(),
            "one span per send, all distinct"
        );
        let mut recv_family = 0usize;
        for s in &spans {
            if s.name == "recv" || s.name == "wait" {
                recv_family += 1;
                assert_ne!(s.parent_id, 0, "{} span has no parent", s.name);
                assert!(
                    send_ids.contains(&s.parent_id),
                    "{} span parent {:#x} is not a recorded send",
                    s.name,
                    s.parent_id
                );
            }
        }
        assert_eq!(recv_family, sends.len(), "one recv-family span per message");

        // The exported document agrees with the raw-span check.
        let stats = validate(&export(&spans)).expect("valid trace-event JSON");
        assert_eq!(stats.orphan_recvs, 0);
        assert_eq!(stats.linked_recvs, recv_family);
        // One track per rank that actually communicated (a silent rank
        // records no spans and so gets no track).
        let active: HashSet<usize> = sends.iter().flat_map(|&(s, d, _)| [s, d]).collect();
        assert_eq!(stats.rank_tracks, active.len());
    });
}

#[test]
fn tracing_never_changes_world_results() {
    // Satellite: an attached TraceRecorder is invisible to the program —
    // the same workload returns identical results with tracing on or off.
    forall("tracing_never_changes_world_results", 12, |rng| {
        let size = rng.range(2, 8);
        let sends = random_schedule(rng, size);
        let sends_plain = sends.clone();
        let plain = World::run(size, move |comm| exchange(comm, &sends_plain)).unwrap();
        let rec = Arc::new(TraceRecorder::new());
        let sends_traced = sends.clone();
        let traced = World::run_with(
            WorldConfig::new(size).trace(Arc::clone(&rec)),
            move |comm| exchange(comm, &sends_traced),
        )
        .unwrap();
        assert_eq!(plain, traced, "tracing changed the program's results");
        assert!(
            rec.len() >= 2 * sends.len(),
            "a send and a recv-family span per message when traced"
        );
    });
}
