//! Event-loop rewrite anchors: golden output digests frozen on the
//! pre-rewrite (`BinaryHeap`) engine, plus thread-count and warm-cache
//! equivalence properties.
//!
//! The golden constants below were produced by the heap-based engine
//! before the calendar-queue rewrite and must never change: any diff in
//! any digest means the rewrite altered simulated results, not just
//! performance. The property tests then pin the new degrees of freedom —
//! `HFAST_THREADS` and route-cache reuse — to the same byte-for-byte
//! output.

use hfast_core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast_netsim::{
    traffic, transit_links, CreditConfig, EngineObs, Fabric, FatTreeFabric, FaultPlan, Flow,
    HfastFabric, PathCache, RetryPolicy, SimOutput, Simulation, TorusFabric,
};
use hfast_par::{forall, Rng64};
use hfast_topology::CommGraph;

/// FNV-1a over every stats field and per-flow record in a [`SimOutput`]:
/// two runs with equal digests produced byte-identical results.
fn digest(out: &SimOutput) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    let s = &out.stats;
    for v in [
        s.completed as u64,
        s.unrouted as u64,
        s.abandoned as u64,
        s.total_retries,
        s.delivered_bytes,
        s.makespan_ns,
        s.p50_latency_ns,
        s.p95_latency_ns,
        s.max_latency_ns,
        s.avg_hops.to_bits(),
        s.max_link_utilization.to_bits(),
        s.throughput.to_bits(),
    ] {
        mix(v);
    }
    if let Some(records) = &out.records {
        for r in records {
            mix(r.flow as u64);
            mix(r.start_ns);
            mix(r.end_ns.map_or(u64::MAX, |e| e));
            mix(r.hops as u64);
            mix(u64::from(r.retries));
            mix(u64::from(r.abandoned));
        }
    }
    mix(out.reprovisions.len() as u64);
    for step in &out.reprovisions {
        mix(format!("{step:?}").len() as u64);
    }
    h
}

fn seeded_flows(seed: u64, n_nodes: usize, count: usize) -> Vec<Flow> {
    let mut rng = Rng64::new(seed);
    (0..count)
        .map(|_| Flow {
            src: rng.range(0, n_nodes),
            dst: rng.range(0, n_nodes),
            bytes: rng.range_u64(1, 1 << 18),
            start_ns: rng.range_u64(0, 500_000),
        })
        .collect()
}

fn hfast_graph() -> (HfastFabric, Vec<Flow>) {
    let mut g = CommGraph::new(16);
    let mut rng = Rng64::new(99);
    for _ in 0..60 {
        let a = rng.range(0, 16);
        let b = rng.range(0, 16);
        if a != b {
            g.add_message(a, b, rng.range_u64(2048, 1 << 20));
        }
    }
    let fabric = HfastFabric::new(PaperLinear.provision(&g, ProvisionConfig::default()));
    let flows = traffic::flows_from_graph(&g, 0);
    (fabric, flows)
}

#[test]
fn golden_torus_seeded() {
    let torus = TorusFabric::new((4, 4, 2)).unwrap();
    let fs = seeded_flows(7, 32, 300);
    let out = Simulation::new(&torus).detailed().run(&fs);
    assert_eq!(digest(&out), 0xabbcd0e7dc7f40df);
}

#[test]
fn golden_fattree_alltoall() {
    let ft = FatTreeFabric::new(32, 8).unwrap();
    let fs = traffic::alltoall(32, 4096);
    let out = Simulation::new(&ft).detailed().run(&fs);
    assert_eq!(digest(&out), 0x77fc692a8b8f1a26);
}

#[test]
fn golden_hfast_graph() {
    let (fabric, flows) = hfast_graph();
    let out = Simulation::new(&fabric).detailed().run(&flows);
    assert_eq!(digest(&out), 0x15f09c765c0e994c);
}

#[test]
fn golden_torus_faulted() {
    let torus = TorusFabric::new((4, 4, 1)).unwrap();
    let fs = seeded_flows(13, 16, 200);
    let eligible = transit_links(&torus, &fs);
    let plan = FaultPlan::builder()
        .random_link_failures(0xFEED, 4, &eligible, (0, 400_000), Some(150_000))
        .build(&torus)
        .unwrap();
    let out = Simulation::new(&torus)
        .with_faults(&plan)
        .with_retry(RetryPolicy::default())
        .detailed()
        .run(&fs);
    assert_eq!(digest(&out), 0xe3be6145e07f0fef);
}

#[test]
fn golden_hfast_reprovision() {
    let (fabric, flows) = hfast_graph();
    let eligible = transit_links(&fabric, &flows);
    let plan = FaultPlan::builder()
        .random_link_failures(0xBEEF, 3, &eligible, (0, 200_000), None)
        .build(&fabric)
        .unwrap();
    let out = Simulation::new(&fabric)
        .with_faults(&plan)
        .with_reprovision(100_000)
        .detailed()
        .run(&flows);
    // Golden updated when [`ReconfigStep`] gained `strategy` and
    // `edges_touched`: the digest folds in each step's Debug length, so
    // the wider struct shifts it while flow records stay byte-identical
    // (`golden_hfast_graph` pins those separately).
    assert_eq!(digest(&out), 0x2342ee1d8b9b75c8);
}

/// The conservative-parallel executor must be indistinguishable from the
/// sequential loop on arbitrary fabrics and traffic, for every thread
/// count.
#[test]
fn threads_equivalent_on_random_scenarios() {
    forall("eventloop_threads_equivalent", 24, |rng| {
        let nodes = rng.range(4, 48);
        let fabric: Box<dyn Fabric> = if rng.bool(0.5) {
            Box::new(TorusFabric::new((nodes, rng.range(1, 4), 1)).unwrap())
        } else {
            Box::new(FatTreeFabric::new(nodes.next_power_of_two(), 8).unwrap())
        };
        let n = fabric.nodes();
        let flows = seeded_flows(rng.range_u64(0, u64::MAX), n, rng.range(1, 400));
        let d1 = digest(
            &Simulation::new(&*fabric)
                .detailed()
                .with_threads(1)
                .run(&flows),
        );
        for threads in [2, 8] {
            let dt = digest(
                &Simulation::new(&*fabric)
                    .detailed()
                    .with_threads(threads)
                    .run(&flows),
            );
            assert_eq!(d1, dt, "threads={threads} diverged from sequential");
        }
    });
}

/// Fault runs are defined to execute sequentially regardless of the
/// requested thread count: `with_threads` must be a no-op on them.
#[test]
fn threads_are_inert_on_fault_runs() {
    let torus = TorusFabric::new((4, 4, 1)).unwrap();
    let fs = seeded_flows(21, 16, 150);
    let eligible = transit_links(&torus, &fs);
    let plan = FaultPlan::builder()
        .random_link_failures(0xACE, 3, &eligible, (0, 300_000), Some(100_000))
        .build(&torus)
        .unwrap();
    let base = digest(
        &Simulation::new(&torus)
            .with_faults(&plan)
            .with_retry(RetryPolicy::default())
            .detailed()
            .run(&fs),
    );
    for threads in [2, 8] {
        let d = digest(
            &Simulation::new(&torus)
                .with_faults(&plan)
                .with_retry(RetryPolicy::default())
                .with_threads(threads)
                .detailed()
                .run(&fs),
        );
        assert_eq!(base, d);
    }
}

/// `CongestionMode::Ideal` is a *structural* no-op: an explicit
/// `.with_congestion(CreditConfig::default())` routes through exactly the
/// PR-9 code paths, so every golden digest must reproduce bit-for-bit —
/// including under different thread counts and with faults attached.
#[test]
fn ideal_congestion_mode_reproduces_the_goldens() {
    let torus = TorusFabric::new((4, 4, 2)).unwrap();
    let fs = seeded_flows(7, 32, 300);
    for threads in [1, 8] {
        let out = Simulation::new(&torus)
            .with_congestion(CreditConfig::default())
            .with_threads(threads)
            .detailed()
            .run(&fs);
        assert_eq!(digest(&out), 0xabbcd0e7dc7f40df, "threads={threads}");
    }

    let ft = FatTreeFabric::new(32, 8).unwrap();
    let fs = traffic::alltoall(32, 4096);
    let out = Simulation::new(&ft)
        .with_congestion(CreditConfig::default())
        .detailed()
        .run(&fs);
    assert_eq!(digest(&out), 0x77fc692a8b8f1a26);

    let (fabric, flows) = hfast_graph();
    let out = Simulation::new(&fabric)
        .with_congestion(CreditConfig::default())
        .detailed()
        .run(&flows);
    assert_eq!(digest(&out), 0x15f09c765c0e994c);

    let torus = TorusFabric::new((4, 4, 1)).unwrap();
    let fs = seeded_flows(13, 16, 200);
    let eligible = transit_links(&torus, &fs);
    let plan = FaultPlan::builder()
        .random_link_failures(0xFEED, 4, &eligible, (0, 400_000), Some(150_000))
        .build(&torus)
        .unwrap();
    let out = Simulation::new(&torus)
        .with_congestion(CreditConfig::default())
        .with_faults(&plan)
        .with_retry(RetryPolicy::default())
        .detailed()
        .run(&fs);
    assert_eq!(digest(&out), 0xe3be6145e07f0fef, "ideal + faults");
}

/// Credit-mode runs are strictly sequential and seeded: any fabric, any
/// traffic, any buffer depth — repeated replays and every thread count
/// produce identical bytes.
#[test]
fn credit_mode_is_deterministic_on_random_scenarios() {
    forall("congestion_credit_determinism", 12, |rng| {
        let nodes = rng.range(4, 32);
        let fabric: Box<dyn Fabric> = if rng.bool(0.5) {
            Box::new(TorusFabric::new((nodes, rng.range(1, 4), 1)).unwrap())
        } else {
            Box::new(FatTreeFabric::new(nodes.next_power_of_two(), 8).unwrap())
        };
        let n = fabric.nodes();
        let flows = seeded_flows(rng.range_u64(0, u64::MAX), n, rng.range(1, 200));
        let credits = rng.range(1, 5) as u32;
        let cfg = CreditConfig::credit(credits);
        let base = digest(
            &Simulation::new(&*fabric)
                .with_congestion(cfg)
                .detailed()
                .run(&flows),
        );
        for threads in [1, 8] {
            let d = digest(
                &Simulation::new(&*fabric)
                    .with_congestion(cfg)
                    .with_threads(threads)
                    .detailed()
                    .run(&flows),
            );
            assert_eq!(base, d, "credits={credits} threads={threads}");
        }
    });
}

/// Warm cache reuse, cold routing, and instrumented runs all produce the
/// same bytes: the route cache and observability are performance and
/// visibility features, never semantic ones.
#[test]
fn warm_cache_and_obs_runs_are_byte_identical() {
    forall("eventloop_warm_cache_identity", 12, |rng| {
        let shape = (rng.range(2, 6), rng.range(2, 6), rng.range(1, 3));
        let torus = TorusFabric::new(shape).unwrap();
        let flows = seeded_flows(rng.range_u64(0, u64::MAX), torus.nodes(), rng.range(1, 300));
        let cold = digest(&Simulation::new(&torus).detailed().run(&flows));
        let mut cache = PathCache::new();
        let first = digest(
            &Simulation::new(&torus)
                .with_cache(&mut cache)
                .detailed()
                .run(&flows),
        );
        let warm = digest(
            &Simulation::new(&torus)
                .with_cache(&mut cache)
                .detailed()
                .run(&flows),
        );
        let obs = EngineObs::new();
        let instrumented = digest(
            &Simulation::new(&torus)
                .with_obs(&obs)
                .detailed()
                .run(&flows),
        );
        assert_eq!(cold, first, "cold vs first cached run");
        assert_eq!(cold, warm, "cold vs warm-cache run");
        assert_eq!(cold, instrumented, "cold vs instrumented run");
        assert!(obs.events.get() > 0 || flows.is_empty());
    });
}
