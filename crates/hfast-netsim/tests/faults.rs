//! Integration tests for the runtime fault subsystem: a seeded fault
//! replay must be bit-stable across worker thread counts (`HFAST_THREADS`)
//! and across repeated same-seed runs, and HFAST's mid-run re-provisioning
//! must actually repair failed circuits.

use std::sync::Mutex;

use hfast_core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast_netsim::engine::PathCache;
use hfast_netsim::{
    traffic, transit_links, Fabric, FatTreeFabric, FaultPlan, HfastFabric, RetryPolicy, SimOutput,
    Simulation, TorusFabric,
};
use hfast_topology::CommGraph;

/// Serializes tests that flip `HFAST_THREADS` — the variable is
/// process-global and the test harness runs tests concurrently.
static THREAD_ENV: Mutex<()> = Mutex::new(());

/// Runs `f` once per thread-count setting and asserts every output equals
/// the first (sequential) one.
fn assert_stable_across_threads<F: Fn() -> SimOutput>(label: &str, f: F) -> SimOutput {
    let _guard = THREAD_ENV.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("HFAST_THREADS").ok();
    std::env::set_var("HFAST_THREADS", "1");
    let sequential = f();
    for threads in ["2", "8"] {
        std::env::set_var("HFAST_THREADS", threads);
        let parallel = f();
        assert_eq!(
            sequential, parallel,
            "{label}: HFAST_THREADS=1 vs ={threads} diverged"
        );
    }
    match prev {
        Some(v) => std::env::set_var("HFAST_THREADS", v),
        None => std::env::remove_var("HFAST_THREADS"),
    }
    sequential
}

#[test]
fn torus_fault_replay_is_thread_count_invariant() {
    // 64 nodes and 300 flows: enough distinct pairs to push path
    // resolution over the parallel threshold, so the sweep genuinely
    // exercises the threaded path at HFAST_THREADS=8.
    let fabric = TorusFabric::new((4, 4, 4)).expect("valid shape");
    let flows = traffic::uniform_random(64, 300, 1 << 16, 1_000_000, 7);
    let eligible = transit_links(&fabric, &flows);
    assert!(eligible.len() > 64, "plenty of mid-route links to fail");
    // Twelve seeded link outages plus one router outage covering the whole
    // admission window: flows touching node 9 cannot detour around a dead
    // endpoint, so they exercise the retry/backoff machinery for certain.
    let plan = FaultPlan::builder()
        .random_link_failures(42, 12, &eligible, (0, 2_000_000), Some(500_000))
        .fail_node(0, 9)
        .recover_node(1_200_000, 9)
        .build(&fabric)
        .expect("valid plan");

    let out = assert_stable_across_threads("torus replay", || {
        Simulation::new(&fabric)
            .with_faults(&plan)
            .with_retry(RetryPolicy::default())
            .detailed()
            .run(&flows)
    });
    // Faults with recovery plus retries: everything is eventually
    // delivered (the torus reroutes, and downed links come back).
    assert_eq!(out.stats.completed + out.stats.unrouted, flows.len());
    assert!(
        out.stats.total_retries > 0,
        "a 12-link outage over live traffic must trigger retries"
    );

    // Repeated same-seed runs are bit-identical, cold or warm cache.
    let again = Simulation::new(&fabric)
        .with_faults(&plan)
        .with_retry(RetryPolicy::default())
        .detailed()
        .run(&flows);
    assert_eq!(out, again);
    let mut cache = PathCache::new();
    let warm = Simulation::new(&fabric)
        .with_faults(&plan)
        .with_retry(RetryPolicy::default())
        .with_cache(&mut cache)
        .detailed()
        .run(&flows);
    assert_eq!(out, warm);
}

#[test]
fn hfast_reprovision_repairs_failed_circuits() {
    // A dense comm graph so per-node provisioning dedicates circuits.
    let n = 24;
    let mut g = CommGraph::new(n);
    for i in 0..n {
        g.add_message(i, (i + 1) % n, 1 << 20);
        g.add_message(i, (i + 5) % n, 1 << 19);
    }
    let fabric = HfastFabric::new(PaperLinear.provision(&g, ProvisionConfig::default()));
    assert!(fabric.supports_reprovision());
    let flows = traffic::flows_from_graph(&g, 2048);

    // Fail two provisioned circuits early, with no scheduled recovery:
    // only the MEMS repatch at the next sync point can bring traffic back
    // onto dedicated circuits.
    let circuits: Vec<_> = (0..fabric.link_count())
        .filter(|&l| fabric.reprovisionable(l))
        .collect();
    assert!(circuits.len() >= 2, "provisioning dedicated circuits");
    let plan = FaultPlan::builder()
        .fail_link(10_000, circuits[0])
        .fail_link(20_000, circuits[1])
        .build(&fabric)
        .expect("valid plan");

    let out = assert_stable_across_threads("hfast repatch", || {
        Simulation::new(&fabric)
            .with_faults(&plan)
            .with_reprovision(5_000_000)
            .detailed()
            .run(&flows)
    });
    assert!(
        !out.reprovisions.is_empty(),
        "failed circuits must trigger a re-provisioning round"
    );
    let step = &out.reprovisions[0];
    assert_eq!(step.circuits_changed, 2, "both failed circuits repatched");
    assert!(
        step.coverage_after >= step.coverage_before,
        "repatching cannot lose coverage: {} -> {}",
        step.coverage_before,
        step.coverage_after
    );
    assert!(step.reconfig_time_ns > 0, "MEMS repatch pays its latency");
    // Every provisioned flow still lands: the tree absorbs traffic while
    // circuits are down, and the repatch restores them.
    assert_eq!(out.stats.completed, flows.len());
    assert_eq!(out.stats.unrouted, 0);
}

#[test]
fn fat_tree_cannot_survive_what_hfast_survives() {
    // The acceptance-criteria shape in miniature: under an identical
    // seeded schedule failing *shared* fat-tree uplinks, the single-path
    // fat tree abandons flows, while HFAST (same endpoints, circuit
    // fabric + tree fallback + repatch) delivers strictly more bytes.
    let n = 32;
    let mut g = CommGraph::new(n);
    for i in 0..n {
        g.add_message(i, (i + 9) % n, 1 << 18);
    }
    let flows = traffic::flows_from_graph(&g, 0);

    let ft = FatTreeFabric::new(n, 8).expect("valid shape");
    let ft_eligible = transit_links(&ft, &flows);
    // All failures land at t = 0: fault events sort before flow admissions
    // at equal timestamps, so every crossing flow meets a dead link.
    let ft_plan = FaultPlan::builder()
        .random_link_failures(1234, 6, &ft_eligible, (0, 0), None)
        .build(&ft)
        .expect("valid plan");
    let ft_out = Simulation::new(&ft)
        .with_faults(&ft_plan)
        .with_retry(RetryPolicy::default())
        .run(&flows);

    let hf = HfastFabric::new(PaperLinear.provision(&g, ProvisionConfig::default()));
    let hf_eligible = transit_links(&hf, &flows);
    let hf_plan = FaultPlan::builder()
        .random_link_failures(1234, 6, &hf_eligible, (0, 0), None)
        .build(&hf)
        .expect("valid plan");
    let hf_out = Simulation::new(&hf)
        .with_faults(&hf_plan)
        .with_retry(RetryPolicy::default())
        .with_reprovision(1_000_000)
        .run(&flows);

    assert!(
        ft_out.stats.abandoned > 0,
        "permanent uplink failures must strand single-path flows"
    );
    assert!(
        hf_out.stats.delivered_bytes > ft_out.stats.delivered_bytes,
        "HFAST goodput {} must beat fat-tree {}",
        hf_out.stats.delivered_bytes,
        ft_out.stats.delivered_bytes
    );
    assert_eq!(hf_out.stats.unrouted, 0, "HFAST delivers everything");
}
