//! Property-based tests for the discrete-event simulator and fabrics.

use std::collections::HashMap;

use hfast_core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast_netsim::engine::PathCache;
use hfast_netsim::{
    traffic, transit_links, EngineObs, Fabric, FatTreeFabric, FaultPlan, Flow, HfastFabric,
    RetryPolicy, SharedPathCache, Simulation, TorusFabric,
};
use hfast_obs::Val;
use hfast_par::{forall, Rng64};
use hfast_topology::CommGraph;
use hfast_trace::{export, parse, validate, TraceRecorder, Track};

fn flows(rng: &mut Rng64, n: usize, max: usize) -> Vec<Flow> {
    (0..rng.range(1, max))
        .map(|_| Flow {
            src: rng.range(0, n),
            dst: rng.range(0, n),
            bytes: rng.range_u64(1, 1 << 20),
            start_ns: rng.range_u64(0, 1_000_000),
        })
        .collect()
}

/// A random fabric drawn from the three healthy families.
fn any_fabric(rng: &mut Rng64) -> (Box<dyn Fabric>, usize) {
    match rng.range(0, 3) {
        0 => (
            Box::new(FatTreeFabric::new(24, 8).expect("valid shape")),
            24,
        ),
        1 => (
            Box::new(TorusFabric::new((3, 3, 3)).expect("valid shape")),
            27,
        ),
        _ => {
            let mut g = CommGraph::new(12);
            for _ in 0..rng.range(1, 30) {
                let a = rng.range(0, 12);
                let b = rng.range(0, 12);
                if a != b {
                    g.add_message(a, b, rng.range_u64(2048, 1 << 20));
                }
            }
            let prov = PaperLinear.provision(&g, ProvisionConfig::default());
            (Box::new(HfastFabric::new(prov)), 12)
        }
    }
}

#[test]
fn fat_tree_delivers_everything() {
    forall("fat_tree_delivers_everything", 48, |rng| {
        let fs = flows(rng, 32, 60);
        let fabric = FatTreeFabric::new(32, 8).expect("valid shape");
        let stats = Simulation::new(&fabric).run(&fs).stats;
        assert_eq!(stats.completed, fs.len());
        assert_eq!(stats.unrouted, 0);
        assert_eq!(
            stats.delivered_bytes,
            fs.iter().map(|f| f.bytes).sum::<u64>()
        );
    });
}

#[test]
fn torus_delivers_everything() {
    forall("torus_delivers_everything", 48, |rng| {
        let fs = flows(rng, 27, 60);
        let fabric = TorusFabric::new((3, 3, 3)).expect("valid shape");
        let stats = Simulation::new(&fabric).run(&fs).stats;
        assert_eq!(stats.completed, fs.len());
    });
}

#[test]
fn latency_lower_bound_holds() {
    forall("latency_lower_bound_holds", 48, |rng| {
        // No flow can beat its uncontended cut-through time:
        // sum of link latencies + one serialization on its slowest link.
        let fs = flows(rng, 32, 40);
        let fabric = FatTreeFabric::new(32, 8).expect("valid shape");
        let out = Simulation::new(&fabric).detailed().run(&fs);
        for r in out.records() {
            let f = &fs[r.flow];
            let path = fabric.path(f.src, f.dst).unwrap();
            let min_lat: u64 = path.iter().map(|&l| fabric.link(l).latency_ns).sum();
            let min_ser = path
                .iter()
                .map(|&l| fabric.link(l).serialize_ns(f.bytes))
                .max()
                .unwrap_or(0);
            let end = r.end_ns.expect("delivered");
            assert!(
                end - r.start_ns >= min_lat + min_ser,
                "flow {} beat physics: {} < {} + {}",
                r.flow,
                end - r.start_ns,
                min_lat,
                min_ser
            );
        }
    });
}

#[test]
fn simulation_is_deterministic() {
    forall("simulation_is_deterministic", 48, |rng| {
        let fs = flows(rng, 16, 50);
        let fabric = TorusFabric::new((4, 2, 2)).expect("valid shape");
        let a = Simulation::new(&fabric).run(&fs);
        let b = Simulation::new(&fabric).run(&fs);
        assert_eq!(a, b);
    });
}

#[test]
fn cached_simulation_matches_uncached() {
    // A shared PathCache — cold, then warm across repeated runs — must
    // leave the simulation results bit-identical to the cache-free path.
    forall("cached_simulation_matches_uncached", 48, |rng| {
        let fabric = TorusFabric::new((3, 3, 3)).expect("valid shape");
        let mut cache = PathCache::new();
        for _ in 0..3 {
            let fs = flows(rng, 27, 80);
            let fresh = Simulation::new(&fabric).detailed().run(&fs);
            let warm = Simulation::new(&fabric)
                .with_cache(&mut cache)
                .detailed()
                .run(&fs);
            assert_eq!(fresh, warm);
        }
        assert!(cache.len() <= 27 * 27);
    });
}

#[test]
fn snapshot_simulation_matches_fresh_and_cached() {
    // Satellite: a run reading routes from an immutable shared snapshot —
    // cold, partially warm, or fully warm — must be bit-identical to both
    // the cache-free run and the private-cache run, and must never mutate
    // the snapshot it reads.
    forall("snapshot_simulation_matches_fresh", 48, |rng| {
        let (fabric, n) = any_fabric(rng);
        let fabric = fabric.as_ref();
        let shared = SharedPathCache::new();
        for round in 0..3 {
            let fs = flows(rng, n, 80);
            if round > 0 {
                // Later rounds warm with a subset so the snapshot is only
                // partially covering and the overlay path gets exercised.
                shared.warm(fabric, &fs[..fs.len() / 2]);
            }
            let snap = shared.snapshot();
            let before = snap.len();
            let fresh = Simulation::new(fabric).detailed().run(&fs);
            let via_snap = Simulation::new(fabric)
                .with_snapshot(&snap)
                .detailed()
                .run(&fs);
            let mut cache = PathCache::new();
            let via_cache = Simulation::new(fabric)
                .with_cache(&mut cache)
                .detailed()
                .run(&fs);
            assert_eq!(fresh, via_snap, "snapshot run diverged from fresh");
            assert_eq!(fresh, via_cache, "private-cache run diverged");
            assert_eq!(snap.len(), before, "run mutated the shared snapshot");
        }
    });
}

#[test]
fn warmed_snapshot_serves_all_hits() {
    // After warm() covers a flow set, a snapshot run resolves no new
    // routes: every flow is a cache hit.
    forall("warmed_snapshot_serves_all_hits", 32, |rng| {
        let (fabric, n) = any_fabric(rng);
        let fabric = fabric.as_ref();
        let fs = flows(rng, n, 60);
        let shared = SharedPathCache::new();
        let snap = shared.warm(fabric, &fs);
        let obs = EngineObs::new();
        let out = Simulation::new(fabric)
            .with_snapshot(&snap)
            .with_obs(&obs)
            .run(&fs);
        assert_eq!(obs.cache_hits.get(), fs.len() as u64, "all hits when warm");
        assert_eq!(obs.cache_misses.get(), 0);
        assert_eq!(out.stats, Simulation::new(fabric).run(&fs).stats);
    });
}

#[test]
fn concurrent_snapshot_runs_are_identical() {
    // Many threads simulating through one snapshot concurrently all get
    // the single-threaded answer.
    forall("concurrent_snapshot_runs_are_identical", 16, |rng| {
        let fabric = TorusFabric::new((3, 3, 3)).expect("valid shape");
        let fs = flows(rng, 27, 60);
        let shared = SharedPathCache::new();
        shared.warm(&fabric, &fs[..fs.len() / 2]);
        let snap = shared.snapshot();
        let expected = Simulation::new(&fabric).detailed().run(&fs);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (snap, fabric, fs) = (&snap, &fabric, &fs);
                    scope.spawn(move || {
                        Simulation::new(fabric)
                            .with_snapshot(snap)
                            .detailed()
                            .run(fs)
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("no panic"), expected);
            }
        });
    });
}

#[test]
fn snapshot_fault_run_matches_private_cache() {
    // Under faults the snapshot is cloned into the run's own cache; the
    // replay must still be bit-identical to a fresh private-cache run.
    forall("snapshot_fault_run_matches_private", 24, |rng| {
        let fabric = TorusFabric::new((4, 4, 1)).expect("valid shape");
        let fs = flows(rng, 16, 40);
        let eligible = transit_links(&fabric, &fs);
        if eligible.is_empty() {
            return;
        }
        let seed = rng.range_u64(0, u64::MAX - 1);
        let count = rng.range(1, eligible.len().min(4) + 1);
        let plan = FaultPlan::builder()
            .random_link_failures(seed, count, &eligible, (0, 500_000), Some(200_000))
            .build(&fabric)
            .expect("valid plan");
        let shared = SharedPathCache::new();
        let snap = shared.warm(&fabric, &fs);
        let before = snap.len();
        let bare = Simulation::new(&fabric)
            .with_faults(&plan)
            .detailed()
            .run(&fs);
        let via_snap = Simulation::new(&fabric)
            .with_snapshot(&snap)
            .with_faults(&plan)
            .detailed()
            .run(&fs);
        assert_eq!(bare, via_snap, "snapshot perturbed a fault replay");
        assert_eq!(snap.len(), before, "fault run mutated the snapshot");
    });
}

#[test]
fn attached_observability_never_changes_results() {
    // Satellite: the tracer is strictly read-from. A run with an attached
    // EngineObs must produce bit-identical stats AND records versus a bare
    // run on the same random fabric and flows.
    forall("observability_never_changes_results", 48, |rng| {
        let (fabric, n) = any_fabric(rng);
        let fs = flows(rng, n, 60);
        let bare = Simulation::new(fabric.as_ref()).detailed().run(&fs);
        let obs = EngineObs::new();
        let observed = Simulation::new(fabric.as_ref())
            .with_obs(&obs)
            .detailed()
            .run(&fs);
        assert_eq!(bare, observed, "observability perturbed the simulation");
        // And the observations themselves are coherent with the run.
        assert_eq!(obs.runs.get(), 1);
        assert_eq!(obs.flows.get(), fs.len() as u64);
        assert_eq!(obs.unrouted.get(), bare.stats.unrouted as u64);
        assert_eq!(obs.flow_bytes.count(), fs.len() as u64);
        assert_eq!(
            obs.cache_hits.get() + obs.cache_misses.get(),
            fs.len() as u64,
            "every flow is either a cache hit or a miss"
        );
    });
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    // Satellite: an attached-but-empty FaultPlan must not perturb the
    // simulation in any way — stats AND records bit-identical, on every
    // fabric family, cold and warm cache.
    forall("empty_fault_plan_is_bit_identical", 48, |rng| {
        let (fabric, n) = any_fabric(rng);
        let fabric = fabric.as_ref();
        let fs = flows(rng, n, 60);
        let plan = FaultPlan::builder().build(fabric).expect("empty plan");
        assert!(plan.is_empty());
        let bare = Simulation::new(fabric).detailed().run(&fs);
        let with_plan = Simulation::new(fabric)
            .with_faults(&plan)
            .detailed()
            .run(&fs);
        assert_eq!(bare, with_plan, "empty plan perturbed the simulation");

        let mut cache = PathCache::new();
        let warm_bare = Simulation::new(fabric)
            .with_cache(&mut cache)
            .detailed()
            .run(&fs);
        let mut cache2 = PathCache::new();
        let warm_plan = Simulation::new(fabric)
            .with_cache(&mut cache2)
            .with_faults(&plan)
            .detailed()
            .run(&fs);
        assert_eq!(warm_bare, warm_plan);
        assert_eq!(cache.len(), cache2.len());
    });
}

#[test]
fn targeted_invalidation_equals_full_clear() {
    // Satellite: after invalidate_link / invalidate_node, re-running a
    // replay through the surgically-evicted cache must match a run through
    // a fully cleared cache bit-for-bit, and every surviving cached entry
    // must still equal a fresh route computation.
    forall("targeted_invalidation_equals_full_clear", 48, |rng| {
        let (fabric, n) = any_fabric(rng);
        let fabric = fabric.as_ref();
        let fs = flows(rng, n, 60);

        let mut targeted = PathCache::new();
        Simulation::new(fabric).with_cache(&mut targeted).run(&fs);
        let mut cleared = targeted.clone();

        // Evict around a random link and a random node, both ways.
        let link = rng.range(0, fabric.link_count());
        let node = rng.range(0, n);
        targeted.invalidate_link(link);
        targeted.invalidate_node(node, &fabric.incident_links(node));
        cleared.clear();

        // Surviving entries agree with fresh computation for every pair.
        for src in 0..n {
            for dst in 0..n {
                if let Some(entry) = targeted.cached(src, dst) {
                    let fresh = fabric.path(src, dst);
                    assert_eq!(
                        entry,
                        fresh.as_deref(),
                        "stale survivor for pair ({src}, {dst})"
                    );
                    // Anything touching the invalidated components is gone.
                    if let Some(path) = entry {
                        assert!(!path.contains(&link), "({src}, {dst}) kept link {link}");
                    }
                    assert!(
                        src != node && dst != node,
                        "({src}, {dst}) kept node {node}"
                    );
                }
            }
        }

        // And a replay through either cache is bit-identical.
        let a = Simulation::new(fabric)
            .with_cache(&mut targeted)
            .detailed()
            .run(&fs);
        let b = Simulation::new(fabric)
            .with_cache(&mut cleared)
            .detailed()
            .run(&fs);
        assert_eq!(a, b, "targeted eviction diverged from full clear");
    });
}

#[test]
fn fault_replay_is_deterministic() {
    // Satellite: a seeded fault schedule replays bit-identically across
    // repeated same-seed runs, with and without a shared cache.
    forall("fault_replay_is_deterministic", 32, |rng| {
        let fabric = TorusFabric::new((4, 4, 1)).expect("valid shape");
        let fs = flows(rng, 16, 40);
        let eligible = transit_links(&fabric, &fs);
        if eligible.is_empty() {
            return;
        }
        let seed = rng.range_u64(0, u64::MAX - 1);
        let count = rng.range(1, eligible.len().min(4) + 1);
        let plan = FaultPlan::builder()
            .random_link_failures(seed, count, &eligible, (0, 500_000), Some(200_000))
            .build(&fabric)
            .expect("valid plan");
        let run = |cache: Option<&mut PathCache>| {
            let sim = Simulation::new(&fabric).with_faults(&plan).detailed();
            match cache {
                Some(c) => sim.with_cache(c).run(&fs),
                None => sim.run(&fs),
            }
        };
        let a = run(None);
        let b = run(None);
        assert_eq!(a, b, "same seed, same schedule, different output");
        let mut cache = PathCache::new();
        let c = run(Some(&mut cache));
        assert_eq!(a, c, "shared cache perturbed a fault replay");
        // The cache stays safe for a fault-free run afterwards: fault-era
        // entries were re-marked stale, so the healthy baseline is exact.
        let healthy = Simulation::new(&fabric).detailed().run(&fs);
        let after = Simulation::new(&fabric)
            .with_cache(&mut cache)
            .detailed()
            .run(&fs);
        assert_eq!(healthy, after, "fault-era routes leaked into a healthy run");
    });
}

#[test]
fn hfast_routes_every_provisioned_flow() {
    forall("hfast_routes_every_provisioned_flow", 48, |rng| {
        let mut g = CommGraph::new(12);
        for _ in 0..rng.range(1, 40) {
            let a = rng.range(0, 12);
            let b = rng.range(0, 12);
            if a != b {
                g.add_message(a, b, rng.range_u64(2048, 1 << 20));
            }
        }
        let fabric = HfastFabric::new(PaperLinear.provision(&g, ProvisionConfig::default()));
        let fs = traffic::flows_from_graph(&g, 2048);
        let stats = Simulation::new(&fabric).run(&fs).stats;
        assert_eq!(stats.unrouted, 0);
        assert_eq!(stats.completed, fs.len());
    });
}

#[test]
fn delaying_a_flow_never_helps_others_complete_later_overall() {
    forall("delaying_a_flow_never_changes_completion", 48, |rng| {
        // Pushing one flow later cannot change how many flows complete
        // (weak sanity of the FIFO model).
        let fs = flows(rng, 16, 20);
        let delay = rng.range_u64(1, 1_000_000);
        let fabric = FatTreeFabric::new(16, 8).expect("valid shape");
        let base = Simulation::new(&fabric).run(&fs).stats;
        let mut delayed = fs.clone();
        delayed[0].start_ns += delay;
        let after = Simulation::new(&fabric).run(&delayed).stats;
        assert_eq!(after.completed, base.completed);
    });
}

#[test]
fn paths_stay_within_link_table() {
    forall("paths_stay_within_link_table", 48, |rng| {
        let fs = flows(rng, 30, 30);
        for fabric in [
            Box::new(FatTreeFabric::new(30, 8).expect("valid shape")) as Box<dyn Fabric>,
            Box::new(TorusFabric::new((5, 3, 2)).expect("valid shape")) as Box<dyn Fabric>,
        ] {
            for f in &fs {
                if f.src < fabric.nodes() && f.dst < fabric.nodes() {
                    if let Some(path) = fabric.path(f.src, f.dst) {
                        for link in path {
                            assert!(link < fabric.link_count());
                        }
                    }
                }
            }
        }
    });
}

#[test]
fn hfast_fabric_paths_agree_with_provisioning_routes() {
    forall(
        "hfast_fabric_paths_agree_with_provisioning_routes",
        32,
        |rng| {
            // The fabric's link path and the provisioning's analytic route are
            // two views of the same wiring: link count must equal
            // switch_hops + 1 (each switch hop is entered by one link, plus the
            // final link out to the node).
            let mut g = CommGraph::new(14);
            for _ in 0..rng.range(1, 60) {
                let a = rng.range(0, 14);
                let b = rng.range(0, 14);
                if a != b {
                    g.add_message(a, b, rng.range_u64(2048, 1 << 21));
                }
            }
            let prov = PaperLinear.provision(&g, ProvisionConfig::default());
            let fabric = HfastFabric::new(prov.clone());
            for a in 0..14 {
                for b in 0..14 {
                    if a == b {
                        continue;
                    }
                    match prov.route(a, b) {
                        Some(route) => {
                            let path = fabric.path(a, b).expect("routed pair has a path");
                            assert_eq!(path.len(), route.switch_hops + 1, "pair ({}, {})", a, b);
                        }
                        None => {
                            // Unrouted pairs fall back to the 2-link tree.
                            let path = fabric.path(a, b).expect("tree fallback");
                            assert_eq!(path.len(), 2);
                        }
                    }
                }
            }
        },
    );
}

#[test]
fn attached_trace_never_changes_results() {
    // Satellite: a TraceRecorder is strictly write-only from the engine's
    // perspective — attaching one must leave both the static and the
    // faulted event loop bit-identical to a bare run.
    forall("attached_trace_never_changes_results", 32, |rng| {
        let (fabric, n) = any_fabric(rng);
        let fabric = fabric.as_ref();
        let fs = flows(rng, n, 60);
        let bare = Simulation::new(fabric).detailed().run(&fs);
        let rec = TraceRecorder::new();
        let traced = Simulation::new(fabric).with_trace(&rec).detailed().run(&fs);
        assert_eq!(bare, traced, "tracing perturbed the static loop");
        assert!(!rec.is_empty() || fs.iter().all(|f| f.src == f.dst));

        // Same invariant through the dynamic (faulted) loop.
        let eligible = transit_links(fabric, &fs);
        if eligible.is_empty() {
            return;
        }
        let seed = rng.range_u64(0, u64::MAX - 1);
        let count = rng.range(1, eligible.len().min(4) + 1);
        let plan = FaultPlan::builder()
            .random_link_failures(seed, count, &eligible, (0, 500_000), Some(200_000))
            .build(fabric)
            .expect("valid plan");
        let bare_f = Simulation::new(fabric)
            .with_faults(&plan)
            .detailed()
            .run(&fs);
        let rec_f = TraceRecorder::new();
        let traced_f = Simulation::new(fabric)
            .with_faults(&plan)
            .with_trace(&rec_f)
            .detailed()
            .run(&fs);
        assert_eq!(bare_f, traced_f, "tracing perturbed the faulted loop");
    });
}

#[test]
fn hop_spans_reconcile_with_engine_obs() {
    // Satellite: the two observability layers are independent recordings
    // of the same event loop, so per-link busy time folded from `hop`
    // spans must equal the sum of the EngineObs `link_busy` timeline —
    // link for link, nanosecond for nanosecond.
    forall("hop_spans_reconcile_with_engine_obs", 32, |rng| {
        let (fabric, n) = any_fabric(rng);
        let fabric = fabric.as_ref();
        let fs = flows(rng, n, 50);
        let obs = EngineObs::with_timeline_capacity(1 << 16);
        let rec = TraceRecorder::new();
        Simulation::new(fabric)
            .with_obs(&obs)
            .with_trace(&rec)
            .run(&fs);
        assert_eq!(obs.timeline.dropped(), 0, "ring too small for this test");

        let mut from_obs: HashMap<u64, u64> = HashMap::new();
        for ev in obs.timeline.snapshot() {
            if ev.name == "link_busy" {
                let link = ev
                    .fields
                    .iter()
                    .find_map(|(k, v)| match (k, v) {
                        (&"link", Val::U(l)) => Some(*l),
                        _ => None,
                    })
                    .expect("link_busy carries a link id");
                *from_obs.entry(link).or_default() += ev.dur_ns;
            }
        }
        let mut from_spans: HashMap<u64, u64> = HashMap::new();
        for s in rec.snapshot() {
            if let Track::Link(l) = s.track {
                if s.name == "hop" {
                    *from_spans.entry(l as u64).or_default() += s.dur_ns;
                }
            }
        }
        assert_eq!(from_obs, from_spans, "span busy sums diverged from obs");
    });
}

#[test]
fn exporter_round_trips_through_json_parser() {
    // Satellite: whatever the engine records, the Perfetto exporter's
    // output must parse with the in-repo JSON parser and validate as
    // trace-event JSON, with validate()'s event count agreeing with an
    // independent walk of the parsed traceEvents array.
    forall("exporter_round_trips_through_json_parser", 32, |rng| {
        let (fabric, n) = any_fabric(rng);
        let fabric = fabric.as_ref();
        let fs = flows(rng, n, 50);
        let rec = TraceRecorder::new();
        Simulation::new(fabric).with_trace(&rec).run(&fs);
        let spans = rec.snapshot();
        let doc = export(&spans);
        let parsed = parse(&doc).expect("exporter emitted unparseable JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("document has a traceEvents array");
        let stats = validate(&doc).expect("exporter emitted invalid trace");
        let non_meta = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) != Some("M"))
            .count();
        assert_eq!(stats.events, non_meta);
        // Every span produced at least its own event; causal edges add
        // flow-arrow pairs on top.
        assert!(stats.events >= spans.len());
    });
}

#[test]
fn fault_plan_never_routes_through_failures() {
    forall("fault_plan_never_routes_through_failures", 32, |rng| {
        let fs = flows(rng, 27, 30);
        let mut dead: Vec<usize> = (0..rng.range(0, 5)).map(|_| rng.range(0, 27)).collect();
        dead.sort_unstable();
        dead.dedup();
        let torus = TorusFabric::new((3, 3, 3)).expect("valid shape");
        let mut builder = FaultPlan::builder();
        for &n in &dead {
            builder = builder.fail_node(0, n);
        }
        let plan = builder.build(&torus).expect("in-range failures");
        // One attempt, no recoveries: dead endpoints stay dead, matching
        // the static failure sets the old DegradedFabric shim modeled.
        let stats = Simulation::new(&torus)
            .with_faults(&plan)
            .with_retry(RetryPolicy {
                max_attempts: 1,
                base_backoff_ns: 1,
                max_backoff_ns: 1,
            })
            .run(&fs)
            .stats;
        let involving_dead = fs
            .iter()
            .filter(|f| dead.contains(&f.src) || dead.contains(&f.dst))
            .count();
        assert!(stats.unrouted >= involving_dead.min(fs.len()));
        assert_eq!(stats.completed + stats.unrouted, fs.len());
    });
}
