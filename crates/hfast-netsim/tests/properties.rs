//! Property-based tests for the discrete-event simulator and fabrics.

use hfast_core::{ProvisionConfig, Provisioning};
use hfast_netsim::engine::{simulate_detailed, simulate_detailed_with_cache, PathCache};
use hfast_netsim::{simulate, traffic, Fabric, FatTreeFabric, Flow, HfastFabric, TorusFabric};
use hfast_par::{forall, Rng64};
use hfast_topology::CommGraph;

fn flows(rng: &mut Rng64, n: usize, max: usize) -> Vec<Flow> {
    (0..rng.range(1, max))
        .map(|_| Flow {
            src: rng.range(0, n),
            dst: rng.range(0, n),
            bytes: rng.range_u64(1, 1 << 20),
            start_ns: rng.range_u64(0, 1_000_000),
        })
        .collect()
}

#[test]
fn fat_tree_delivers_everything() {
    forall("fat_tree_delivers_everything", 48, |rng| {
        let fs = flows(rng, 32, 60);
        let fabric = FatTreeFabric::new(32, 8);
        let stats = simulate(&fabric, &fs);
        assert_eq!(stats.completed, fs.len());
        assert_eq!(stats.unrouted, 0);
        assert_eq!(
            stats.delivered_bytes,
            fs.iter().map(|f| f.bytes).sum::<u64>()
        );
    });
}

#[test]
fn torus_delivers_everything() {
    forall("torus_delivers_everything", 48, |rng| {
        let fs = flows(rng, 27, 60);
        let fabric = TorusFabric::new((3, 3, 3));
        let stats = simulate(&fabric, &fs);
        assert_eq!(stats.completed, fs.len());
    });
}

#[test]
fn latency_lower_bound_holds() {
    forall("latency_lower_bound_holds", 48, |rng| {
        // No flow can beat its uncontended cut-through time:
        // sum of link latencies + one serialization on its slowest link.
        let fs = flows(rng, 32, 40);
        let fabric = FatTreeFabric::new(32, 8);
        let (_, records) = simulate_detailed(&fabric, &fs);
        for r in &records {
            let f = &fs[r.flow];
            let path = fabric.path(f.src, f.dst).unwrap();
            let min_lat: u64 = path.iter().map(|&l| fabric.link(l).latency_ns).sum();
            let min_ser = path
                .iter()
                .map(|&l| fabric.link(l).serialize_ns(f.bytes))
                .max()
                .unwrap_or(0);
            let end = r.end_ns.expect("delivered");
            assert!(
                end - r.start_ns >= min_lat + min_ser,
                "flow {} beat physics: {} < {} + {}",
                r.flow,
                end - r.start_ns,
                min_lat,
                min_ser
            );
        }
    });
}

#[test]
fn simulation_is_deterministic() {
    forall("simulation_is_deterministic", 48, |rng| {
        let fs = flows(rng, 16, 50);
        let fabric = TorusFabric::new((4, 2, 2));
        let a = simulate(&fabric, &fs);
        let b = simulate(&fabric, &fs);
        assert_eq!(a, b);
    });
}

#[test]
fn cached_simulation_matches_uncached() {
    // A shared PathCache — cold, then warm across repeated runs — must
    // leave the simulation results bit-identical to the cache-free path.
    forall("cached_simulation_matches_uncached", 48, |rng| {
        let fabric = TorusFabric::new((3, 3, 3));
        let mut cache = PathCache::new();
        for _ in 0..3 {
            let fs = flows(rng, 27, 80);
            let (fresh_stats, fresh_recs) = simulate_detailed(&fabric, &fs);
            let (warm_stats, warm_recs) = simulate_detailed_with_cache(&fabric, &fs, &mut cache);
            assert_eq!(fresh_stats, warm_stats);
            assert_eq!(fresh_recs, warm_recs);
        }
        assert!(cache.len() <= 27 * 27);
    });
}

#[test]
fn hfast_routes_every_provisioned_flow() {
    forall("hfast_routes_every_provisioned_flow", 48, |rng| {
        let mut g = CommGraph::new(12);
        for _ in 0..rng.range(1, 40) {
            let a = rng.range(0, 12);
            let b = rng.range(0, 12);
            if a != b {
                g.add_message(a, b, rng.range_u64(2048, 1 << 20));
            }
        }
        let fabric = HfastFabric::new(Provisioning::per_node(&g, ProvisionConfig::default()));
        let fs = traffic::flows_from_graph(&g, 2048);
        let stats = simulate(&fabric, &fs);
        assert_eq!(stats.unrouted, 0);
        assert_eq!(stats.completed, fs.len());
    });
}

#[test]
fn delaying_a_flow_never_helps_others_complete_later_overall() {
    forall("delaying_a_flow_never_changes_completion", 48, |rng| {
        // Pushing one flow later cannot change how many flows complete
        // (weak sanity of the FIFO model).
        let fs = flows(rng, 16, 20);
        let delay = rng.range_u64(1, 1_000_000);
        let fabric = FatTreeFabric::new(16, 8);
        let base = simulate(&fabric, &fs);
        let mut delayed = fs.clone();
        delayed[0].start_ns += delay;
        let after = simulate(&fabric, &delayed);
        assert_eq!(after.completed, base.completed);
    });
}

#[test]
fn paths_stay_within_link_table() {
    forall("paths_stay_within_link_table", 48, |rng| {
        let fs = flows(rng, 30, 30);
        for fabric in [
            Box::new(FatTreeFabric::new(30, 8)) as Box<dyn Fabric>,
            Box::new(TorusFabric::new((5, 3, 2))) as Box<dyn Fabric>,
        ] {
            for f in &fs {
                if f.src < fabric.nodes() && f.dst < fabric.nodes() {
                    if let Some(path) = fabric.path(f.src, f.dst) {
                        for link in path {
                            assert!(link < fabric.link_count());
                        }
                    }
                }
            }
        }
    });
}

#[test]
fn hfast_fabric_paths_agree_with_provisioning_routes() {
    forall("hfast_fabric_paths_agree_with_provisioning_routes", 32, |rng| {
        // The fabric's link path and the provisioning's analytic route are
        // two views of the same wiring: link count must equal
        // switch_hops + 1 (each switch hop is entered by one link, plus the
        // final link out to the node).
        let mut g = CommGraph::new(14);
        for _ in 0..rng.range(1, 60) {
            let a = rng.range(0, 14);
            let b = rng.range(0, 14);
            if a != b {
                g.add_message(a, b, rng.range_u64(2048, 1 << 21));
            }
        }
        let prov = Provisioning::per_node(&g, ProvisionConfig::default());
        let fabric = HfastFabric::new(prov.clone());
        for a in 0..14 {
            for b in 0..14 {
                if a == b {
                    continue;
                }
                match prov.route(a, b) {
                    Some(route) => {
                        let path = fabric.path(a, b).expect("routed pair has a path");
                        assert_eq!(path.len(), route.switch_hops + 1, "pair ({}, {})", a, b);
                    }
                    None => {
                        // Unrouted pairs fall back to the 2-link tree.
                        let path = fabric.path(a, b).expect("tree fallback");
                        assert_eq!(path.len(), 2);
                    }
                }
            }
        }
    });
}

#[test]
fn degraded_fabric_never_routes_through_failures() {
    forall("degraded_fabric_never_routes_through_failures", 32, |rng| {
        let fs = flows(rng, 27, 30);
        let mut dead: Vec<usize> = (0..rng.range(0, 5)).map(|_| rng.range(0, 27)).collect();
        dead.sort_unstable();
        dead.dedup();
        let torus = TorusFabric::new((3, 3, 3));
        let degraded = hfast_netsim::DegradedFabric::new(&torus, dead.clone(), []);
        let stats = simulate(&degraded, &fs);
        let involving_dead = fs
            .iter()
            .filter(|f| dead.contains(&f.src) || dead.contains(&f.dst))
            .count();
        assert!(stats.unrouted >= involving_dead.min(fs.len()));
        assert_eq!(stats.completed + stats.unrouted, fs.len());
    });
}
