//! Property-based tests for the discrete-event simulator and fabrics.

use proptest::prelude::*;

use hfast_core::{ProvisionConfig, Provisioning};
use hfast_netsim::engine::simulate_detailed;
use hfast_netsim::{simulate, traffic, Fabric, FatTreeFabric, Flow, HfastFabric, TorusFabric};
use hfast_topology::CommGraph;

fn flows(n: usize, max: usize) -> impl Strategy<Value = Vec<Flow>> {
    prop::collection::vec(
        (0..n, 0..n, 1u64..(1 << 20), 0u64..1_000_000),
        1..max,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(src, dst, bytes, start_ns)| Flow {
                src,
                dst,
                bytes,
                start_ns,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fat_tree_delivers_everything(fs in flows(32, 60)) {
        let fabric = FatTreeFabric::new(32, 8);
        let stats = simulate(&fabric, &fs);
        prop_assert_eq!(stats.completed, fs.len());
        prop_assert_eq!(stats.unrouted, 0);
        prop_assert_eq!(stats.delivered_bytes, fs.iter().map(|f| f.bytes).sum::<u64>());
    }

    #[test]
    fn torus_delivers_everything(fs in flows(27, 60)) {
        let fabric = TorusFabric::new((3, 3, 3));
        let stats = simulate(&fabric, &fs);
        prop_assert_eq!(stats.completed, fs.len());
    }

    #[test]
    fn latency_lower_bound_holds(fs in flows(32, 40)) {
        // No flow can beat its uncontended cut-through time:
        // sum of link latencies + one serialization on its slowest link.
        let fabric = FatTreeFabric::new(32, 8);
        let (_, records) = simulate_detailed(&fabric, &fs);
        for r in &records {
            let f = &fs[r.flow];
            let path = fabric.path(f.src, f.dst).unwrap();
            let min_lat: u64 = path.iter().map(|&l| fabric.link(l).latency_ns).sum();
            let min_ser = path
                .iter()
                .map(|&l| fabric.link(l).serialize_ns(f.bytes))
                .max()
                .unwrap_or(0);
            let end = r.end_ns.expect("delivered");
            prop_assert!(
                end - r.start_ns >= min_lat + min_ser,
                "flow {} beat physics: {} < {} + {}",
                r.flow,
                end - r.start_ns,
                min_lat,
                min_ser
            );
        }
    }

    #[test]
    fn simulation_is_deterministic(fs in flows(16, 50)) {
        let fabric = TorusFabric::new((4, 2, 2));
        let a = simulate(&fabric, &fs);
        let b = simulate(&fabric, &fs);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hfast_routes_every_provisioned_flow(
        msgs in prop::collection::vec((0usize..12, 0usize..12, 2048u64..(1 << 20)), 1..40),
    ) {
        let mut g = CommGraph::new(12);
        for &(a, b, bytes) in &msgs {
            if a != b {
                g.add_message(a, b, bytes);
            }
        }
        let fabric = HfastFabric::new(Provisioning::per_node(&g, ProvisionConfig::default()));
        let fs = traffic::flows_from_graph(&g, 2048);
        let stats = simulate(&fabric, &fs);
        prop_assert_eq!(stats.unrouted, 0);
        prop_assert_eq!(stats.completed, fs.len());
    }

    #[test]
    fn delaying_a_flow_never_helps_others_complete_later_overall(
        fs in flows(16, 20),
        delay in 1u64..1_000_000,
    ) {
        // Pushing one flow later cannot make the earliest delivery later
        // than the previous makespan (weak sanity of the FIFO model).
        let fabric = FatTreeFabric::new(16, 8);
        let base = simulate(&fabric, &fs);
        let mut delayed = fs.clone();
        delayed[0].start_ns += delay;
        let after = simulate(&fabric, &delayed);
        prop_assert_eq!(after.completed, base.completed);
    }

    #[test]
    fn paths_stay_within_link_table(fs in flows(30, 30)) {
        for fabric in [
            Box::new(FatTreeFabric::new(30, 8)) as Box<dyn Fabric>,
            Box::new(TorusFabric::new((5, 3, 2))) as Box<dyn Fabric>,
        ] {
            for f in &fs {
                if f.src < fabric.nodes() && f.dst < fabric.nodes() {
                    if let Some(path) = fabric.path(f.src, f.dst) {
                        for link in path {
                            prop_assert!(link < fabric.link_count());
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hfast_fabric_paths_agree_with_provisioning_routes(
        msgs in prop::collection::vec((0usize..14, 0usize..14, 2048u64..(1 << 21)), 1..60),
    ) {
        // The fabric's link path and the provisioning's analytic route are
        // two views of the same wiring: link count must equal
        // switch_hops + 1 (each switch hop is entered by one link, plus the
        // final link out to the node).
        let mut g = CommGraph::new(14);
        for &(a, b, bytes) in &msgs {
            if a != b {
                g.add_message(a, b, bytes);
            }
        }
        let prov = Provisioning::per_node(&g, ProvisionConfig::default());
        let fabric = HfastFabric::new(prov.clone());
        for a in 0..14 {
            for b in 0..14 {
                if a == b {
                    continue;
                }
                match prov.route(a, b) {
                    Some(route) => {
                        let path = fabric.path(a, b).expect("routed pair has a path");
                        prop_assert_eq!(
                            path.len(),
                            route.switch_hops + 1,
                            "pair ({}, {})",
                            a,
                            b
                        );
                    }
                    None => {
                        // Unrouted pairs fall back to the 2-link tree.
                        let path = fabric.path(a, b).expect("tree fallback");
                        prop_assert_eq!(path.len(), 2);
                    }
                }
            }
        }
    }

    #[test]
    fn degraded_fabric_never_routes_through_failures(
        fs in flows(27, 30),
        dead in prop::collection::btree_set(0usize..27, 0..5),
    ) {
        let torus = TorusFabric::new((3, 3, 3));
        let dead: Vec<usize> = dead.into_iter().collect();
        let degraded = hfast_netsim::DegradedFabric::new(&torus, dead.clone(), []);
        let stats = simulate(&degraded, &fs);
        let involving_dead = fs
            .iter()
            .filter(|f| dead.contains(&f.src) || dead.contains(&f.dst))
            .count();
        prop_assert!(stats.unrouted >= involving_dead.min(fs.len()));
        prop_assert_eq!(stats.completed + stats.unrouted, fs.len());
    }
}
