//! Workload generation: flows to replay over a fabric.

use hfast_topology::CommGraph;

/// One message to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Injection time in nanoseconds.
    pub start_ns: u64,
}

/// Expands a communication graph into flows: each active edge above
/// `cutoff` yields one average-size message in each direction, all injected
/// at t = 0 (a bulk-synchronous exchange step, the worst case for
/// contention).
pub fn flows_from_graph(graph: &CommGraph, cutoff: u64) -> Vec<Flow> {
    let mut flows = Vec::new();
    for a in 0..graph.n() {
        for (b, e) in graph.neighbors(a) {
            if b <= a || e.max_msg < cutoff {
                continue;
            }
            // One representative flow per direction at the edge's mean
            // message size.
            let avg = (e.bytes / e.count.max(1)).max(1);
            for &(src, dst) in &[(a, b), (b, a)] {
                flows.push(Flow {
                    src,
                    dst,
                    bytes: avg,
                    start_ns: 0,
                });
            }
        }
    }
    flows
}

/// SplitMix64: a tiny deterministic PRNG so workload generation does not
/// pull a dependency into the library (rand stays dev-only).
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Uniform-random traffic: `count` flows of `bytes` each between random
/// distinct node pairs, injected with random jitter in `[0, spread_ns)`.
pub fn uniform_random(
    nodes: usize,
    count: usize,
    bytes: u64,
    spread_ns: u64,
    seed: u64,
) -> Vec<Flow> {
    assert!(nodes >= 2, "need at least two nodes");
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let src = rng.below(nodes as u64) as usize;
            let mut dst = rng.below(nodes as u64 - 1) as usize;
            if dst >= src {
                dst += 1;
            }
            Flow {
                src,
                dst,
                bytes,
                start_ns: if spread_ns == 0 {
                    0
                } else {
                    rng.below(spread_ns)
                },
            }
        })
        .collect()
}

/// A global transpose (all-to-all personalized exchange): every ordered
/// pair exchanges one block — PARATEC's stage-1 pattern.
pub fn alltoall(nodes: usize, block_bytes: u64) -> Vec<Flow> {
    let mut flows = Vec::with_capacity(nodes * nodes.saturating_sub(1));
    for src in 0..nodes {
        for dst in 0..nodes {
            if src != dst {
                flows.push(Flow {
                    src,
                    dst,
                    bytes: block_bytes,
                    start_ns: 0,
                });
            }
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::ring_graph;

    #[test]
    fn graph_expansion_is_bidirectional() {
        let g = ring_graph(4, 10_000);
        let flows = flows_from_graph(&g, 0);
        assert_eq!(flows.len(), 8, "4 edges × 2 directions");
        assert!(flows.iter().all(|f| f.bytes == 10_000));
    }

    #[test]
    fn graph_expansion_respects_cutoff() {
        let mut g = ring_graph(4, 10_000);
        g.add_message(0, 2, 100);
        assert_eq!(flows_from_graph(&g, 2048).len(), 8);
        assert_eq!(flows_from_graph(&g, 0).len(), 10);
    }

    #[test]
    fn uniform_random_is_deterministic_and_valid() {
        let a = uniform_random(8, 100, 4096, 1000, 7);
        let b = uniform_random(8, 100, 4096, 1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|f| f.src != f.dst && f.src < 8 && f.dst < 8));
        assert!(a.iter().all(|f| f.start_ns < 1000));
        let c = uniform_random(8, 100, 4096, 1000, 8);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn alltoall_covers_all_pairs() {
        let flows = alltoall(5, 32 << 10);
        assert_eq!(flows.len(), 20);
        let mut seen = std::collections::BTreeSet::new();
        for f in &flows {
            assert!(seen.insert((f.src, f.dst)));
        }
    }

    #[test]
    fn splitmix_spreads() {
        let mut rng = SplitMix64::new(1);
        let vals: Vec<u64> = (0..16).map(|_| rng.below(4)).collect();
        // All four residues appear in a short run.
        for r in 0..4 {
            assert!(vals.contains(&r), "residue {r} missing from {vals:?}");
        }
    }
}
