//! Online adaptive replay: windowed simulation with incremental
//! re-provisioning at synchronization points.
//!
//! §2.3 of the paper sketches a runtime that measures traffic between
//! synchronization points and repatches the MEMS crossbar to match.
//! [`AdaptiveReplay`] is that loop over the simulator: each call to
//! [`window`](AdaptiveReplay::window) replays one bulk-synchronous phase
//! on the current fabric, folds the observed per-pair traffic into the
//! communication graph, asks the configured [`Provisioner`] strategy for
//! an **incremental** re-provisioning over the delta, applies it to the
//! live [`HfastFabric`], and invalidates exactly the cached routes the
//! outcome touched. Strategies that cannot adapt incrementally fall back
//! to a full rebuild (and a full cache clear) transparently.
//!
//! ```
//! use hfast_core::{ProvisionConfig, Strategy};
//! use hfast_netsim::adapt::AdaptiveReplay;
//! use hfast_netsim::traffic::flows_from_graph;
//! use hfast_topology::generators::ring_graph;
//!
//! let g = ring_graph(16, 1 << 20);
//! let mut replay = AdaptiveReplay::builder(16, ProvisionConfig::default())
//!     .strategy(Strategy::PaperLinear)
//!     .initial_graph(&g)
//!     .build();
//! let report = replay.window(&flows_from_graph(&g, 2048));
//! assert_eq!(report.stats.unrouted, 0);
//! assert_eq!(report.edges_touched, 0); // traffic matched the forecast
//! ```

use hfast_core::{AdaptScope, GraphDelta, ProvisionConfig, Provisioner, Strategy};
use hfast_topology::CommGraph;

use crate::engine::{PathCache, Simulation};
use crate::hfast::HfastFabric;
use crate::stats::RunStats;
use crate::traffic::Flow;

/// Builder for [`AdaptiveReplay`]: pick the node count, provisioning
/// config, strategy, and (optionally) an initial traffic forecast.
#[derive(Debug)]
pub struct AdaptiveReplayBuilder {
    n: usize,
    config: ProvisionConfig,
    strategy: Strategy,
    initial: CommGraph,
}

impl AdaptiveReplayBuilder {
    /// Selects the provisioner strategy (default: the paper's linear
    /// heuristic, the only one with a native incremental path).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Seeds the initial provisioning from a traffic forecast instead of
    /// an empty graph (which would start every pair on the slow tree).
    pub fn initial_graph(mut self, graph: &CommGraph) -> Self {
        self.initial = graph.clone();
        self
    }

    /// Provisions the initial fabric and returns the replay driver.
    ///
    /// # Panics
    /// If the initial graph's task count disagrees with the builder's `n`.
    pub fn build(self) -> AdaptiveReplay {
        assert_eq!(self.initial.n(), self.n, "forecast must cover all nodes");
        let provisioner = self.strategy.provisioner();
        let fabric = HfastFabric::new(provisioner.provision(&self.initial, self.config));
        AdaptiveReplay {
            fabric,
            cache: PathCache::new(),
            provisioner,
            observed: self.initial,
            windows: 0,
        }
    }
}

/// What one synchronization window did: replay stats plus the
/// re-provisioning work it triggered.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Simulation stats for the window's flows.
    pub stats: RunStats,
    /// Strategy that handled the sync point.
    pub strategy: &'static str,
    /// Edges whose circuit-worthiness status the delta changed.
    pub edges_touched: usize,
    /// True if the strategy recomputed the provisioning from scratch.
    pub full_rebuild: bool,
    /// Cached routes evicted by the adaptation.
    pub routes_evicted: usize,
}

/// Windowed sync-point replay with online incremental re-provisioning.
///
/// Construct with [`AdaptiveReplay::builder`]; drive with
/// [`window`](AdaptiveReplay::window) once per bulk-synchronous phase.
#[derive(Debug)]
pub struct AdaptiveReplay {
    fabric: HfastFabric,
    cache: PathCache,
    provisioner: Box<dyn Provisioner>,
    observed: CommGraph,
    windows: usize,
}

impl AdaptiveReplay {
    /// A builder for `n` nodes under `config`.
    pub fn builder(n: usize, config: ProvisionConfig) -> AdaptiveReplayBuilder {
        AdaptiveReplayBuilder {
            n,
            config,
            strategy: Strategy::PaperLinear,
            initial: CommGraph::new(n),
        }
    }

    /// The live fabric (adapted to everything observed so far).
    pub fn fabric(&self) -> &HfastFabric {
        &self.fabric
    }

    /// The strategy handling sync points.
    pub fn strategy_name(&self) -> &'static str {
        self.provisioner.name()
    }

    /// Synchronization windows replayed so far.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// Replays one window of flows on the current fabric, then adapts the
    /// provisioning to the traffic actually observed.
    ///
    /// The flows run against routes provisioned from *previous* windows —
    /// exactly the runtime's position at a sync point — and the fabric the
    /// *next* window sees reflects this one's traffic. Cached routes for
    /// untouched pairs survive the adaptation.
    pub fn window(&mut self, flows: &[Flow]) -> WindowReport {
        let stats = Simulation::new(&self.fabric)
            .with_cache(&mut self.cache)
            .run(flows)
            .stats;
        self.windows += 1;

        // Fold the window's traffic into the observed communication graph.
        let mut next = self.observed.clone();
        for f in flows {
            next.add_message(f.src, f.dst, f.bytes);
        }
        let delta = GraphDelta::diff(&self.observed, &next);
        self.observed = next;
        if delta.is_empty() {
            return WindowReport {
                stats,
                strategy: self.provisioner.name(),
                edges_touched: 0,
                full_rebuild: false,
                routes_evicted: 0,
            };
        }

        let prev = self.fabric.provisioning().clone();
        let out = self.provisioner.reprovision(prev, &self.observed, &delta);
        let (strategy, edges_touched, full_rebuild) =
            (out.strategy, out.edges_touched, out.full_rebuild);
        let routes_evicted = match self.fabric.adapt(&out) {
            AdaptScope::Full => {
                let evicted = self.cache.len();
                self.cache.clear();
                evicted
            }
            AdaptScope::Pairs(pairs) => self.cache.invalidate_pairs(&pairs),
        };
        WindowReport {
            stats,
            strategy,
            edges_touched,
            full_rebuild,
            routes_evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::traffic::flows_from_graph;
    use hfast_topology::generators::ring_graph;

    /// A drifting workload: each window's phase adds one fresh chord. The
    /// driver must keep adapting incrementally — never a full rebuild
    /// under PaperLinear — and each new chord must ride a circuit by the
    /// window after it first appears.
    #[test]
    fn drifting_chords_adapt_incrementally() {
        let n = 32;
        let base = ring_graph(n, 1 << 20);
        let mut replay = AdaptiveReplay::builder(n, ProvisionConfig::default())
            .initial_graph(&base)
            .build();

        for w in 0..4 {
            let (a, b) = (w, (w + n / 2) % n);
            let mut flows = flows_from_graph(&base, 2048);
            flows.push(Flow {
                src: a,
                dst: b,
                bytes: 1 << 20,
                start_ns: 0,
            });
            let report = replay.window(&flows);
            assert_eq!(report.stats.unrouted, 0);
            assert!(!report.full_rebuild, "paper heuristic adapts in place");
            assert!(report.edges_touched >= 1, "the chord is new traffic");
            // Next window: the chord now rides a dedicated circuit.
            let path = replay.fabric().path(a, b).unwrap();
            assert_eq!(path.len(), 3, "window {w} chord got a circuit");
        }
        assert_eq!(replay.windows(), 4);
        assert_eq!(replay.strategy_name(), "paper_linear");
    }

    /// Strategies without a native incremental path still work through
    /// the same driver — every sync point is a (correct) full rebuild.
    #[test]
    fn scratch_strategies_fall_back_to_full_rebuild() {
        let n = 16;
        let base = ring_graph(n, 1 << 20);
        let mut replay = AdaptiveReplay::builder(n, ProvisionConfig::default())
            .strategy(Strategy::BffCircuit)
            .initial_graph(&base)
            .build();
        let mut flows = flows_from_graph(&base, 2048);
        flows.push(Flow {
            src: 2,
            dst: 9,
            bytes: 1 << 20,
            start_ns: 0,
        });
        let report = replay.window(&flows);
        assert_eq!(report.stats.unrouted, 0);
        assert!(report.full_rebuild);
        assert_eq!(report.strategy, "bff_circuit");
        // The rebuilt fabric routes the new pair off the slow tree (BFF
        // may even marry the two onto one shared chain).
        let p = replay.fabric().path(2, 9).unwrap();
        assert_eq!(replay.fabric().link_class(p[0]), "fiber");
        // Another window of identical traffic: the cumulative byte counts
        // still shift, so a scratch strategy rebuilds again — correct but
        // paying the full cost the incremental path avoids.
        let second = replay.window(&flows);
        assert_eq!(second.stats.unrouted, 0);
        assert!(second.full_rebuild);
    }
}
