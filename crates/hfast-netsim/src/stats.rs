//! Aggregate simulation statistics.

use crate::engine::FlowRecord;
use crate::fabric::Fabric;
use crate::traffic::Flow;

/// Summary of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Flows delivered.
    pub completed: usize,
    /// Flows with no route in the fabric, plus flows abandoned after
    /// exhausting their retry budget under faults.
    pub unrouted: usize,
    /// Flows abandoned by the retry policy (a subset of `unrouted`).
    pub abandoned: usize,
    /// Retry re-admissions across all flows (0 for fault-free runs).
    pub total_retries: u64,
    /// Total payload bytes delivered.
    pub delivered_bytes: u64,
    /// Time of the last delivery.
    pub makespan_ns: u64,
    /// Median flow latency.
    pub p50_latency_ns: u64,
    /// 95th-percentile flow latency.
    pub p95_latency_ns: u64,
    /// Worst flow latency.
    pub max_latency_ns: u64,
    /// Mean hops per delivered flow.
    pub avg_hops: f64,
    /// Busiest link's busy fraction of the makespan.
    pub max_link_utilization: f64,
    /// Aggregate delivered throughput in bytes/ns.
    pub throughput: f64,
}

impl RunStats {
    pub(crate) fn from_records(
        fabric: &dyn Fabric,
        flows: &[Flow],
        records: &[FlowRecord],
        link_busy_ns: &[u64],
    ) -> RunStats {
        let mut latencies: Vec<u64> = Vec::with_capacity(records.len());
        let mut delivered_bytes = 0u64;
        let mut makespan = 0u64;
        let mut unrouted = 0usize;
        let mut abandoned = 0usize;
        let mut total_retries = 0u64;
        let mut hop_sum = 0usize;
        for r in records {
            total_retries += u64::from(r.retries);
            match r.end_ns {
                Some(end) => {
                    latencies.push(end - r.start_ns);
                    delivered_bytes += flows[r.flow].bytes;
                    makespan = makespan.max(end);
                    hop_sum += r.hops;
                }
                None => {
                    unrouted += 1;
                    abandoned += usize::from(r.abandoned);
                }
            }
        }
        latencies.sort_unstable();
        let pick = |p: f64| -> u64 {
            if latencies.is_empty() {
                0
            } else {
                let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
                latencies[idx]
            }
        };
        let completed = latencies.len();
        let max_busy = link_busy_ns.iter().copied().max().unwrap_or(0);
        let _ = fabric;
        RunStats {
            completed,
            unrouted,
            abandoned,
            total_retries,
            delivered_bytes,
            makespan_ns: makespan,
            p50_latency_ns: pick(0.5),
            p95_latency_ns: pick(0.95),
            max_latency_ns: latencies.last().copied().unwrap_or(0),
            avg_hops: if completed == 0 {
                0.0
            } else {
                hop_sum as f64 / completed as f64
            },
            max_link_utilization: if makespan == 0 {
                0.0
            } else {
                max_busy as f64 / makespan as f64
            },
            throughput: if makespan == 0 {
                0.0
            } else {
                delivered_bytes as f64 / makespan as f64
            },
        }
    }
}

impl hfast_obs::ToJsonl for RunStats {
    fn to_jsonl(&self) -> String {
        hfast_obs::JsonObj::new()
            .str("event", "run_stats")
            .usize("completed", self.completed)
            .usize("unrouted", self.unrouted)
            .usize("abandoned", self.abandoned)
            .u64("total_retries", self.total_retries)
            .u64("delivered_bytes", self.delivered_bytes)
            .u64("makespan_ns", self.makespan_ns)
            .u64("p50_latency_ns", self.p50_latency_ns)
            .u64("p95_latency_ns", self.p95_latency_ns)
            .u64("max_latency_ns", self.max_latency_ns)
            .f64_p("avg_hops", self.avg_hops, 3)
            .f64_p("max_link_utilization", self.max_link_utilization, 4)
            .f64_p("throughput", self.throughput, 4)
            .finish()
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} flows ({} unrouted), p50 {} ns, p95 {} ns, max {} ns, avg {:.1} hops, {:.3} B/ns",
            self.completed,
            self.unrouted,
            self.p50_latency_ns,
            self.p95_latency_ns,
            self.max_latency_ns,
            self.avg_hops,
            self.throughput
        )
    }
}
