//! Credit-based flow control: backpressure, stalls, and congestion trees.
//!
//! The default event loop models every link as an ideal FIFO server —
//! messages queue *at* a busy link but congestion can never spread
//! *between* links. Real credit/wormhole fabrics behave differently:
//! a hop may only forward when the downstream buffer has a free credit,
//! so a saturated link backs traffic up into its upstream buffers,
//! which fill and stall *their* upstreams — the congestion trees of
//! Jha et al. (arXiv 1907.05312), whose victims include flows that never
//! touch the hot link at all.
//!
//! [`CongestionMode::Credit`] turns that mechanism on. The model is
//! store-and-forward with per-link input buffers of
//! [`CreditConfig::credits`] message slots:
//!
//! - a message occupies exactly one buffer slot from the moment it enters
//!   a link until it advances to the next one (sources have unbounded
//!   injection queues and wait for the first link's credit);
//! - the buffer head serializes for `bytes / bandwidth` and crosses in
//!   `latency_ns`, then requests a credit on the next link: granted, it
//!   moves and frees its slot (waking the first waiter FIFO); refused,
//!   it **stays at the head**, blocking everything behind it
//!   (head-of-line blocking — this is what makes trees form);
//! - freed credits cascade deterministically at the same timestamp, so
//!   a delivery at the tree root can unwind a whole chain of stalls.
//!
//! End-to-end uncontended latency is therefore `Σ (latency + bytes/bw)`
//! per hop (store-and-forward), not the cut-through `Σ latency +
//! bytes/bw` of the ideal loop — the two modes are different *models*,
//! compared credit-vs-credit across fabrics, never credit-vs-ideal.
//! [`CongestionMode::Ideal`] (the default) routes to the untouched PR-9
//! event loop and is byte-identical to it, golden-pinned by tests.
//!
//! With a [`TraceRecorder`](hfast_trace::TraceRecorder) attached the loop
//! emits the same `hop` spans as the ideal loop plus `stall` spans
//! (`flow`, `for` = the downstream link that refused the credit) on the
//! blocked link's track; `hfast_trace::congestion_trees` folds those
//! into root/depth/victim reports.
//!
//! Fault integration: a [`FaultPlan`](crate::FaultPlan) replays on the
//! same time axis. A link failure kills every occupant and waiter of the
//! link (they re-admit from the source under the [`RetryPolicy`], with
//! routes re-resolved around the outage); recoveries restore the link.
//! Unlike the dynamic ideal loop, credit mode does not model mid-run
//! circuit repatching — `with_reprovision` intervals are ignored.
//!
//! The loop is strictly sequential and single-threaded: identical inputs
//! produce identical outputs regardless of `HFAST_THREADS`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use hfast_trace::{engine_span_id, TraceRecorder, Track};

use crate::engine::{record_flow_spans, FlowRecord, LoopPerf};
use crate::fabric::{Fabric, LinkId, LinkSpec};
use crate::faultplan::{FaultPlan, FaultState, FaultTarget, RetryPolicy};
use crate::obs::EngineObs;
use crate::stats::RunStats;
use crate::traffic::Flow;

/// Which link model a [`Simulation`](crate::Simulation) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionMode {
    /// Ideal FIFO links (the default): the unmodified event loop,
    /// byte-identical to runs that never mention congestion at all.
    #[default]
    Ideal,
    /// Credit-based flow control with finite per-link buffers and
    /// head-of-line blocking; congestion spreads upstream.
    Credit,
}

/// Default buffer depth per link, in message slots.
pub const DEFAULT_CREDITS: u32 = 2;

/// Congestion-model configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditConfig {
    /// Link model.
    pub mode: CongestionMode,
    /// Buffer slots per link (ignored under [`CongestionMode::Ideal`]).
    pub credits: u32,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            mode: CongestionMode::Ideal,
            credits: DEFAULT_CREDITS,
        }
    }
}

impl CreditConfig {
    /// Credit-mode config with `credits` buffer slots per link.
    ///
    /// # Panics
    /// If `credits` is zero (a link with no buffer can never accept a
    /// message).
    pub fn credit(credits: u32) -> Self {
        assert!(credits > 0, "links need at least one buffer slot");
        CreditConfig {
            mode: CongestionMode::Credit,
            credits,
        }
    }
}

/// Where a flow currently is, from the credit loop's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pos {
    /// Injection scheduled but not yet processed.
    Pending,
    /// At the source NIC, waiting for a credit on its first link.
    SourceWait,
    /// Resident in its current link's buffer (queued or serializing).
    Buffered,
    /// Head of its current link, blocked on the next link's credit.
    Blocked,
    Delivered,
    Unrouted,
    Abandoned,
}

struct FState {
    route: Vec<LinkId>,
    /// Index into `route` of the link currently holding (or wanted by)
    /// the flow.
    hop: usize,
    /// When the flow entered its current buffer (or the injection queue).
    arrived_ns: u64,
    /// Bumped on every kill so queued events for the old life go stale.
    epoch: u32,
    retries: u32,
    pos: Pos,
}

struct CLink {
    spec: LinkSpec,
    busy_ns: u64,
    stall_ns: u64,
    /// Flows occupying this link's buffer; the front is in service (or
    /// blocked on its downstream credit).
    buf: VecDeque<u32>,
    /// Flows waiting FIFO for one of this link's credits.
    waiters: VecDeque<u32>,
    /// When the current head became blocked (valid while the head's
    /// [`Pos::Blocked`]).
    blocked_since: u64,
    up: bool,
}

/// Event classes, ordered at equal timestamps: faults fire first (the
/// dynamic ideal loop's convention), then injections, then service
/// completions.
const CLASS_FAULT: u8 = 0;
const CLASS_INJECT: u8 = 1;
const CLASS_DONE: u8 = 2;

/// Sentinel: not delivered.
const NO_END: u64 = u64::MAX;

type Event = Reverse<(u64, u8, u64, u64)>; // (time, class, seq, payload)

struct CreditRun<'a> {
    fabric: &'a dyn Fabric,
    flows: &'a [Flow],
    credits: usize,
    retry: RetryPolicy,
    trace: Option<&'a TraceRecorder>,
    links: Vec<CLink>,
    fstate: Vec<FState>,
    ends: Vec<u64>,
    heap: BinaryHeap<Event>,
    seq: u64,
    fault_state: FaultState,
    /// Memoized healthy-fabric routes, keyed by (src, dst). Only used
    /// while no component is down — degraded resolutions are per-flow.
    healthy_routes: HashMap<(usize, usize), Option<Vec<LinkId>>>,
    n_events: u64,
}

impl<'a> CreditRun<'a> {
    fn push(&mut self, t: u64, class: u8, payload: u64) {
        self.heap.push(Reverse((t, class, self.seq, payload)));
        self.seq += 1;
    }

    fn flow_payload(&self, flow: u32) -> u64 {
        u64::from(flow) | (u64::from(self.fstate[flow as usize].epoch) << 32)
    }

    /// Starts serializing the head of `link` at `t`: books the busy
    /// time, emits the hop span, and schedules the completion event.
    fn start_service(&mut self, link: LinkId, flow: u32, t: u64) {
        let ser = self.links[link]
            .spec
            .serialize_ns(self.flows[flow as usize].bytes);
        self.links[link].busy_ns += ser;
        let wait = t - self.fstate[flow as usize].arrived_ns;
        if let Some(tr) = self.trace {
            tr.record_span(
                Track::Link(link),
                "hop",
                t,
                ser,
                0,
                engine_span_id(u64::from(flow) + 1),
                vec![("wait", wait), ("flow", u64::from(flow))],
            );
        }
        let done = t + self.links[link].spec.latency_ns + ser;
        let payload = self.flow_payload(flow);
        self.push(done, CLASS_DONE, payload);
    }

    /// Moves `flow` into `link`'s buffer (the caller already checked or
    /// obtained a credit) and starts service if it became the head.
    fn enter(&mut self, link: LinkId, flow: u32, t: u64) {
        self.fstate[flow as usize].pos = Pos::Buffered;
        self.links[link].buf.push_back(flow);
        if self.links[link].buf.len() == 1 {
            self.start_service(link, flow, t);
        }
    }

    /// Closes the stall interval of `link`'s blocked head at `t`,
    /// emitting the `stall` span that congestion-tree extraction folds.
    fn close_stall(&mut self, link: LinkId, flow: u32, wanted: LinkId, t: u64) {
        let since = self.links[link].blocked_since;
        self.links[link].stall_ns += t - since;
        if t > since {
            if let Some(tr) = self.trace {
                tr.record_span(
                    Track::Link(link),
                    "stall",
                    since,
                    t - since,
                    0,
                    engine_span_id(u64::from(flow) + 1),
                    vec![("flow", u64::from(flow)), ("for", wanted as u64)],
                );
            }
        }
    }

    /// The head of `link` has left its buffer slot: pop it, start the
    /// next head, and grant the freed credit to the first waiter. A
    /// granted waiter that was a blocked head departs *its* link in
    /// turn, so grants cascade — iteratively, FIFO, all at `t`.
    fn depart(&mut self, link: LinkId, t: u64) {
        let mut pending: VecDeque<LinkId> = VecDeque::from([link]);
        while let Some(l) = pending.pop_front() {
            self.links[l].buf.pop_front();
            if let Some(&next) = self.links[l].buf.front() {
                self.start_service(l, next, t);
            }
            let Some(w) = self.links[l].waiters.pop_front() else {
                continue;
            };
            match self.fstate[w as usize].pos {
                Pos::SourceWait => {
                    // Entering from the NIC: `arrived_ns` stays the
                    // injection time, so the hop span's wait field counts
                    // the source queueing.
                    self.enter(l, w, t);
                }
                Pos::Blocked => {
                    let prev = self.fstate[w as usize].route[self.fstate[w as usize].hop];
                    self.close_stall(prev, w, l, t);
                    self.fstate[w as usize].hop += 1;
                    self.fstate[w as usize].arrived_ns = t;
                    self.enter(l, w, t);
                    pending.push_back(prev);
                }
                other => unreachable!("waiter in state {other:?}"),
            }
        }
    }

    /// Kills `flow` at `t` (its path crossed a failed component): frees
    /// whatever it occupies and re-admits it under the retry policy.
    fn kill(&mut self, flow: u32, t: u64) {
        let (pos, hop) = (
            self.fstate[flow as usize].pos,
            self.fstate[flow as usize].hop,
        );
        match pos {
            Pos::SourceWait => {
                let first = self.fstate[flow as usize].route[0];
                self.links[first].waiters.retain(|&w| w != flow);
            }
            Pos::Buffered | Pos::Blocked => {
                let l = self.fstate[flow as usize].route[hop];
                if pos == Pos::Blocked {
                    let wanted = self.fstate[flow as usize].route[hop + 1];
                    self.close_stall(l, flow, wanted, t);
                    self.links[wanted].waiters.retain(|&w| w != flow);
                }
                if self.links[l].buf.front() == Some(&flow) {
                    self.depart(l, t);
                } else {
                    self.links[l].buf.retain(|&w| w != flow);
                }
            }
            Pos::Pending => {}
            other => unreachable!("killing a flow in state {other:?}"),
        }
        self.reschedule(flow, t);
    }

    /// Post-kill bookkeeping shared by every kill path: invalidate queued
    /// events for the old life and either re-admit under the retry policy
    /// or abandon.
    fn reschedule(&mut self, flow: u32, t: u64) {
        self.fstate[flow as usize].epoch += 1;
        let failed = self.fstate[flow as usize].retries + 1;
        if failed >= self.retry.attempts() {
            self.fstate[flow as usize].pos = Pos::Abandoned;
        } else {
            self.fstate[flow as usize].retries += 1;
            self.fstate[flow as usize].pos = Pos::Pending;
            let payload = self.flow_payload(flow);
            self.push(t + self.retry.backoff_ns(failed), CLASS_INJECT, payload);
        }
    }

    /// Applies one fault-plan event: updates component health, and on a
    /// link going down kills every occupant and waiter (their paths all
    /// cross the dead link, so each re-admits under the retry policy).
    fn apply_fault(&mut self, idx: usize, t: u64, plan: &FaultPlan) {
        let ev = plan.events()[idx];
        let incident = self.fault_state.apply(self.fabric, ev);
        let affected: Vec<LinkId> = match ev.target {
            FaultTarget::Link(l) => vec![l],
            FaultTarget::Node(_) => incident,
        };
        for l in affected {
            let up_now = self.fault_state.link_up(l);
            if self.links[l].up && !up_now {
                self.links[l].up = false;
                // Waiters first: once the occupants drain, no freed
                // credit may pull a doomed flow onto the dead link.
                while let Some(w) = self.links[l].waiters.pop_front() {
                    self.kill(w, t);
                }
                // Drain the buffer wholesale (no departs: a freed slot on
                // a dead link must not start anyone's service).
                let buf = std::mem::take(&mut self.links[l].buf);
                for f in buf {
                    let fs = &self.fstate[f as usize];
                    if fs.pos == Pos::Blocked {
                        let wanted = fs.route[fs.hop + 1];
                        self.close_stall(l, f, wanted, t);
                        self.links[wanted].waiters.retain(|&w| w != f);
                    }
                    self.reschedule(f, t);
                }
            } else if !self.links[l].up && up_now {
                self.links[l].up = true;
            }
        }
    }

    /// Resolves the route for one (re-)admission: the healthy memo when
    /// nothing is down, a fresh degraded resolution otherwise.
    fn resolve(&mut self, flow: u32) -> Option<Vec<LinkId>> {
        let f = self.flows[flow as usize];
        if self.fault_state.any_down() {
            if !self.fault_state.node_up(f.src) || !self.fault_state.node_up(f.dst) {
                return None;
            }
            return self
                .fabric
                .path_avoiding(f.src, f.dst, &self.fault_state)
                .filter(|p| !p.iter().any(|&l| !self.fault_state.link_up(l)));
        }
        self.healthy_routes
            .entry((f.src, f.dst))
            .or_insert_with(|| self.fabric.path(f.src, f.dst))
            .clone()
    }

    fn inject(&mut self, flow: u32, t: u64, under_faults: bool) {
        match self.resolve(flow) {
            Some(route) if route.is_empty() => {
                // Self-delivery is handled at setup; a retried flow can
                // only get here if rerouting collapsed the path.
                self.ends[flow as usize] = t;
                self.fstate[flow as usize].pos = Pos::Delivered;
            }
            Some(route) => {
                let first = route[0];
                self.fstate[flow as usize].route = route;
                self.fstate[flow as usize].hop = 0;
                self.fstate[flow as usize].arrived_ns = t;
                if self.links[first].buf.len() < self.credits {
                    self.enter(first, flow, t);
                } else {
                    self.fstate[flow as usize].pos = Pos::SourceWait;
                    self.links[first].waiters.push_back(flow);
                }
            }
            None if under_faults => self.kill(flow, t),
            None => self.fstate[flow as usize].pos = Pos::Unrouted,
        }
    }

    fn done(&mut self, flow: u32, t: u64) {
        let hop = self.fstate[flow as usize].hop;
        let route_len = self.fstate[flow as usize].route.len();
        let l = self.fstate[flow as usize].route[hop];
        if hop + 1 == route_len {
            self.ends[flow as usize] = t;
            self.fstate[flow as usize].pos = Pos::Delivered;
            self.depart(l, t);
            return;
        }
        let next = self.fstate[flow as usize].route[hop + 1];
        if !self.links[next].up {
            self.kill(flow, t);
        } else if self.links[next].buf.len() < self.credits {
            self.fstate[flow as usize].hop = hop + 1;
            self.fstate[flow as usize].arrived_ns = t;
            self.enter(next, flow, t);
            self.depart(l, t);
        } else {
            self.fstate[flow as usize].pos = Pos::Blocked;
            self.links[next].waiters.push_back(flow);
            self.links[l].blocked_since = t;
        }
    }
}

/// The credit-mode event loop behind
/// [`Simulation::with_congestion`](crate::Simulation::with_congestion).
pub(crate) fn run_credit(
    fabric: &dyn Fabric,
    flows: &[Flow],
    credits: u32,
    faults: Option<&FaultPlan>,
    retry: RetryPolicy,
    obs: Option<&EngineObs>,
    trace: Option<&TraceRecorder>,
) -> (RunStats, Vec<FlowRecord>, LoopPerf) {
    let link_count = fabric.link_count();
    let links: Vec<CLink> = (0..link_count)
        .map(|id| CLink {
            spec: fabric.link(id),
            busy_ns: 0,
            stall_ns: 0,
            buf: VecDeque::new(),
            waiters: VecDeque::new(),
            blocked_since: 0,
            up: true,
        })
        .collect();

    let mut run = CreditRun {
        fabric,
        flows,
        credits: credits.max(1) as usize,
        retry,
        trace,
        links,
        fstate: Vec::with_capacity(flows.len()),
        ends: vec![NO_END; flows.len()],
        heap: BinaryHeap::with_capacity(flows.len().min(1 << 12)),
        seq: 0,
        fault_state: FaultState::healthy(fabric),
        healthy_routes: HashMap::new(),
        n_events: 0,
    };

    // Seed injections in (start, flow) order — the convention every loop
    // in this crate shares for timestamp ties.
    let mut order: Vec<u32> = (0..flows.len() as u32).collect();
    order.sort_by_key(|&i| (flows[i as usize].start_ns, i));
    for (i, f) in flows.iter().enumerate() {
        run.fstate.push(FState {
            route: Vec::new(),
            hop: 0,
            arrived_ns: 0,
            epoch: 0,
            retries: 0,
            pos: Pos::Pending,
        });
        if f.src == f.dst {
            run.ends[i] = f.start_ns;
            run.fstate[i].pos = Pos::Delivered;
        }
    }
    for &i in &order {
        if run.fstate[i as usize].pos == Pos::Pending {
            let payload = run.flow_payload(i);
            run.push(flows[i as usize].start_ns, CLASS_INJECT, payload);
        }
    }
    let under_faults = faults.is_some_and(|p| !p.is_empty());
    if let Some(plan) = faults {
        for (idx, ev) in plan.events().iter().enumerate() {
            run.push(ev.time_ns, CLASS_FAULT, idx as u64);
        }
    }

    let t_loop = std::time::Instant::now();
    while let Some(Reverse((t, class, _seq, payload))) = run.heap.pop() {
        run.n_events += 1;
        match class {
            CLASS_FAULT => {
                let plan = faults.expect("fault events imply a plan");
                run.apply_fault(payload as usize, t, plan);
            }
            _ => {
                let flow = payload as u32;
                let epoch = (payload >> 32) as u32;
                if run.fstate[flow as usize].epoch != epoch {
                    continue; // a kill superseded this event
                }
                if class == CLASS_INJECT {
                    run.inject(flow, t, under_faults);
                } else {
                    run.done(flow, t);
                }
            }
        }
    }
    let perf = LoopPerf {
        events: run.n_events,
        loop_ns: t_loop.elapsed().as_nanos() as u64,
    };

    let mut records: Vec<FlowRecord> = Vec::with_capacity(flows.len());
    for (i, f) in flows.iter().enumerate() {
        let fs = &run.fstate[i];
        let delivered = run.ends[i] != NO_END;
        records.push(FlowRecord {
            flow: i,
            start_ns: f.start_ns,
            end_ns: delivered.then_some(run.ends[i]),
            hops: if delivered { fs.route.len() } else { 0 },
            retries: fs.retries,
            abandoned: fs.pos == Pos::Abandoned,
        });
    }
    if let Some(tr) = trace {
        record_flow_spans(tr, flows, &records);
    }

    let link_busy_ns: Vec<u64> = run.links.iter().map(|l| l.busy_ns).collect();
    let stats = RunStats::from_records(fabric, flows, &records, &link_busy_ns);
    if let Some(obs) = obs {
        obs.runs.inc();
        obs.flows.add(flows.len() as u64);
        obs.events.add(run.n_events);
        obs.unrouted.add(stats.unrouted as u64);
        obs.set_events_per_sec(&perf);
        for f in flows {
            obs.flow_bytes.record(f.bytes);
        }
    }
    (stats, records, perf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTreeFabric;
    use crate::torus::TorusFabric;
    use crate::traffic;
    use crate::Simulation;

    #[test]
    fn default_config_is_ideal() {
        assert_eq!(CreditConfig::default().mode, CongestionMode::Ideal);
        assert_eq!(CreditConfig::credit(4).mode, CongestionMode::Credit);
        assert_eq!(CreditConfig::credit(4).credits, 4);
    }

    #[test]
    #[should_panic(expected = "at least one buffer slot")]
    fn zero_credits_are_rejected() {
        CreditConfig::credit(0);
    }

    #[test]
    fn credit_mode_delivers_everything_fault_free() {
        let ft = FatTreeFabric::new(16, 4).expect("valid shape");
        let flows = traffic::alltoall(16, 8 << 10);
        let out = Simulation::new(&ft)
            .with_congestion(CreditConfig::credit(2))
            .detailed()
            .run(&flows);
        assert_eq!(out.stats.completed, flows.len());
        assert_eq!(out.stats.unrouted, 0);
        assert!(out.stats.makespan_ns > 0);
    }

    #[test]
    fn credit_mode_is_deterministic_and_thread_invariant() {
        let torus = TorusFabric::new((4, 4, 2)).expect("valid shape");
        let flows = traffic::uniform_random(32, 2_000, 4096, 100_000, 7);
        let a = Simulation::new(&torus)
            .with_congestion(CreditConfig::credit(2))
            .detailed()
            .run(&flows);
        let b = Simulation::new(&torus)
            .with_congestion(CreditConfig::credit(2))
            .detailed()
            .with_threads(8)
            .run(&flows);
        assert_eq!(a, b, "credit loop ignores thread counts");
    }

    #[test]
    fn backpressure_stretches_the_makespan() {
        // 15→1 incast on a small fat tree: with one-slot buffers the
        // sources serialize almost entirely, so the makespan must exceed
        // the ideal loop's (which lets every flow queue at the last hop).
        let ft = FatTreeFabric::new(16, 4).expect("valid shape");
        let flows: Vec<Flow> = (1..16)
            .map(|src| Flow {
                src,
                dst: 0,
                bytes: 64 << 10,
                start_ns: 0,
            })
            .collect();
        let ideal = Simulation::new(&ft).run(&flows);
        let credit = Simulation::new(&ft)
            .with_congestion(CreditConfig::credit(1))
            .run(&flows);
        assert_eq!(credit.stats.completed, flows.len());
        assert!(
            credit.stats.makespan_ns >= ideal.stats.makespan_ns,
            "backpressure cannot beat the ideal fabric: credit {} < ideal {}",
            credit.stats.makespan_ns,
            ideal.stats.makespan_ns
        );
    }

    #[test]
    fn stall_spans_mark_blocked_links() {
        let ft = FatTreeFabric::new(16, 4).expect("valid shape");
        let flows: Vec<Flow> = (1..16)
            .map(|src| Flow {
                src,
                dst: 0,
                bytes: 64 << 10,
                start_ns: 0,
            })
            .collect();
        let rec = TraceRecorder::new();
        Simulation::new(&ft)
            .with_congestion(CreditConfig::credit(1))
            .with_trace(&rec)
            .run(&flows);
        let spans = rec.snapshot();
        let stalls = spans.iter().filter(|s| s.name == "stall").count();
        assert!(stalls > 0, "a 15→1 incast with 1-slot buffers must stall");
        // Every stall names the downstream link it waited for.
        for s in spans.iter().filter(|s| s.name == "stall") {
            assert!(s.fields.iter().any(|(k, _)| *k == "for"));
            assert!(s.fields.iter().any(|(k, _)| *k == "flow"));
            assert!(s.dur_ns > 0);
        }
    }

    #[test]
    fn faulted_credit_runs_retry_and_stay_deterministic() {
        let torus = TorusFabric::new((4, 4, 1)).expect("valid shape");
        let flows = traffic::uniform_random(16, 400, 8192, 50_000, 3);
        let eligible = crate::faultplan::transit_links(&torus, &flows);
        let plan = FaultPlan::builder()
            .random_link_failures(11, 3, &eligible, (0, 100_000), Some(200_000))
            .build(&torus)
            .expect("valid plan");
        let run = || {
            Simulation::new(&torus)
                .with_congestion(CreditConfig::credit(2))
                .with_faults(&plan)
                .with_retry(RetryPolicy::default())
                .detailed()
                .run(&flows)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "faulted credit replays are deterministic");
        assert_eq!(
            a.stats.completed + a.stats.unrouted,
            flows.len(),
            "every flow is accounted for"
        );
        assert!(a.stats.total_retries > 0, "the outage must hit something");
    }
}
