//! Engine observability: event counts, path-cache hit/miss, and per-link
//! busy-time timelines.
//!
//! An [`EngineObs`] can be attached to a [`Simulation`](crate::Simulation)
//! explicitly (`.with_obs(&obs)`), or implicitly: when `HFAST_OBS` is on
//! (see [`hfast_obs::enabled`]) every run without an explicit sink records
//! into the process-wide [`global`] instance. Timeline events are stamped
//! with *simulated* time, so an enabled timeline is bit-identical across
//! thread counts and runs — the determinism the benches assert.

use hfast_obs::{Counter, Gauge, Histogram, JsonObj, ToJsonl, Tracer, Val};

/// Counters, histograms, and the link-occupancy timeline for simulator
/// runs.
#[derive(Debug, Clone, Default)]
pub struct EngineObs {
    /// Simulation runs observed.
    pub runs: Counter,
    /// Flows submitted across runs.
    pub flows: Counter,
    /// Scheduler events processed (one per flow-hop arrival).
    pub events: Counter,
    /// Flows that had no route.
    pub unrouted: Counter,
    /// Distinct (src, dst) pairs resolved from the path cache.
    pub cache_hits: Counter,
    /// Distinct (src, dst) pairs that had to be routed.
    pub cache_misses: Counter,
    /// High-water mark of live events in the calendar queue (the name
    /// predates the heap → calendar-queue rewrite and is kept stable for
    /// downstream summary consumers).
    pub heap_peak: Gauge,
    /// Event-loop throughput of the most recent instrumented run, in
    /// events per wall-clock second spent inside the loop proper (0 until
    /// a run completes). Instrumented loops pay for their own recording,
    /// so this reads lower than the uninstrumented throughput benched via
    /// [`LoopPerf`](crate::engine::LoopPerf).
    pub events_per_sec: Gauge,
    /// Live events in the calendar queue, sampled once per processed
    /// event.
    pub queue_occupancy: Histogram,
    /// Per-hop queueing delay (ns a header waited for a busy link).
    pub queue_wait_ns: Histogram,
    /// Flow payload sizes.
    pub flow_bytes: Histogram,
    /// Fault-plan events applied (link and node failures).
    pub faults: Counter,
    /// Fault-plan recovery events applied.
    pub recoveries: Counter,
    /// In-flight flows killed by hitting a dead link.
    pub flow_kills: Counter,
    /// Re-admissions scheduled by the retry policy.
    pub retries: Counter,
    /// Flows abandoned after exhausting their retry budget.
    pub abandoned_flows: Counter,
    /// Mid-run circuit re-provisioning rounds (HFAST sync points).
    pub reprovisions: Counter,
    /// Failed circuits repaired across all re-provisioning rounds.
    pub repatched_links: Counter,
    /// Cached routes evicted by targeted fault invalidation.
    pub cache_evictions: Counter,
    /// Delivery delay attributable to faults: delivery time minus the
    /// flow's first kill, for flows that were killed and later delivered.
    pub reroute_latency_ns: Histogram,
    /// Per-link busy intervals in simulated time: one `link_busy` event
    /// per link occupancy, `t_ns` = occupancy start, `dur_ns` =
    /// serialization time, field `link` = link id. Fault runs add
    /// `link_fail` / `link_recover` / `node_fail` / `node_recover` /
    /// `reprovision` events on the same simulated-time axis.
    pub timeline: Tracer,
}

impl EngineObs {
    /// A fresh instance with the default timeline capacity.
    pub fn new() -> Self {
        EngineObs::default()
    }

    /// A fresh instance retaining at most `capacity` timeline events.
    pub fn with_timeline_capacity(capacity: usize) -> Self {
        EngineObs {
            timeline: Tracer::new(capacity),
            ..EngineObs::default()
        }
    }

    /// Records one link occupancy on the simulated-time timeline.
    #[inline]
    pub(crate) fn link_busy(&self, start_ns: u64, serialization_ns: u64, link: usize) {
        self.timeline.record_at(
            start_ns,
            serialization_ns,
            "link_busy",
            vec![("link", Val::U(link as u64))],
        );
    }

    /// Records one fault-plan or re-provisioning event on the simulated
    /// timeline (`kind` is e.g. `"link_fail"`, `id` the link or node).
    #[inline]
    pub(crate) fn fault_event(&self, t_ns: u64, kind: &'static str, id: usize) {
        self.timeline
            .record_at(t_ns, 0, kind, vec![("id", Val::U(id as u64))]);
    }

    /// Sets the throughput gauge from a run's [`LoopPerf`]. Wall-clock
    /// only feeds this gauge — never simulated results — so instrumented
    /// outputs stay bit-identical across machines.
    ///
    /// [`LoopPerf`]: crate::engine::LoopPerf
    #[inline]
    pub(crate) fn set_events_per_sec(&self, perf: &crate::engine::LoopPerf) {
        let eps = perf.events_per_sec();
        if eps > 0.0 {
            self.events_per_sec.set(eps as u64);
        }
    }

    /// One-line JSON summary of the counters and histograms.
    pub fn summary_jsonl(&self) -> String {
        JsonObj::new()
            .str("event", "netsim_summary")
            .u64("runs", self.runs.get())
            .u64("flows", self.flows.get())
            .u64("events", self.events.get())
            .u64("unrouted", self.unrouted.get())
            .u64("cache_hits", self.cache_hits.get())
            .u64("cache_misses", self.cache_misses.get())
            .u64("faults", self.faults.get())
            .u64("recoveries", self.recoveries.get())
            .u64("flow_kills", self.flow_kills.get())
            .u64("retries", self.retries.get())
            .u64("abandoned_flows", self.abandoned_flows.get())
            .u64("reprovisions", self.reprovisions.get())
            .u64("repatched_links", self.repatched_links.get())
            .u64("cache_evictions", self.cache_evictions.get())
            .u64("reroute_p50_ns", self.reroute_latency_ns.quantile(0.5))
            .u64("reroute_p95_ns", self.reroute_latency_ns.quantile(0.95))
            .u64("reroute_p99_ns", self.reroute_latency_ns.quantile(0.99))
            .u64("heap_peak", self.heap_peak.get())
            .u64("queue_wait_p50_ns", self.queue_wait_ns.quantile(0.5))
            .u64("queue_wait_p95_ns", self.queue_wait_ns.quantile(0.95))
            .u64("queue_wait_p99_ns", self.queue_wait_ns.quantile(0.99))
            .u64("flow_bytes_p50", self.flow_bytes.quantile(0.5))
            .u64("flow_bytes_p95", self.flow_bytes.quantile(0.95))
            .u64("flow_bytes_p99", self.flow_bytes.quantile(0.99))
            .u64("timeline_events", self.timeline.len() as u64)
            .u64("timeline_dropped", self.timeline.dropped())
            .u64("events_per_sec", self.events_per_sec.get())
            .u64("queue_occupancy_p50", self.queue_occupancy.quantile(0.5))
            .u64("queue_occupancy_p99", self.queue_occupancy.quantile(0.99))
            .finish()
    }

    /// Exports the summary plus the retained timeline to the `HFAST_OBS`
    /// sink.
    pub fn export(&self) {
        let mut lines = vec![self.summary_jsonl()];
        lines.extend(self.timeline.jsonl_lines());
        hfast_obs::emit_lines(lines);
    }
}

impl ToJsonl for EngineObs {
    fn to_jsonl(&self) -> String {
        self.summary_jsonl()
    }
}

/// The process-wide instance used when `HFAST_OBS` is on and no explicit
/// [`EngineObs`] was attached to the run.
pub fn global() -> &'static EngineObs {
    static GLOBAL: std::sync::OnceLock<EngineObs> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(EngineObs::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_shape() {
        let obs = EngineObs::new();
        obs.runs.inc();
        obs.flow_bytes.record(4096);
        let line = obs.summary_jsonl();
        assert!(line.starts_with(r#"{"event":"netsim_summary","runs":1"#));
        let p50 = obs.flow_bytes.quantile(0.5);
        assert!((4096..=8191).contains(&p50), "interpolated within bucket");
        assert!(line.contains(&format!(r#""flow_bytes_p50":{p50}"#)));
        assert!(line.contains(r#""queue_wait_p99_ns":0"#));
    }

    #[test]
    fn timeline_is_sim_time_stamped() {
        let obs = EngineObs::with_timeline_capacity(2);
        obs.link_busy(100, 50, 3);
        let evs = obs.timeline.snapshot();
        assert_eq!(evs[0].t_ns, 100);
        assert_eq!(evs[0].dur_ns, 50);
        assert_eq!(evs[0].fields, vec![("link", Val::U(3))]);
    }
}
