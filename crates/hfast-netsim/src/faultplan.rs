//! Runtime fault injection: seeded, validated schedules of link/node
//! failures and recoveries, consumed as first-class events by the
//! simulation event loop.
//!
//! A [`FaultPlan`] is built with the same builder style as
//! [`Simulation`](crate::Simulation): explicit `fail_*`/`recover_*` calls
//! schedule individual topology changes at simulated timestamps, and
//! [`FaultPlanBuilder::random_link_failures`] draws a seeded batch through
//! [`hfast_core::seeded_failures`] so the same seed fails the same
//! components everywhere. [`FaultPlanBuilder::build`] validates every id
//! against the target fabric.
//!
//! [`FaultState`] is the runtime side: the engine folds plan events into it
//! as simulated time advances and fabrics consult it through
//! [`Fabric::path_avoiding`](crate::Fabric::path_avoiding).

use crate::error::NetsimError;
use crate::fabric::{Fabric, LinkId};
use crate::traffic::{Flow, SplitMix64};

/// The component a [`FaultEvent`] acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultTarget {
    /// A directed fabric link.
    Link(LinkId),
    /// An attached compute node (fails all its incident links too).
    Node(usize),
}

/// Whether a [`FaultEvent`] takes the component down or brings it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultAction {
    /// The component fails at the event time.
    Fail,
    /// The component recovers at the event time.
    Recover,
}

/// One scheduled topology change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated time at which the change takes effect.
    pub time_ns: u64,
    /// Fail or recover.
    pub action: FaultAction,
    /// The affected component.
    pub target: FaultTarget,
}

/// A validated, time-sorted schedule of topology changes for one fabric.
///
/// Obtained from [`FaultPlan::builder`]; an empty (default) plan is the
/// explicit "no faults" case and leaves simulation output bit-identical to
/// a run without any plan attached.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Starts an empty schedule.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder { events: Vec::new() }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The schedule, sorted by time (ties keep insertion order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// Builder for a [`FaultPlan`].
#[must_use = "a FaultPlanBuilder does nothing until build()"]
#[derive(Debug, Clone, Default)]
pub struct FaultPlanBuilder {
    events: Vec<FaultEvent>,
}

impl FaultPlanBuilder {
    fn push(mut self, time_ns: u64, action: FaultAction, target: FaultTarget) -> Self {
        self.events.push(FaultEvent {
            time_ns,
            action,
            target,
        });
        self
    }

    /// Fails `link` at `time_ns`.
    pub fn fail_link(self, time_ns: u64, link: LinkId) -> Self {
        self.push(time_ns, FaultAction::Fail, FaultTarget::Link(link))
    }

    /// Recovers `link` at `time_ns` (a no-op if it is not down then).
    pub fn recover_link(self, time_ns: u64, link: LinkId) -> Self {
        self.push(time_ns, FaultAction::Recover, FaultTarget::Link(link))
    }

    /// Fails `node` (and all its incident links) at `time_ns`.
    pub fn fail_node(self, time_ns: u64, node: usize) -> Self {
        self.push(time_ns, FaultAction::Fail, FaultTarget::Node(node))
    }

    /// Recovers `node` at `time_ns`.
    pub fn recover_node(self, time_ns: u64, node: usize) -> Self {
        self.push(time_ns, FaultAction::Recover, FaultTarget::Node(node))
    }

    /// Schedules `count` seeded link failures drawn from `eligible`, with
    /// failure times spread uniformly over `window` and, when `downtime_ns`
    /// is given, a matching recovery that much later.
    ///
    /// Which links fail comes from [`hfast_core::seeded_failures`]; *when*
    /// they fail comes from the same seed through SplitMix64 — so one
    /// `(seed, count, eligible)` triple defines one reproducible disaster.
    pub fn random_link_failures(
        mut self,
        seed: u64,
        count: usize,
        eligible: &[LinkId],
        window: (u64, u64),
        downtime_ns: Option<u64>,
    ) -> Self {
        let picks = hfast_core::seeded_failures(count, eligible.len(), seed);
        let mut rng = SplitMix64::new(seed ^ 0xFAB5_C8ED);
        let (t0, t1) = window;
        let span = t1.saturating_sub(t0);
        for idx in picks {
            let link = eligible[idx];
            let at = if span == 0 { t0 } else { t0 + rng.below(span) };
            self.events.push(FaultEvent {
                time_ns: at,
                action: FaultAction::Fail,
                target: FaultTarget::Link(link),
            });
            if let Some(dt) = downtime_ns {
                self.events.push(FaultEvent {
                    time_ns: at.saturating_add(dt),
                    action: FaultAction::Recover,
                    target: FaultTarget::Link(link),
                });
            }
        }
        self
    }

    /// Validates every scheduled id against `fabric` and returns the
    /// time-sorted plan.
    ///
    /// # Errors
    /// [`NetsimError::NodeOutOfRange`] / [`NetsimError::LinkOutOfRange`]
    /// naming the first component that does not exist in `fabric`.
    pub fn build(mut self, fabric: &dyn Fabric) -> Result<FaultPlan, NetsimError> {
        for ev in &self.events {
            match ev.target {
                FaultTarget::Node(node) if node >= fabric.nodes() => {
                    return Err(NetsimError::NodeOutOfRange {
                        node,
                        nodes: fabric.nodes(),
                    });
                }
                FaultTarget::Link(link) if link >= fabric.link_count() => {
                    return Err(NetsimError::LinkOutOfRange {
                        link,
                        links: fabric.link_count(),
                    });
                }
                _ => {}
            }
        }
        self.events.sort_by_key(|e| e.time_ns);
        Ok(FaultPlan {
            events: self.events,
        })
    }
}

/// Retry policy for flows killed by a failure: exponential backoff in
/// *simulated* time.
///
/// A flow's first injection is attempt 1. After a kill (or a failed route
/// resolution while components are down), attempt `k` is re-admitted
/// `base_backoff_ns << (k - 1)` nanoseconds later, capped at
/// `max_backoff_ns`; once `max_attempts` admissions have failed the flow is
/// abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total admissions allowed, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first re-admission.
    pub base_backoff_ns: u64,
    /// Upper bound on any single backoff.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 50_000,
            max_backoff_ns: 10_000_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff after `failed_attempts` admissions have failed (1-based).
    pub fn backoff_ns(&self, failed_attempts: u32) -> u64 {
        let shift = failed_attempts.saturating_sub(1).min(63);
        self.base_backoff_ns
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_ns)
    }

    /// Effective attempt ceiling (the `max_attempts == 0` degenerate case
    /// still admits every flow once).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// Live component health during a simulation run.
///
/// Links carry two independent down-counts: explicit link failures and
/// contributions from failed nodes (a node failure takes all its
/// [`Fabric::incident_links`] down with it). A link is usable only when
/// both are zero, so overlapping causes recover independently.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    node_down: Vec<u32>,
    link_failed: Vec<u32>,
    node_blocked: Vec<u32>,
}

impl FaultState {
    /// An all-healthy state sized for `fabric`.
    pub fn healthy(fabric: &dyn Fabric) -> Self {
        FaultState {
            node_down: vec![0; fabric.nodes()],
            link_failed: vec![0; fabric.link_count()],
            node_blocked: vec![0; fabric.link_count()],
        }
    }

    /// True if `node` is up.
    #[inline]
    pub fn node_up(&self, node: usize) -> bool {
        self.node_down.get(node).is_none_or(|&c| c == 0)
    }

    /// True if `link` is usable (neither failed nor blocked by a dead
    /// node).
    #[inline]
    pub fn link_up(&self, link: LinkId) -> bool {
        self.link_failed.get(link).is_none_or(|&c| c == 0)
            && self.node_blocked.get(link).is_none_or(|&c| c == 0)
    }

    /// True if any component is currently down.
    pub fn any_down(&self) -> bool {
        self.node_down.iter().any(|&c| c > 0)
            || self.link_failed.iter().any(|&c| c > 0)
            || self.node_blocked.iter().any(|&c| c > 0)
    }

    /// True if `path` crosses any down link.
    pub fn blocks(&self, path: &[LinkId]) -> bool {
        path.iter().any(|&l| !self.link_up(l))
    }

    /// Links currently down due to an explicit *link* failure (node-caused
    /// outages excluded — a dead node's links cannot be repatched from the
    /// switch side), ascending.
    pub fn failed_links(&self) -> Vec<LinkId> {
        self.link_failed
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(l, _)| l)
            .collect()
    }

    /// Applies one plan event, returning the incident links of a node
    /// change (empty for link events) so callers can invalidate caches.
    pub fn apply(&mut self, fabric: &dyn Fabric, ev: FaultEvent) -> Vec<LinkId> {
        match (ev.action, ev.target) {
            (FaultAction::Fail, FaultTarget::Link(l)) => {
                self.link_failed[l] += 1;
                Vec::new()
            }
            (FaultAction::Recover, FaultTarget::Link(l)) => {
                self.link_failed[l] = self.link_failed[l].saturating_sub(1);
                Vec::new()
            }
            (FaultAction::Fail, FaultTarget::Node(n)) => {
                self.node_down[n] += 1;
                let incident = fabric.incident_links(n);
                for &l in &incident {
                    self.node_blocked[l] += 1;
                }
                incident
            }
            (FaultAction::Recover, FaultTarget::Node(n)) => {
                if self.node_down[n] == 0 {
                    return Vec::new(); // recover without failure: no-op
                }
                self.node_down[n] -= 1;
                let incident = fabric.incident_links(n);
                for &l in &incident {
                    self.node_blocked[l] = self.node_blocked[l].saturating_sub(1);
                }
                incident
            }
        }
    }

    /// Repairs `link` from the switch side (a repatched circuit): clears
    /// its explicit-failure count, leaving node-caused blocks alone.
    pub fn repatch_link(&mut self, link: LinkId) {
        self.link_failed[link] = 0;
    }
}

/// The distinct links that carry `flows` over `fabric`, excluding every
/// path's first and last hop (the endpoints' own injection/ejection links —
/// failing those models a NIC death, i.e. a node fault, not a link fault).
///
/// This is the eligibility set seeded link-failure sweeps draw from: every
/// returned link is a *transit* link some flow actually crosses, so a
/// failure is guaranteed to matter to the workload.
pub fn transit_links(fabric: &dyn Fabric, flows: &[Flow]) -> Vec<LinkId> {
    let mut seen = std::collections::BTreeSet::new();
    let mut pairs = std::collections::BTreeSet::new();
    for f in flows {
        if f.src != f.dst && pairs.insert((f.src, f.dst)) {
            if let Some(path) = fabric.path(f.src, f.dst) {
                if path.len() > 2 {
                    for &l in &path[1..path.len() - 1] {
                        seen.insert(l);
                    }
                }
            }
        }
    }
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::FatTreeFabric;
    use crate::torus::TorusFabric;

    fn ft() -> FatTreeFabric {
        FatTreeFabric::new(16, 8).unwrap()
    }

    #[test]
    fn builder_sorts_and_validates() {
        let fabric = ft();
        let plan = FaultPlan::builder()
            .fail_link(500, 3)
            .fail_node(100, 2)
            .recover_link(900, 3)
            .build(&fabric)
            .unwrap();
        let times: Vec<u64> = plan.events().iter().map(|e| e.time_ns).collect();
        assert_eq!(times, vec![100, 500, 900]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());

        let err = FaultPlan::builder()
            .fail_node(0, 99)
            .build(&fabric)
            .unwrap_err();
        assert_eq!(
            err,
            NetsimError::NodeOutOfRange {
                node: 99,
                nodes: 16
            }
        );
        let err = FaultPlan::builder()
            .fail_link(0, usize::MAX)
            .build(&fabric)
            .unwrap_err();
        assert!(matches!(err, NetsimError::LinkOutOfRange { .. }));
    }

    #[test]
    fn seeded_failures_reproduce() {
        let fabric = ft();
        let eligible: Vec<LinkId> = (32..fabric.link_count()).collect();
        let mk = || {
            FaultPlan::builder()
                .random_link_failures(7, 3, &eligible, (0, 10_000), Some(5_000))
                .build(&fabric)
                .unwrap()
        };
        let a = mk();
        assert_eq!(a, mk(), "same seed, same plan");
        assert_eq!(a.len(), 6, "3 failures + 3 recoveries");
        for w in a.events().windows(2) {
            assert!(w[0].time_ns <= w[1].time_ns);
        }
        let b = FaultPlan::builder()
            .random_link_failures(8, 3, &eligible, (0, 10_000), Some(5_000))
            .build(&fabric)
            .unwrap();
        assert_ne!(a, b, "different seed, different plan");
    }

    #[test]
    fn fault_state_tracks_overlapping_causes() {
        let fabric = ft();
        let mut state = FaultState::healthy(&fabric);
        assert!(!state.any_down());
        // Node 3's injection link is link 3 in the fat-tree layout.
        state.apply(
            &fabric,
            FaultEvent {
                time_ns: 0,
                action: FaultAction::Fail,
                target: FaultTarget::Node(3),
            },
        );
        assert!(!state.node_up(3));
        assert!(!state.link_up(3), "incident link blocked by dead node");
        // Independently fail the same link.
        state.apply(
            &fabric,
            FaultEvent {
                time_ns: 1,
                action: FaultAction::Fail,
                target: FaultTarget::Link(3),
            },
        );
        assert_eq!(state.failed_links(), vec![3]);
        // Node recovery alone does not resurrect the link.
        state.apply(
            &fabric,
            FaultEvent {
                time_ns: 2,
                action: FaultAction::Recover,
                target: FaultTarget::Node(3),
            },
        );
        assert!(state.node_up(3));
        assert!(!state.link_up(3), "explicit link failure persists");
        state.repatch_link(3);
        assert!(state.link_up(3));
        assert!(!state.any_down());
        // Spurious recovery is a no-op.
        state.apply(
            &fabric,
            FaultEvent {
                time_ns: 3,
                action: FaultAction::Recover,
                target: FaultTarget::Node(3),
            },
        );
        assert!(state.node_up(3));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff_ns: 1_000,
            max_backoff_ns: 3_000,
        };
        assert_eq!(p.backoff_ns(1), 1_000);
        assert_eq!(p.backoff_ns(2), 2_000);
        assert_eq!(p.backoff_ns(3), 3_000, "capped");
        assert_eq!(p.backoff_ns(40), 3_000);
        assert_eq!(RetryPolicy::default().attempts(), 4);
        let degenerate = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(degenerate.attempts(), 1);
    }

    #[test]
    fn transit_links_exclude_endpoint_hops() {
        let torus = TorusFabric::new((4, 1, 1)).unwrap();
        // 0 -> 2 is two hops: the first is 0's injection, the last enters 2.
        let flows = [Flow {
            src: 0,
            dst: 2,
            bytes: 64,
            start_ns: 0,
        }];
        assert!(
            transit_links(&torus, &flows).is_empty(),
            "a 2-link path has no transit links"
        );
        let ftree = ft();
        // 0 -> 15 climbs the tree: interior switch links are transit.
        let flows = [Flow {
            src: 0,
            dst: 15,
            bytes: 64,
            start_ns: 0,
        }];
        let transit = transit_links(&ftree, &flows);
        let path = ftree.path(0, 15).unwrap();
        assert_eq!(transit.len(), path.len() - 2);
        assert!(!transit.contains(&path[0]));
        assert!(!transit.contains(path.last().unwrap()));
    }
}
