//! The discrete-event core: per-link FIFO serialization of flows.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::fabric::{Fabric, LinkId};
use crate::obs::EngineObs;
use crate::stats::RunStats;
use crate::traffic::Flow;

/// Unique-pair count above which missing paths are computed on worker
/// threads; below it the spawn cost outweighs the routing work.
const PAR_PATH_THRESHOLD: usize = 64;

/// Memoized per-(src, dst) routes for a static fabric.
///
/// Fabrics never change during a run and application traffic repeats the
/// same pairs (halo exchanges, transposes), so the engine resolves each
/// distinct pair once. A cache can be reused across runs on the **same**
/// fabric — replaying several traffic patterns on one fabric pays the
/// routing cost once — and missing paths are computed in parallel (input
/// order preserved, so results are deterministic).
#[derive(Debug, Default)]
pub struct PathCache {
    slot_of_pair: HashMap<(usize, usize), usize>,
    paths: Vec<Option<Vec<LinkId>>>,
}

impl PathCache {
    /// An empty cache.
    pub fn new() -> Self {
        PathCache::default()
    }

    /// Number of distinct (src, dst) pairs resolved so far.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no pair has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Forgets all cached routes (required before switching fabrics).
    pub fn clear(&mut self) {
        self.slot_of_pair.clear();
        self.paths.clear();
    }

    /// The cached route in slot `slot`.
    #[inline]
    fn path(&self, slot: usize) -> Option<&[LinkId]> {
        self.paths[slot].as_deref()
    }

    /// Resolves every flow's pair (computing missing routes, in parallel
    /// when there are many) and returns each flow's cache slot.
    fn index_flows(
        &mut self,
        fabric: &dyn Fabric,
        flows: &[Flow],
        obs: Option<&EngineObs>,
    ) -> Vec<usize> {
        let mut slots = Vec::with_capacity(flows.len());
        let mut missing: Vec<(usize, usize)> = Vec::new();
        let mut hits = 0u64;
        for f in flows {
            assert!(
                f.src < fabric.nodes() && f.dst < fabric.nodes(),
                "flow endpoints in range"
            );
            let next = self.paths.len() + missing.len();
            let mut fresh = false;
            let slot = *self.slot_of_pair.entry((f.src, f.dst)).or_insert_with(|| {
                missing.push((f.src, f.dst));
                fresh = true;
                next
            });
            if !fresh {
                hits += 1;
            }
            slots.push(slot);
        }
        if let Some(obs) = obs {
            obs.cache_hits.add(hits);
            obs.cache_misses.add(missing.len() as u64);
        }
        if missing.len() >= PAR_PATH_THRESHOLD {
            self.paths
                .extend(hfast_par::par_map(missing, |(s, d)| fabric.path(s, d)));
        } else {
            self.paths
                .extend(missing.into_iter().map(|(s, d)| fabric.path(s, d)));
        }
        slots
    }
}

/// One scheduled simulator event: a flow arriving at hop `hop` of its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_ns: u64,
    /// Tie-break so ordering is fully deterministic.
    seq: u64,
    flow: usize,
    hop: usize,
}

/// Per-flow simulation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Index into the input flow list.
    pub flow: usize,
    /// Injection time.
    pub start_ns: u64,
    /// Delivery time (`None` if the fabric had no route).
    pub end_ns: Option<u64>,
    /// Links traversed.
    pub hops: usize,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Per-flow records; present only for [`Simulation::detailed`] runs.
    pub records: Option<Vec<FlowRecord>>,
}

impl SimOutput {
    /// The per-flow records of a detailed run.
    ///
    /// # Panics
    /// If the run was not configured with [`Simulation::detailed`].
    pub fn records(&self) -> &[FlowRecord] {
        self.records
            .as_deref()
            .expect("records require Simulation::detailed()")
    }
}

/// Builder for one simulation run — the single entry point that replaced
/// the `simulate` / `simulate_with_cache` / `simulate_detailed` /
/// `simulate_detailed_with_cache` sprawl.
///
/// Model: virtual cut-through. The message *header* advances hop by hop,
/// paying each link's fixed latency and waiting where a link is busy; each
/// link stays occupied for the message's serialization time from the moment
/// the header enters it; the tail arrives one serialization time after the
/// header clears the last link. Uncontended end-to-end latency is therefore
/// `Σ latency + bytes/bandwidth` — pipelined, like real cut-through
/// networks — while shared links still contend FIFO.
///
/// ```
/// use hfast_netsim::{engine::PathCache, Simulation, TorusFabric, traffic};
///
/// let torus = TorusFabric::new((4, 4, 1));
/// let flows = traffic::alltoall(16, 4 << 10);
/// let mut cache = PathCache::new();
/// let out = Simulation::new(&torus)
///     .with_cache(&mut cache)
///     .detailed()
///     .run(&flows);
/// assert_eq!(out.stats.completed, flows.len());
/// assert_eq!(out.records().len(), flows.len());
/// ```
#[must_use = "a Simulation does nothing until run()"]
pub struct Simulation<'a> {
    fabric: &'a dyn Fabric,
    cache: Option<&'a mut PathCache>,
    detailed: bool,
    obs: Option<&'a EngineObs>,
}

impl<'a> Simulation<'a> {
    /// A run over `fabric` with default settings: private path cache, no
    /// per-flow records, observability per `HFAST_OBS`.
    pub fn new(fabric: &'a dyn Fabric) -> Self {
        Simulation {
            fabric,
            cache: None,
            detailed: false,
            obs: None,
        }
    }

    /// Reuses a caller-owned [`PathCache`] (valid across runs on the same
    /// fabric; [`PathCache::clear`] it before switching fabrics).
    pub fn with_cache(mut self, cache: &'a mut PathCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Also return per-flow [`FlowRecord`]s.
    pub fn detailed(mut self) -> Self {
        self.detailed = true;
        self
    }

    /// Records engine counters, histograms, and the per-link busy
    /// timeline into `obs` (overrides the `HFAST_OBS`-gated global sink).
    pub fn with_obs(mut self, obs: &'a EngineObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Runs the simulation.
    ///
    /// The event loop is fully deterministic: identical inputs produce
    /// identical [`SimOutput`]s regardless of cache reuse, attached
    /// observability, or thread count.
    pub fn run(self, flows: &[Flow]) -> SimOutput {
        let obs = self
            .obs
            .or_else(|| hfast_obs::enabled().then(crate::obs::global));
        let mut own_cache;
        let cache = match self.cache {
            Some(c) => c,
            None => {
                own_cache = PathCache::new();
                &mut own_cache
            }
        };
        let (stats, records) = run_event_loop(self.fabric, flows, cache, obs);
        SimOutput {
            stats,
            records: self.detailed.then_some(records),
        }
    }
}

/// The event loop shared by every run configuration.
///
/// Flows are resolved to cache slots — one stored route per distinct
/// (src, dst) pair, however many flows repeat it — and the loop reads
/// routes through the cache, so no per-flow path buffers are allocated.
/// Observability is strictly read-from: `obs` never influences event
/// ordering or timing, so an instrumented run returns bit-identical
/// results (asserted by property tests).
fn run_event_loop(
    fabric: &dyn Fabric,
    flows: &[Flow],
    cache: &mut PathCache,
    obs: Option<&EngineObs>,
) -> (RunStats, Vec<FlowRecord>) {
    let flow_slot = cache.index_flows(fabric, flows, obs);

    let mut link_free_at: Vec<u64> = vec![0; fabric.link_count()];
    let mut link_busy_ns: Vec<u64> = vec![0; fabric.link_count()];
    let mut records: Vec<FlowRecord> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| FlowRecord {
            flow: i,
            start_ns: f.start_ns,
            end_ns: None,
            hops: cache.path(flow_slot[i]).map_or(0, <[LinkId]>::len),
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, f) in flows.iter().enumerate() {
        if let Some(p) = cache.path(flow_slot[i]) {
            if p.is_empty() {
                records[i].end_ns = Some(f.start_ns); // self-delivery
                continue;
            }
            heap.push(Reverse(Event {
                time_ns: f.start_ns,
                seq,
                flow: i,
                hop: 0,
            }));
            seq += 1;
        }
    }

    let mut n_events = 0u64;
    let mut heap_peak = heap.len();
    while let Some(Reverse(ev)) = heap.pop() {
        n_events += 1;
        let path = cache
            .path(flow_slot[ev.flow])
            .expect("queued flows have paths");
        let link_id = path[ev.hop];
        let spec = fabric.link(link_id);
        let bytes = flows[ev.flow].bytes;
        let start = ev.time_ns.max(link_free_at[link_id]);
        let serialization = spec.serialize_ns(bytes);
        link_free_at[link_id] = start + serialization;
        link_busy_ns[link_id] += serialization;
        if let Some(obs) = obs {
            obs.queue_wait_ns.record(start - ev.time_ns);
            obs.link_busy(start, serialization, link_id);
        }
        // The header clears this link after the fixed latency; the tail
        // follows one serialization time behind.
        let header_out = start + spec.latency_ns;
        if ev.hop + 1 < path.len() {
            heap.push(Reverse(Event {
                time_ns: header_out,
                seq,
                flow: ev.flow,
                hop: ev.hop + 1,
            }));
            seq += 1;
            heap_peak = heap_peak.max(heap.len());
        } else {
            records[ev.flow].end_ns = Some(header_out + serialization);
        }
    }

    let stats = RunStats::from_records(fabric, flows, &records, &link_busy_ns);
    if let Some(obs) = obs {
        obs.runs.inc();
        obs.flows.add(flows.len() as u64);
        obs.events.add(n_events);
        obs.unrouted.add(stats.unrouted as u64);
        obs.heap_peak.set_max(heap_peak as u64);
        for f in flows {
            obs.flow_bytes.record(f.bytes);
        }
    }
    (stats, records)
}

/// Simulates `flows` over `fabric` and aggregates statistics.
#[deprecated(note = "use Simulation::new(fabric).run(flows).stats")]
pub fn simulate(fabric: &dyn Fabric, flows: &[Flow]) -> RunStats {
    Simulation::new(fabric).run(flows).stats
}

/// [`simulate`] with a caller-owned [`PathCache`].
#[deprecated(note = "use Simulation::new(fabric).with_cache(cache).run(flows).stats")]
pub fn simulate_with_cache(fabric: &dyn Fabric, flows: &[Flow], cache: &mut PathCache) -> RunStats {
    Simulation::new(fabric).with_cache(cache).run(flows).stats
}

/// [`simulate`], additionally returning per-flow records.
#[deprecated(note = "use Simulation::new(fabric).detailed().run(flows)")]
pub fn simulate_detailed(fabric: &dyn Fabric, flows: &[Flow]) -> (RunStats, Vec<FlowRecord>) {
    let out = Simulation::new(fabric).detailed().run(flows);
    let records = out.records.expect("detailed run");
    (out.stats, records)
}

/// [`simulate_detailed`] with a caller-owned [`PathCache`].
#[deprecated(note = "use Simulation::new(fabric).with_cache(cache).detailed().run(flows)")]
pub fn simulate_detailed_with_cache(
    fabric: &dyn Fabric,
    flows: &[Flow],
    cache: &mut PathCache,
) -> (RunStats, Vec<FlowRecord>) {
    let out = Simulation::new(fabric)
        .with_cache(cache)
        .detailed()
        .run(flows);
    let records = out.records.expect("detailed run");
    (out.stats, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{LinkId, LinkSpec};

    /// Two nodes joined by one link each way.
    struct Wire;

    impl Fabric for Wire {
        fn name(&self) -> &str {
            "wire"
        }
        fn nodes(&self) -> usize {
            2
        }
        fn link_count(&self) -> usize {
            2
        }
        fn link(&self, _id: LinkId) -> LinkSpec {
            LinkSpec {
                latency_ns: 100,
                bandwidth: 1.0,
            }
        }
        fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
            if src == dst {
                Some(vec![])
            } else {
                Some(vec![src])
            }
        }
    }

    fn flow(src: usize, dst: usize, bytes: u64, start: u64) -> Flow {
        Flow {
            src,
            dst,
            bytes,
            start_ns: start,
        }
    }

    fn detailed(fabric: &dyn Fabric, flows: &[Flow]) -> (RunStats, Vec<FlowRecord>) {
        let out = Simulation::new(fabric).detailed().run(flows);
        let records = out.records.expect("detailed run");
        (out.stats, records)
    }

    #[test]
    fn single_flow_latency_is_serialization_plus_latency() {
        let (stats, records) = detailed(&Wire, &[flow(0, 1, 1000, 0)]);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.max_latency_ns, 1100);
    }

    #[test]
    fn fifo_contention_serializes() {
        // Two flows on the same link: the second waits for the first's
        // serialization (not its latency).
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 0)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(2100));
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let flows = [flow(0, 1, 1000, 0), flow(1, 0, 1000, 0)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(1100));
    }

    #[test]
    fn self_flow_completes_instantly() {
        let (stats, records) = detailed(&Wire, &[flow(1, 1, 500, 42)]);
        assert_eq!(records[0].end_ns, Some(42));
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn start_times_are_respected() {
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 5000)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[1].end_ns, Some(6100), "no queueing after a gap");
    }

    #[test]
    fn deterministic_across_runs() {
        let flows: Vec<Flow> = (0..50)
            .map(|i| flow(i % 2, (i + 1) % 2, 100 + i as u64, i as u64 * 3))
            .collect();
        let a = Simulation::new(&Wire).run(&flows);
        let b = Simulation::new(&Wire).run(&flows);
        assert_eq!(a, b);
        assert!(a.records.is_none(), "no records unless detailed()");
    }

    #[test]
    fn cache_deduplicates_repeated_pairs() {
        let flows: Vec<Flow> = (0..40)
            .map(|i| flow(i % 2, (i + 1) % 2, 64, i as u64))
            .collect();
        let mut cache = PathCache::new();
        let cached = Simulation::new(&Wire)
            .with_cache(&mut cache)
            .detailed()
            .run(&flows);
        assert_eq!(cache.len(), 2, "only two distinct pairs");
        let fresh = Simulation::new(&Wire).detailed().run(&flows);
        assert_eq!(cached, fresh);
    }

    #[test]
    fn cache_reuse_across_runs_is_identical() {
        let flows_a: Vec<Flow> = (0..10).map(|i| flow(0, 1, 100 + i, i)).collect();
        let flows_b: Vec<Flow> = (0..10).map(|i| flow(1, 0, 50 + i, i * 7)).collect();
        let mut cache = PathCache::new();
        let warm_a = Simulation::new(&Wire).with_cache(&mut cache).run(&flows_a);
        let warm_b = Simulation::new(&Wire).with_cache(&mut cache).run(&flows_b);
        assert_eq!(warm_a, Simulation::new(&Wire).run(&flows_a));
        assert_eq!(warm_b, Simulation::new(&Wire).run(&flows_b));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_wrappers_still_answer() {
        let flows = [flow(0, 1, 1000, 0)];
        let stats = simulate(&Wire, &flows);
        assert_eq!(stats.completed, 1);
        let mut cache = PathCache::new();
        assert_eq!(simulate_with_cache(&Wire, &flows, &mut cache), stats);
        let (s2, recs) = simulate_detailed(&Wire, &flows);
        assert_eq!(s2, stats);
        assert_eq!(recs[0].end_ns, Some(1100));
        cache.clear();
        let (s3, recs3) = simulate_detailed_with_cache(&Wire, &flows, &mut cache);
        assert_eq!((s3, recs3), (s2, recs));
    }

    #[test]
    fn obs_counts_cache_and_events() {
        let obs = EngineObs::new();
        let flows: Vec<Flow> = (0..10).map(|i| flow(0, 1, 64, i)).collect();
        let out = Simulation::new(&Wire).with_obs(&obs).run(&flows);
        assert_eq!(obs.runs.get(), 1);
        assert_eq!(obs.flows.get(), 10);
        assert_eq!(obs.cache_misses.get(), 1, "one distinct pair");
        assert_eq!(obs.cache_hits.get(), 9);
        assert_eq!(obs.events.get(), 10, "one hop per flow");
        assert_eq!(obs.unrouted.get(), 0);
        assert_eq!(obs.flow_bytes.count(), 10);
        assert_eq!(obs.timeline.len(), 10);
        // Nine flows queued behind the first; waits are multiples of the
        // 64-byte serialization time.
        assert_eq!(obs.queue_wait_ns.count(), 10);
        assert_eq!(out.stats.completed, 10);
    }
}
