//! The discrete-event core: per-link FIFO serialization of flows.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::fabric::{Fabric, LinkId};
use crate::stats::RunStats;
use crate::traffic::Flow;

/// Unique-pair count above which missing paths are computed on worker
/// threads; below it the spawn cost outweighs the routing work.
const PAR_PATH_THRESHOLD: usize = 64;

/// Memoized per-(src, dst) routes for a static fabric.
///
/// Fabrics never change during a run and application traffic repeats the
/// same pairs (halo exchanges, transposes), so the engine resolves each
/// distinct pair once. A cache can be reused across `simulate_*` calls on
/// the **same** fabric — replaying several traffic patterns on one fabric
/// pays the routing cost once — and missing paths are computed in parallel
/// (input order preserved, so results are deterministic).
#[derive(Debug, Default)]
pub struct PathCache {
    slot_of_pair: HashMap<(usize, usize), usize>,
    paths: Vec<Option<Vec<LinkId>>>,
}

impl PathCache {
    /// An empty cache.
    pub fn new() -> Self {
        PathCache::default()
    }

    /// Number of distinct (src, dst) pairs resolved so far.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no pair has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Forgets all cached routes (required before switching fabrics).
    pub fn clear(&mut self) {
        self.slot_of_pair.clear();
        self.paths.clear();
    }

    /// The cached route in slot `slot`.
    #[inline]
    fn path(&self, slot: usize) -> Option<&[LinkId]> {
        self.paths[slot].as_deref()
    }

    /// Resolves every flow's pair (computing missing routes, in parallel
    /// when there are many) and returns each flow's cache slot.
    fn index_flows(&mut self, fabric: &dyn Fabric, flows: &[Flow]) -> Vec<usize> {
        let mut slots = Vec::with_capacity(flows.len());
        let mut missing: Vec<(usize, usize)> = Vec::new();
        for f in flows {
            assert!(
                f.src < fabric.nodes() && f.dst < fabric.nodes(),
                "flow endpoints in range"
            );
            let next = self.paths.len() + missing.len();
            let slot = *self.slot_of_pair.entry((f.src, f.dst)).or_insert_with(|| {
                missing.push((f.src, f.dst));
                next
            });
            slots.push(slot);
        }
        if missing.len() >= PAR_PATH_THRESHOLD {
            self.paths
                .extend(hfast_par::par_map(missing, |(s, d)| fabric.path(s, d)));
        } else {
            self.paths
                .extend(missing.into_iter().map(|(s, d)| fabric.path(s, d)));
        }
        slots
    }
}

/// One scheduled simulator event: a flow arriving at hop `hop` of its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_ns: u64,
    /// Tie-break so ordering is fully deterministic.
    seq: u64,
    flow: usize,
    hop: usize,
}

/// Per-flow simulation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Index into the input flow list.
    pub flow: usize,
    /// Injection time.
    pub start_ns: u64,
    /// Delivery time (`None` if the fabric had no route).
    pub end_ns: Option<u64>,
    /// Links traversed.
    pub hops: usize,
}

/// Simulates `flows` over `fabric` and aggregates statistics.
///
/// Model: virtual cut-through. The message *header* advances hop by hop,
/// paying each link's fixed latency and waiting where a link is busy; each
/// link stays occupied for the message's serialization time from the moment
/// the header enters it; the tail arrives one serialization time after the
/// header clears the last link. Uncontended end-to-end latency is therefore
/// `Σ latency + bytes/bandwidth` — pipelined, like real cut-through
/// networks — while shared links still contend FIFO.
pub fn simulate(fabric: &dyn Fabric, flows: &[Flow]) -> RunStats {
    let (stats, _records) = simulate_detailed(fabric, flows);
    stats
}

/// [`simulate`] with a caller-owned [`PathCache`] (reusable across runs on
/// the same fabric).
pub fn simulate_with_cache(fabric: &dyn Fabric, flows: &[Flow], cache: &mut PathCache) -> RunStats {
    let (stats, _records) = simulate_detailed_with_cache(fabric, flows, cache);
    stats
}

/// [`simulate`], additionally returning per-flow records.
pub fn simulate_detailed(fabric: &dyn Fabric, flows: &[Flow]) -> (RunStats, Vec<FlowRecord>) {
    let mut cache = PathCache::new();
    simulate_detailed_with_cache(fabric, flows, &mut cache)
}

/// [`simulate_detailed`] with a caller-owned [`PathCache`].
///
/// Flows are resolved to cache slots — one stored route per distinct
/// (src, dst) pair, however many flows repeat it — and the event loop reads
/// routes through the cache, so no per-flow path buffers are allocated.
/// The event loop itself is unchanged and fully deterministic.
pub fn simulate_detailed_with_cache(
    fabric: &dyn Fabric,
    flows: &[Flow],
    cache: &mut PathCache,
) -> (RunStats, Vec<FlowRecord>) {
    let flow_slot = cache.index_flows(fabric, flows);

    let mut link_free_at: Vec<u64> = vec![0; fabric.link_count()];
    let mut link_busy_ns: Vec<u64> = vec![0; fabric.link_count()];
    let mut records: Vec<FlowRecord> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| FlowRecord {
            flow: i,
            start_ns: f.start_ns,
            end_ns: None,
            hops: cache.path(flow_slot[i]).map_or(0, <[LinkId]>::len),
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, f) in flows.iter().enumerate() {
        if let Some(p) = cache.path(flow_slot[i]) {
            if p.is_empty() {
                records[i].end_ns = Some(f.start_ns); // self-delivery
                continue;
            }
            heap.push(Reverse(Event {
                time_ns: f.start_ns,
                seq,
                flow: i,
                hop: 0,
            }));
            seq += 1;
        }
    }

    while let Some(Reverse(ev)) = heap.pop() {
        let path = cache.path(flow_slot[ev.flow]).expect("queued flows have paths");
        let link_id = path[ev.hop];
        let spec = fabric.link(link_id);
        let bytes = flows[ev.flow].bytes;
        let start = ev.time_ns.max(link_free_at[link_id]);
        let serialization = spec.serialize_ns(bytes);
        link_free_at[link_id] = start + serialization;
        link_busy_ns[link_id] += serialization;
        // The header clears this link after the fixed latency; the tail
        // follows one serialization time behind.
        let header_out = start + spec.latency_ns;
        if ev.hop + 1 < path.len() {
            heap.push(Reverse(Event {
                time_ns: header_out,
                seq,
                flow: ev.flow,
                hop: ev.hop + 1,
            }));
            seq += 1;
        } else {
            records[ev.flow].end_ns = Some(header_out + serialization);
        }
    }

    let stats = RunStats::from_records(fabric, flows, &records, &link_busy_ns);
    (stats, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{LinkId, LinkSpec};

    /// Two nodes joined by one link each way.
    struct Wire;

    impl Fabric for Wire {
        fn name(&self) -> &str {
            "wire"
        }
        fn nodes(&self) -> usize {
            2
        }
        fn link_count(&self) -> usize {
            2
        }
        fn link(&self, _id: LinkId) -> LinkSpec {
            LinkSpec {
                latency_ns: 100,
                bandwidth: 1.0,
            }
        }
        fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
            if src == dst {
                Some(vec![])
            } else {
                Some(vec![src])
            }
        }
    }

    fn flow(src: usize, dst: usize, bytes: u64, start: u64) -> Flow {
        Flow {
            src,
            dst,
            bytes,
            start_ns: start,
        }
    }

    #[test]
    fn single_flow_latency_is_serialization_plus_latency() {
        let (stats, records) = simulate_detailed(&Wire, &[flow(0, 1, 1000, 0)]);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.max_latency_ns, 1100);
    }

    #[test]
    fn fifo_contention_serializes() {
        // Two flows on the same link: the second waits for the first's
        // serialization (not its latency).
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 0)];
        let (_, records) = simulate_detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(2100));
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let flows = [flow(0, 1, 1000, 0), flow(1, 0, 1000, 0)];
        let (_, records) = simulate_detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(1100));
    }

    #[test]
    fn self_flow_completes_instantly() {
        let (stats, records) = simulate_detailed(&Wire, &[flow(1, 1, 500, 42)]);
        assert_eq!(records[0].end_ns, Some(42));
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn start_times_are_respected() {
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 5000)];
        let (_, records) = simulate_detailed(&Wire, &flows);
        assert_eq!(records[1].end_ns, Some(6100), "no queueing after a gap");
    }

    #[test]
    fn deterministic_across_runs() {
        let flows: Vec<Flow> = (0..50)
            .map(|i| flow(i % 2, (i + 1) % 2, 100 + i as u64, i as u64 * 3))
            .collect();
        let (a, _) = simulate_detailed(&Wire, &flows);
        let (b, _) = simulate_detailed(&Wire, &flows);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_deduplicates_repeated_pairs() {
        let flows: Vec<Flow> = (0..40)
            .map(|i| flow(i % 2, (i + 1) % 2, 64, i as u64))
            .collect();
        let mut cache = PathCache::new();
        let (with_cache, recs_cached) = simulate_detailed_with_cache(&Wire, &flows, &mut cache);
        assert_eq!(cache.len(), 2, "only two distinct pairs");
        let (fresh, recs_fresh) = simulate_detailed(&Wire, &flows);
        assert_eq!(with_cache, fresh);
        assert_eq!(recs_cached, recs_fresh);
    }

    #[test]
    fn cache_reuse_across_runs_is_identical() {
        let flows_a: Vec<Flow> = (0..10).map(|i| flow(0, 1, 100 + i, i)).collect();
        let flows_b: Vec<Flow> = (0..10).map(|i| flow(1, 0, 50 + i, i * 7)).collect();
        let mut cache = PathCache::new();
        let warm_a = simulate_with_cache(&Wire, &flows_a, &mut cache);
        let warm_b = simulate_with_cache(&Wire, &flows_b, &mut cache);
        assert_eq!(warm_a, simulate(&Wire, &flows_a));
        assert_eq!(warm_b, simulate(&Wire, &flows_b));
        cache.clear();
        assert!(cache.is_empty());
    }
}
