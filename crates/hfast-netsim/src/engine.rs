//! The discrete-event core: per-link FIFO serialization of flows, with
//! optional runtime fault injection.
//!
//! Fault-free runs use a static loop (one event per flow-hop arrival).
//! Attaching a non-empty [`FaultPlan`] switches to the dynamic loop, where
//! plan events, HFAST sync points, and flow admissions interleave on one
//! simulated-time axis: in-flight flows are killed when their header meets
//! a dead link, re-admitted under a [`RetryPolicy`] with exponential
//! backoff after targeted [`PathCache`] invalidation, and — on fabrics
//! that support it — failed circuits are repatched mid-run through the
//! MEMS crossbar at the next synchronization point.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use hfast_core::ReconfigStep;
use hfast_trace::{engine_span_id, TraceRecorder, Track};

use crate::fabric::{Fabric, LinkId};
use crate::faultplan::{FaultAction, FaultPlan, FaultState, FaultTarget, RetryPolicy};
use crate::obs::EngineObs;
use crate::stats::RunStats;
use crate::traffic::Flow;

/// Unique-pair count above which missing paths are computed on worker
/// threads; below it the spawn cost outweighs the routing work.
pub(crate) const PAR_PATH_THRESHOLD: usize = 64;

/// Memoized per-(src, dst) routes for a static fabric.
///
/// Fabrics never change during a run and application traffic repeats the
/// same pairs (halo exchanges, transposes), so the engine resolves each
/// distinct pair once. A cache can be reused across runs on the **same**
/// fabric — replaying several traffic patterns on one fabric pays the
/// routing cost once — and missing paths are computed in parallel (input
/// order preserved, so results are deterministic).
///
/// Fault runs evict affected routes in place via [`invalidate_link`] /
/// [`invalidate_node`]: the slot stays allocated but is marked stale, and
/// the next resolution of that pair recomputes it. A cache handed to a
/// fault run therefore stays safe to reuse afterwards — every route the
/// faults touched is left stale, so a later run re-derives the primary
/// route instead of inheriting a detour.
///
/// [`invalidate_link`]: PathCache::invalidate_link
/// [`invalidate_node`]: PathCache::invalidate_node
#[derive(Debug, Default, Clone)]
pub struct PathCache {
    slot_of_pair: HashMap<(usize, usize), usize>,
    paths: Vec<Option<Vec<LinkId>>>,
    stale: Vec<bool>,
}

impl PathCache {
    /// An empty cache.
    pub fn new() -> Self {
        PathCache::default()
    }

    /// Number of distinct (src, dst) pairs resolved so far.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no pair has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Forgets all cached routes (required before switching fabrics).
    pub fn clear(&mut self) {
        self.slot_of_pair.clear();
        self.paths.clear();
        self.stale.clear();
    }

    /// The current route for a pair: `None` if the pair was never resolved
    /// or its entry is stale, `Some(None)` if the fabric has no route,
    /// `Some(Some(path))` otherwise.
    pub fn cached(&self, src: usize, dst: usize) -> Option<Option<&[LinkId]>> {
        let &slot = self.slot_of_pair.get(&(src, dst))?;
        if self.stale[slot] {
            return None;
        }
        Some(self.paths[slot].as_deref())
    }

    /// Marks every cached route crossing `link` stale, returning how many
    /// routes were evicted. O(cached pairs) — called per fault event, not
    /// per flow.
    pub fn invalidate_link(&mut self, link: LinkId) -> usize {
        let mut evicted = 0;
        for (slot, path) in self.paths.iter().enumerate() {
            if !self.stale[slot] && path.as_deref().is_some_and(|p| p.contains(&link)) {
                self.stale[slot] = true;
                evicted += 1;
            }
        }
        evicted
    }

    /// Marks every cached route with `node` as an endpoint or crossing any
    /// of its `incident` links stale, returning how many routes were
    /// evicted.
    pub fn invalidate_node(&mut self, node: usize, incident: &[LinkId]) -> usize {
        let mut evicted = 0;
        for (&(src, dst), &slot) in &self.slot_of_pair {
            if self.stale[slot] {
                continue;
            }
            let touches = src == node
                || dst == node
                || self.paths[slot]
                    .as_deref()
                    .is_some_and(|p| p.iter().any(|l| incident.contains(l)));
            if touches {
                self.stale[slot] = true;
                evicted += 1;
            }
        }
        evicted
    }

    /// The cached route in slot `slot`.
    #[inline]
    fn path(&self, slot: usize) -> Option<&[LinkId]> {
        self.paths[slot].as_deref()
    }

    /// Number of allocated slots (fresh or stale). Unlike [`len`], this is
    /// the bound a [`RouteView`] partitions on.
    ///
    /// [`len`]: PathCache::len
    #[inline]
    pub(crate) fn slot_count(&self) -> usize {
        self.paths.len()
    }

    /// The slot of a pair with a *fresh* entry, if any.
    #[inline]
    pub(crate) fn fresh_slot(&self, src: usize, dst: usize) -> Option<usize> {
        let &slot = self.slot_of_pair.get(&(src, dst))?;
        (!self.stale[slot]).then_some(slot)
    }

    /// Stores a resolved route for a pair, allocating or refreshing its
    /// slot (used by warm-cache builders outside a run).
    pub(crate) fn insert_resolved(&mut self, src: usize, dst: usize, path: Option<Vec<LinkId>>) {
        match self.slot_of_pair.get(&(src, dst)) {
            Some(&slot) => {
                self.paths[slot] = path;
                self.stale[slot] = false;
            }
            None => {
                let slot = self.paths.len();
                self.slot_of_pair.insert((src, dst), slot);
                self.paths.push(path);
                self.stale.push(false);
            }
        }
    }

    /// Resolves every flow's pair (computing missing routes, in parallel
    /// when there are many) and returns each flow's cache slot. Stale
    /// entries count as misses and are recomputed from the fabric's
    /// primary routing.
    fn index_flows(
        &mut self,
        fabric: &dyn Fabric,
        flows: &[Flow],
        obs: Option<&EngineObs>,
    ) -> Vec<usize> {
        let mut slots = Vec::with_capacity(flows.len());
        let mut missing: Vec<(usize, usize)> = Vec::new();
        let mut refresh: Vec<(usize, (usize, usize))> = Vec::new();
        let mut hits = 0u64;
        for f in flows {
            assert!(
                f.src < fabric.nodes() && f.dst < fabric.nodes(),
                "flow endpoints in range"
            );
            let next = self.paths.len() + missing.len();
            let mut fresh = false;
            let slot = *self.slot_of_pair.entry((f.src, f.dst)).or_insert_with(|| {
                missing.push((f.src, f.dst));
                fresh = true;
                next
            });
            if !fresh {
                // A slot allocated earlier in this same call has no stale
                // entry yet — it is being computed fresh below.
                if self.stale.get(slot).copied().unwrap_or(false) {
                    // Claim the refresh so a repeated pair is queued once.
                    self.stale[slot] = false;
                    refresh.push((slot, (f.src, f.dst)));
                } else {
                    hits += 1;
                }
            }
            slots.push(slot);
        }
        if let Some(obs) = obs {
            obs.cache_hits.add(hits);
            obs.cache_misses.add((missing.len() + refresh.len()) as u64);
        }
        if missing.len() >= PAR_PATH_THRESHOLD {
            self.paths
                .extend(hfast_par::par_map(missing, |(s, d)| fabric.path(s, d)));
        } else {
            self.paths
                .extend(missing.into_iter().map(|(s, d)| fabric.path(s, d)));
        }
        self.stale.resize(self.paths.len(), false);
        for (slot, (s, d)) in refresh {
            self.paths[slot] = fabric.path(s, d);
        }
        slots
    }
}

/// Resolved routes for one static run: an immutable base cache plus an
/// optional local overlay for pairs the base did not cover.
///
/// Slots below `base_len` index into `base`; slots at or above it index
/// into `extra`. The owned-cache path uses `extra: None` (every slot lands
/// in the caller's cache); the snapshot path leaves the shared base
/// untouched and resolves strictly-new pairs into a run-private overlay,
/// which is what lets many concurrent runs read one warm cache without
/// cloning or locking it.
struct RouteView<'a> {
    base: &'a PathCache,
    base_len: usize,
    extra: Option<PathCache>,
    slots: Vec<usize>,
}

impl RouteView<'_> {
    /// The route of flow `flow`, wherever its slot lives.
    #[inline]
    fn path(&self, flow: usize) -> Option<&[LinkId]> {
        let slot = self.slots[flow];
        if slot < self.base_len {
            self.base.path(slot)
        } else {
            self.extra
                .as_ref()
                .expect("overlay slots require an overlay")
                .path(slot - self.base_len)
        }
    }
}

/// Builds a [`RouteView`] over an immutable snapshot: pairs the snapshot
/// covers (fresh entries) are hits; everything else is resolved into a
/// run-private overlay, in parallel when there are many, exactly like
/// [`PathCache::index_flows`].
fn index_flows_layered<'a>(
    base: &'a PathCache,
    fabric: &dyn Fabric,
    flows: &[Flow],
    obs: Option<&EngineObs>,
) -> RouteView<'a> {
    let base_len = base.slot_count();
    let mut extra = PathCache::new();
    let mut slots = Vec::with_capacity(flows.len());
    let mut missing: Vec<(usize, usize)> = Vec::new();
    let mut hits = 0u64;
    for f in flows {
        assert!(
            f.src < fabric.nodes() && f.dst < fabric.nodes(),
            "flow endpoints in range"
        );
        if let Some(slot) = base.fresh_slot(f.src, f.dst) {
            hits += 1;
            slots.push(slot);
            continue;
        }
        let next = extra.paths.len() + missing.len();
        let mut fresh = false;
        let slot = *extra.slot_of_pair.entry((f.src, f.dst)).or_insert_with(|| {
            missing.push((f.src, f.dst));
            fresh = true;
            next
        });
        if !fresh {
            hits += 1;
        }
        slots.push(base_len + slot);
    }
    if let Some(obs) = obs {
        obs.cache_hits.add(hits);
        obs.cache_misses.add(missing.len() as u64);
    }
    if missing.len() >= PAR_PATH_THRESHOLD {
        extra
            .paths
            .extend(hfast_par::par_map(missing, |(s, d)| fabric.path(s, d)));
    } else {
        extra
            .paths
            .extend(missing.into_iter().map(|(s, d)| fabric.path(s, d)));
    }
    extra.stale.resize(extra.paths.len(), false);
    RouteView {
        base,
        base_len,
        extra: Some(extra),
        slots,
    }
}

/// One scheduled simulator event: a flow arriving at hop `hop` of its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_ns: u64,
    /// Tie-break so ordering is fully deterministic.
    seq: u64,
    flow: usize,
    hop: usize,
}

/// Per-flow simulation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Index into the input flow list.
    pub flow: usize,
    /// Injection time.
    pub start_ns: u64,
    /// Delivery time (`None` if the fabric had no route or the flow was
    /// abandoned).
    pub end_ns: Option<u64>,
    /// Links traversed (of the delivering route).
    pub hops: usize,
    /// Re-admissions this flow needed (0 in fault-free runs).
    pub retries: u32,
    /// True if the retry policy gave up on this flow.
    pub abandoned: bool,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Per-flow records; present only for [`Simulation::detailed`] runs.
    pub records: Option<Vec<FlowRecord>>,
    /// Mid-run circuit re-provisioning rounds, in sync-point order (empty
    /// unless faults hit a reprovision-capable fabric).
    pub reprovisions: Vec<ReconfigStep>,
}

impl SimOutput {
    /// The per-flow records of a detailed run.
    ///
    /// # Panics
    /// If the run was not configured with [`Simulation::detailed`].
    pub fn records(&self) -> &[FlowRecord] {
        self.records
            .as_deref()
            .expect("records require Simulation::detailed()")
    }
}

/// Builder for one simulation run — the single entry point for fault-free
/// and fault-injected replays alike.
///
/// Model: virtual cut-through. The message *header* advances hop by hop,
/// paying each link's fixed latency and waiting where a link is busy; each
/// link stays occupied for the message's serialization time from the moment
/// the header enters it; the tail arrives one serialization time after the
/// header clears the last link. Uncontended end-to-end latency is therefore
/// `Σ latency + bytes/bandwidth` — pipelined, like real cut-through
/// networks — while shared links still contend FIFO.
///
/// ```
/// use hfast_netsim::{engine::PathCache, Simulation, TorusFabric, traffic};
///
/// let torus = TorusFabric::new((4, 4, 1)).unwrap();
/// let flows = traffic::alltoall(16, 4 << 10);
/// let mut cache = PathCache::new();
/// let out = Simulation::new(&torus)
///     .with_cache(&mut cache)
///     .detailed()
///     .run(&flows);
/// assert_eq!(out.stats.completed, flows.len());
/// assert_eq!(out.records().len(), flows.len());
/// ```
///
/// Injecting faults:
///
/// ```
/// use hfast_netsim::{FaultPlan, RetryPolicy, Simulation, TorusFabric, traffic};
///
/// let torus = TorusFabric::new((4, 4, 1)).unwrap();
/// let flows = traffic::alltoall(16, 4 << 10);
/// let plan = FaultPlan::builder()
///     .fail_link(0, 0)
///     .recover_link(60_000, 0)
///     .build(&torus)
///     .unwrap();
/// let out = Simulation::new(&torus)
///     .with_faults(&plan)
///     .with_retry(RetryPolicy::default())
///     .run(&flows);
/// assert_eq!(out.stats.completed + out.stats.unrouted, flows.len());
/// ```
#[must_use = "a Simulation does nothing until run()"]
pub struct Simulation<'a> {
    fabric: &'a dyn Fabric,
    cache: Option<&'a mut PathCache>,
    snapshot: Option<&'a PathCache>,
    detailed: bool,
    obs: Option<&'a EngineObs>,
    trace: Option<&'a TraceRecorder>,
    faults: Option<&'a FaultPlan>,
    retry: RetryPolicy,
    reprovision_interval_ns: Option<u64>,
}

impl<'a> Simulation<'a> {
    /// A run over `fabric` with default settings: private path cache, no
    /// per-flow records, observability per `HFAST_OBS`, no faults.
    pub fn new(fabric: &'a dyn Fabric) -> Self {
        Simulation {
            fabric,
            cache: None,
            snapshot: None,
            detailed: false,
            obs: None,
            trace: None,
            faults: None,
            retry: RetryPolicy::default(),
            reprovision_interval_ns: None,
        }
    }

    /// Reuses a caller-owned [`PathCache`] (valid across runs on the same
    /// fabric; [`PathCache::clear`] it before switching fabrics).
    pub fn with_cache(mut self, cache: &'a mut PathCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Reads routes from an immutable warm-cache snapshot (see
    /// [`SharedPathCache`](crate::SharedPathCache)) instead of resolving
    /// them privately: pairs the snapshot covers cost nothing, and only
    /// strictly-new pairs are routed into a run-private overlay. Because
    /// the snapshot is never written, any number of concurrent runs can
    /// share one `Arc<PathCache>` — this is what fixes the cold-start
    /// rescan a fresh private cache forces on every run.
    ///
    /// The snapshot must describe the same fabric. [`with_cache`] takes
    /// precedence when both are set; fault runs, which rewrite routes
    /// mid-flight, seed their private cache from a clone of the snapshot.
    ///
    /// Results are bit-identical to a run with a private cache (asserted
    /// by property tests).
    ///
    /// [`with_cache`]: Simulation::with_cache
    pub fn with_snapshot(mut self, snapshot: &'a PathCache) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Also return per-flow [`FlowRecord`]s.
    pub fn detailed(mut self) -> Self {
        self.detailed = true;
        self
    }

    /// Records engine counters, histograms, and the per-link busy
    /// timeline into `obs` (overrides the `HFAST_OBS`-gated global sink).
    pub fn with_obs(mut self, obs: &'a EngineObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Records causal spans into `recorder`: one `flow` span per flow on
    /// the engine track (timestamped with simulated time, span ids from
    /// the flow index — fully deterministic) and one `hop` span per link
    /// crossing on that link's track, parented to the flow span with the
    /// queueing delay as a `wait` field. Fault kills, retries, and
    /// repatches land as annotations. Never changes results.
    pub fn with_trace(mut self, recorder: &'a TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Replays `plan`'s failures and recoveries during the run. An empty
    /// plan leaves the output bit-identical to a run without one.
    pub fn with_faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the [`RetryPolicy`] used when faults kill flows.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables mid-run circuit re-provisioning at sync points spaced
    /// `interval_ns` apart: when a reprovisionable link fails (see
    /// [`Fabric::reprovisionable`]), the repair is batched to the next
    /// multiple of `interval_ns` and the batch pays one
    /// [`CircuitSwitch::RECONFIG_LATENCY_NS`](hfast_core::CircuitSwitch::RECONFIG_LATENCY_NS).
    /// A no-op on fabrics without reprovisionable links (fat tree, torus).
    ///
    /// # Panics
    /// If `interval_ns` is zero.
    pub fn with_reprovision(mut self, interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "sync interval must be positive");
        self.reprovision_interval_ns = Some(interval_ns);
        self
    }

    /// Runs the simulation.
    ///
    /// The event loop is fully deterministic: identical inputs produce
    /// identical [`SimOutput`]s regardless of cache reuse, attached
    /// observability, or thread count.
    pub fn run(self, flows: &[Flow]) -> SimOutput {
        let obs = self
            .obs
            .or_else(|| hfast_obs::enabled().then(crate::obs::global));
        match self.faults {
            Some(plan) if !plan.is_empty() => {
                // The dynamic loop rewrites routes in place (detours,
                // invalidations), so a shared snapshot cannot back it
                // directly — clone it into the run-private cache instead,
                // which still saves the cold resolution work.
                let mut own_cache;
                let cache = match self.cache {
                    Some(c) => c,
                    None => {
                        own_cache = self.snapshot.cloned().unwrap_or_default();
                        &mut own_cache
                    }
                };
                let dyn_run = FaultRun {
                    fabric: self.fabric,
                    plan,
                    retry: self.retry,
                    reprovision_interval_ns: self.reprovision_interval_ns,
                    trace: self.trace,
                };
                let (stats, records, reprovisions) = dyn_run.run(flows, cache, obs);
                SimOutput {
                    stats,
                    records: self.detailed.then_some(records),
                    reprovisions,
                }
            }
            _ => {
                let mut own_cache;
                let routes = match (self.cache, self.snapshot) {
                    (Some(cache), _) => {
                        let slots = cache.index_flows(self.fabric, flows, obs);
                        let base_len = cache.slot_count();
                        RouteView {
                            base: cache,
                            base_len,
                            extra: None,
                            slots,
                        }
                    }
                    (None, Some(snap)) => index_flows_layered(snap, self.fabric, flows, obs),
                    (None, None) => {
                        own_cache = PathCache::new();
                        let slots = own_cache.index_flows(self.fabric, flows, obs);
                        let base_len = own_cache.slot_count();
                        RouteView {
                            base: &own_cache,
                            base_len,
                            extra: None,
                            slots,
                        }
                    }
                };
                let (stats, records) = run_event_loop(self.fabric, flows, &routes, obs, self.trace);
                SimOutput {
                    stats,
                    records: self.detailed.then_some(records),
                    reprovisions: Vec::new(),
                }
            }
        }
    }
}

/// The static event loop shared by every fault-free run configuration.
///
/// Flows are resolved to cache slots — one stored route per distinct
/// (src, dst) pair, however many flows repeat it — and the loop reads
/// routes through a [`RouteView`], so no per-flow path buffers are
/// allocated and a shared snapshot is never written. Observability is
/// strictly read-from: `obs` never influences event ordering or timing,
/// so an instrumented run returns bit-identical results (asserted by
/// property tests).
fn run_event_loop(
    fabric: &dyn Fabric,
    flows: &[Flow],
    routes: &RouteView<'_>,
    obs: Option<&EngineObs>,
    trace: Option<&TraceRecorder>,
) -> (RunStats, Vec<FlowRecord>) {
    let mut link_free_at: Vec<u64> = vec![0; fabric.link_count()];
    let mut link_busy_ns: Vec<u64> = vec![0; fabric.link_count()];
    let mut records: Vec<FlowRecord> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| FlowRecord {
            flow: i,
            start_ns: f.start_ns,
            end_ns: None,
            hops: routes.path(i).map_or(0, <[LinkId]>::len),
            retries: 0,
            abandoned: false,
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, f) in flows.iter().enumerate() {
        if let Some(p) = routes.path(i) {
            if p.is_empty() {
                records[i].end_ns = Some(f.start_ns); // self-delivery
                continue;
            }
            heap.push(Reverse(Event {
                time_ns: f.start_ns,
                seq,
                flow: i,
                hop: 0,
            }));
            seq += 1;
        }
    }

    let mut n_events = 0u64;
    let mut heap_peak = heap.len();
    while let Some(Reverse(ev)) = heap.pop() {
        n_events += 1;
        let path = routes.path(ev.flow).expect("queued flows have paths");
        let link_id = path[ev.hop];
        let spec = fabric.link(link_id);
        let bytes = flows[ev.flow].bytes;
        let start = ev.time_ns.max(link_free_at[link_id]);
        let serialization = spec.serialize_ns(bytes);
        link_free_at[link_id] = start + serialization;
        link_busy_ns[link_id] += serialization;
        if let Some(obs) = obs {
            obs.queue_wait_ns.record(start - ev.time_ns);
            obs.link_busy(start, serialization, link_id);
        }
        if let Some(tr) = trace {
            tr.record_span(
                Track::Link(link_id),
                "hop",
                start,
                serialization,
                0,
                engine_span_id(ev.flow as u64 + 1),
                vec![("wait", start - ev.time_ns), ("flow", ev.flow as u64)],
            );
        }
        // The header clears this link after the fixed latency; the tail
        // follows one serialization time behind.
        let header_out = start + spec.latency_ns;
        if ev.hop + 1 < path.len() {
            heap.push(Reverse(Event {
                time_ns: header_out,
                seq,
                flow: ev.flow,
                hop: ev.hop + 1,
            }));
            seq += 1;
            heap_peak = heap_peak.max(heap.len());
        } else {
            records[ev.flow].end_ns = Some(header_out + serialization);
        }
    }

    if let Some(tr) = trace {
        record_flow_spans(tr, flows, &records);
    }

    let stats = RunStats::from_records(fabric, flows, &records, &link_busy_ns);
    if let Some(obs) = obs {
        obs.runs.inc();
        obs.flows.add(flows.len() as u64);
        obs.events.add(n_events);
        obs.unrouted.add(stats.unrouted as u64);
        obs.heap_peak.set_max(heap_peak as u64);
        for f in flows {
            obs.flow_bytes.record(f.bytes);
        }
    }
    (stats, records)
}

/// Records one `flow` span (or terminal instant) per flow on the engine
/// track; its span id (`engine_span_id(index + 1)`) is what every hop
/// span recorded during the run parented itself to. Self-deliveries cross
/// no link and leave no span.
fn record_flow_spans(trace: &TraceRecorder, flows: &[Flow], records: &[FlowRecord]) {
    for (i, (f, r)) in flows.iter().zip(records).enumerate() {
        let span_id = engine_span_id(i as u64 + 1);
        let fields = vec![
            ("src", f.src as u64),
            ("dst", f.dst as u64),
            ("bytes", f.bytes),
            ("retries", u64::from(r.retries)),
        ];
        match r.end_ns {
            Some(end) if end > r.start_ns => {
                trace.record_span(
                    Track::Engine,
                    "flow",
                    r.start_ns,
                    end - r.start_ns,
                    span_id,
                    0,
                    fields,
                );
            }
            Some(_) => {}
            None => {
                trace.record_span(
                    Track::Engine,
                    if r.abandoned {
                        "flow_abandoned"
                    } else {
                        "flow_unrouted"
                    },
                    r.start_ns,
                    0,
                    span_id,
                    0,
                    fields,
                );
            }
        }
    }
}

/// Event classes of the dynamic loop. At equal timestamps topology changes
/// apply first, then pending repatches complete, then sync points fire,
/// then flow traffic moves — so a flow admitted at the instant of a failure
/// already sees the failure, matching the static loop's "state before
/// traffic" reading.
const CLASS_FAULT: u8 = 0;
const CLASS_REPATCH: u8 = 1;
const CLASS_SYNC: u8 = 2;
const CLASS_FLOW: u8 = 3;

/// One dynamic-loop event; `Ord` derives over (time, class, seq), making
/// the processing order independent of heap internals and thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct DynEvent {
    time_ns: u64,
    class: u8,
    seq: u64,
    kind: DynKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum DynKind {
    /// Apply plan event `idx`.
    Fault(usize),
    /// Complete re-provisioning batch `idx`.
    Repatch(usize),
    /// HFAST synchronization point: collect failed circuits for repatch.
    Sync,
    /// (Re-)admit flow `idx`: resolve a route and claim its first link.
    Admit(usize),
    /// Flow `.0`'s header arrives at hop `.1` of its current route.
    Arrive(usize, usize),
}

/// The dynamic fault-injection run (configuration plus the loop).
struct FaultRun<'a> {
    fabric: &'a dyn Fabric,
    plan: &'a FaultPlan,
    retry: RetryPolicy,
    reprovision_interval_ns: Option<u64>,
    trace: Option<&'a TraceRecorder>,
}

impl FaultRun<'_> {
    fn run(
        &self,
        flows: &[Flow],
        cache: &mut PathCache,
        obs: Option<&EngineObs>,
    ) -> (RunStats, Vec<FlowRecord>, Vec<ReconfigStep>) {
        let fabric = self.fabric;
        let flow_slot = cache.index_flows(fabric, flows, obs);
        let mut state = FaultState::healthy(fabric);

        let mut link_free_at: Vec<u64> = vec![0; fabric.link_count()];
        let mut link_busy_ns: Vec<u64> = vec![0; fabric.link_count()];
        let mut records: Vec<FlowRecord> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| FlowRecord {
                flow: i,
                start_ns: f.start_ns,
                end_ns: None,
                hops: 0,
                retries: 0,
                abandoned: false,
            })
            .collect();
        // Each flow owns its admitted route: cache slots can be rewritten
        // by later resolutions while the flow is still in flight.
        let mut route: Vec<Option<Vec<LinkId>>> = vec![None; flows.len()];
        let mut admissions: Vec<u32> = vec![0; flows.len()];
        let mut first_fail: Vec<Option<u64>> = vec![None; flows.len()];
        // Slots rewritten while components were down: their routes are
        // fault-era detours, re-marked stale at the end of the run so a
        // reused cache re-derives primary routes.
        let mut dirty: BTreeSet<usize> = BTreeSet::new();

        let mut heap: BinaryHeap<Reverse<DynEvent>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (idx, ev) in self.plan.events().iter().enumerate() {
            heap.push(Reverse(DynEvent {
                time_ns: ev.time_ns,
                class: CLASS_FAULT,
                seq,
                kind: DynKind::Fault(idx),
            }));
            seq += 1;
        }
        for (i, f) in flows.iter().enumerate() {
            heap.push(Reverse(DynEvent {
                time_ns: f.start_ns,
                class: CLASS_FLOW,
                seq,
                kind: DynKind::Admit(i),
            }));
            seq += 1;
        }

        // Distinct pairs with byte weights, for circuit-coverage snapshots
        // around each re-provisioning round.
        let mut pair_weight: Vec<((usize, usize), u64)> = Vec::new();
        {
            let mut acc: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
            for f in flows {
                *acc.entry((f.src, f.dst)).or_insert(0) += f.bytes;
            }
            pair_weight.extend(acc);
        }
        let coverage = |state: &FaultState| -> f64 {
            let mut covered = 0u64;
            let mut total = 0u64;
            for &((s, d), w) in &pair_weight {
                total += w;
                if fabric.path_avoiding(s, d, state).is_some() {
                    covered += w;
                }
            }
            if total == 0 {
                1.0
            } else {
                covered as f64 / total as f64
            }
        };

        let mut sync_pending = false;
        let mut batches: Vec<(Vec<LinkId>, f64)> = Vec::new();
        let mut reprovisions: Vec<ReconfigStep> = Vec::new();
        let mut n_events = 0u64;
        let mut heap_peak = heap.len();

        while let Some(Reverse(ev)) = heap.pop() {
            n_events += 1;
            let now = ev.time_ns;
            match ev.kind {
                DynKind::Fault(idx) => {
                    let fe = self.plan.events()[idx];
                    let incident = state.apply(fabric, fe);
                    let evicted = match fe.target {
                        FaultTarget::Link(l) => match fe.action {
                            FaultAction::Fail => cache.invalidate_link(l),
                            FaultAction::Recover => 0,
                        },
                        FaultTarget::Node(n) => match fe.action {
                            FaultAction::Fail => cache.invalidate_node(n, &incident),
                            FaultAction::Recover => 0,
                        },
                    };
                    if let Some(obs) = obs {
                        obs.cache_evictions.add(evicted as u64);
                        let (kind, id) = match (fe.action, fe.target) {
                            (FaultAction::Fail, FaultTarget::Link(l)) => ("link_fail", l),
                            (FaultAction::Recover, FaultTarget::Link(l)) => ("link_recover", l),
                            (FaultAction::Fail, FaultTarget::Node(n)) => ("node_fail", n),
                            (FaultAction::Recover, FaultTarget::Node(n)) => ("node_recover", n),
                        };
                        match fe.action {
                            FaultAction::Fail => obs.faults.inc(),
                            FaultAction::Recover => obs.recoveries.inc(),
                        }
                        obs.fault_event(now, kind, id);
                    }
                    if let Some(tr) = self.trace {
                        // Fault instants: link events annotate the link's
                        // own track; node events land on the engine track.
                        let (name, track, field) = match (fe.action, fe.target) {
                            (FaultAction::Fail, FaultTarget::Link(l)) => {
                                ("link_fail", Track::Link(l), ("link", l as u64))
                            }
                            (FaultAction::Recover, FaultTarget::Link(l)) => {
                                ("link_recover", Track::Link(l), ("link", l as u64))
                            }
                            (FaultAction::Fail, FaultTarget::Node(n)) => {
                                ("node_fail", Track::Engine, ("node", n as u64))
                            }
                            (FaultAction::Recover, FaultTarget::Node(n)) => {
                                ("node_recover", Track::Engine, ("node", n as u64))
                            }
                        };
                        tr.record_span(track, name, now, 0, 0, 0, vec![field]);
                    }
                    // A repairable circuit failure books the next sync
                    // point (once; later failures join the same batch).
                    if let (Some(interval), FaultAction::Fail, FaultTarget::Link(l)) =
                        (self.reprovision_interval_ns, fe.action, fe.target)
                    {
                        if fabric.reprovisionable(l) && !sync_pending {
                            sync_pending = true;
                            heap.push(Reverse(DynEvent {
                                time_ns: (now / interval + 1) * interval,
                                class: CLASS_SYNC,
                                seq,
                                kind: DynKind::Sync,
                            }));
                            seq += 1;
                        }
                    }
                }
                DynKind::Sync => {
                    let batch: Vec<LinkId> = state
                        .failed_links()
                        .into_iter()
                        .filter(|&l| fabric.reprovisionable(l))
                        .collect();
                    if batch.is_empty() {
                        // Everything already recovered on its own.
                        sync_pending = false;
                        continue;
                    }
                    let cov_before = coverage(&state);
                    let done_at = now + hfast_core::CircuitSwitch::RECONFIG_LATENCY_NS;
                    if let Some(tr) = self.trace {
                        tr.record_span(
                            Track::Reconfig,
                            "sync_point",
                            now,
                            0,
                            0,
                            0,
                            vec![("failed_circuits", batch.len() as u64)],
                        );
                    }
                    batches.push((batch, cov_before));
                    heap.push(Reverse(DynEvent {
                        time_ns: done_at,
                        class: CLASS_REPATCH,
                        seq,
                        kind: DynKind::Repatch(batches.len() - 1),
                    }));
                    seq += 1;
                }
                DynKind::Repatch(idx) => {
                    let (batch, cov_before) = batches[idx].clone();
                    for &l in &batch {
                        state.repatch_link(l);
                    }
                    // Fault-era detours may now be worse than the repaired
                    // primary: force those pairs to re-resolve.
                    for &slot in &dirty {
                        cache.stale[slot] = true;
                    }
                    let cov_after = coverage(&state);
                    if let Some(tr) = self.trace {
                        // The batch occupied the crossbar from its sync
                        // point until now; span ids continue past the flow
                        // id range so both stay unique in one recorder.
                        let latency = hfast_core::CircuitSwitch::RECONFIG_LATENCY_NS;
                        tr.record_span(
                            Track::Reconfig,
                            "reprovision",
                            now.saturating_sub(latency),
                            latency,
                            engine_span_id(flows.len() as u64 + 1 + idx as u64),
                            0,
                            vec![
                                ("circuits", batch.len() as u64),
                                ("coverage_before_permille", (cov_before * 1000.0) as u64),
                                ("coverage_after_permille", (cov_after * 1000.0) as u64),
                            ],
                        );
                    }
                    reprovisions.push(ReconfigStep::repatch(batch.len(), cov_before, cov_after));
                    if let Some(obs) = obs {
                        obs.reprovisions.inc();
                        obs.repatched_links.add(batch.len() as u64);
                        obs.fault_event(now, "reprovision", batch.len());
                    }
                    sync_pending = false;
                    // Circuits that failed during the repatch window get
                    // their own round.
                    if let Some(interval) = self.reprovision_interval_ns {
                        if state
                            .failed_links()
                            .iter()
                            .any(|&l| fabric.reprovisionable(l))
                        {
                            sync_pending = true;
                            heap.push(Reverse(DynEvent {
                                time_ns: (now / interval + 1) * interval,
                                class: CLASS_SYNC,
                                seq,
                                kind: DynKind::Sync,
                            }));
                            seq += 1;
                        }
                    }
                }
                DynKind::Admit(flow) => {
                    admissions[flow] += 1;
                    let slot = flow_slot[flow];
                    let resolved =
                        Self::resolve(cache, slot, fabric, &state, flows[flow], &mut dirty);
                    match resolved {
                        Resolution::Route(r) => {
                            records[flow].hops = r.len();
                            if r.is_empty() {
                                records[flow].end_ns = Some(now); // self-delivery
                                continue;
                            }
                            route[flow] = Some(r);
                            self.advance(
                                flow,
                                0,
                                now,
                                flows,
                                &state,
                                &route,
                                &mut records,
                                &mut link_free_at,
                                &mut link_busy_ns,
                                obs,
                                &mut heap,
                                &mut seq,
                                &mut admissions,
                                &mut first_fail,
                                false,
                            );
                        }
                        Resolution::Unreachable => {
                            // The topology itself has no route; retrying
                            // cannot help (matches the static loop).
                            if let Some(obs) = obs {
                                obs.unrouted.inc();
                            }
                        }
                        Resolution::Blocked => {
                            self.reschedule(
                                flow,
                                now,
                                &mut records,
                                &mut heap,
                                &mut seq,
                                &mut admissions,
                                &mut first_fail,
                                obs,
                            );
                        }
                    }
                }
                DynKind::Arrive(flow, hop) => {
                    self.advance(
                        flow,
                        hop,
                        now,
                        flows,
                        &state,
                        &route,
                        &mut records,
                        &mut link_free_at,
                        &mut link_busy_ns,
                        obs,
                        &mut heap,
                        &mut seq,
                        &mut admissions,
                        &mut first_fail,
                        true,
                    );
                }
            }
            heap_peak = heap_peak.max(heap.len());
        }

        // Leave no fault-era route behind for the next (possibly
        // fault-free) user of this cache.
        for slot in dirty {
            cache.stale[slot] = true;
        }

        if let Some(tr) = self.trace {
            record_flow_spans(tr, flows, &records);
        }

        let stats = RunStats::from_records(fabric, flows, &records, &link_busy_ns);
        if let Some(obs) = obs {
            obs.runs.inc();
            obs.flows.add(flows.len() as u64);
            obs.events.add(n_events);
            obs.heap_peak.set_max(heap_peak as u64);
            for f in flows {
                obs.flow_bytes.record(f.bytes);
            }
        }
        (stats, records, reprovisions)
    }

    /// Resolves the current best route for `flow`'s pair through the
    /// cache, recomputing via [`Fabric::path_avoiding`] when the stored
    /// route is stale or blocked.
    fn resolve(
        cache: &mut PathCache,
        slot: usize,
        fabric: &dyn Fabric,
        state: &FaultState,
        flow: Flow,
        dirty: &mut BTreeSet<usize>,
    ) -> Resolution {
        if !cache.stale[slot] {
            match &cache.paths[slot] {
                Some(p) if !state.blocks(p) => return Resolution::Route(p.clone()),
                None => return Resolution::Unreachable,
                Some(_) => {}
            }
        }
        match fabric.path_avoiding(flow.src, flow.dst, state) {
            Some(r) => {
                cache.paths[slot] = Some(r.clone());
                cache.stale[slot] = false;
                if state.any_down() {
                    dirty.insert(slot);
                } else {
                    dirty.remove(&slot);
                }
                Resolution::Route(r)
            }
            None => {
                if state.any_down() {
                    Resolution::Blocked
                } else {
                    // Healthy fabric, still no route: permanently
                    // unreachable. Cache the verdict.
                    cache.paths[slot] = None;
                    cache.stale[slot] = false;
                    dirty.remove(&slot);
                    Resolution::Unreachable
                }
            }
        }
    }

    /// Moves `flow`'s header onto hop `hop` at time `now`: kills the
    /// attempt if the link is down, otherwise claims the link FIFO exactly
    /// like the static loop and schedules the next hop or the delivery.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        flow: usize,
        hop: usize,
        now: u64,
        flows: &[Flow],
        state: &FaultState,
        route: &[Option<Vec<LinkId>>],
        records: &mut [FlowRecord],
        link_free_at: &mut [u64],
        link_busy_ns: &mut [u64],
        obs: Option<&EngineObs>,
        heap: &mut BinaryHeap<Reverse<DynEvent>>,
        seq: &mut u64,
        admissions: &mut [u32],
        first_fail: &mut [Option<u64>],
        in_flight: bool,
    ) {
        let path = route[flow].as_deref().expect("admitted flows have routes");
        let link_id = path[hop];
        if !state.link_up(link_id) {
            // Lazy kill: the header met a dead link.
            if in_flight {
                if let Some(obs) = obs {
                    obs.flow_kills.inc();
                }
            }
            if let Some(tr) = self.trace {
                tr.record_span(
                    Track::Link(link_id),
                    "flow_kill",
                    now,
                    0,
                    0,
                    engine_span_id(flow as u64 + 1),
                    vec![("flow", flow as u64), ("hop", hop as u64)],
                );
            }
            self.reschedule(flow, now, records, heap, seq, admissions, first_fail, obs);
            return;
        }
        let spec = self.fabric.link(link_id);
        let bytes = flows[flow].bytes;
        let start = now.max(link_free_at[link_id]);
        let serialization = spec.serialize_ns(bytes);
        link_free_at[link_id] = start + serialization;
        link_busy_ns[link_id] += serialization;
        if let Some(obs) = obs {
            obs.queue_wait_ns.record(start - now);
            obs.link_busy(start, serialization, link_id);
        }
        if let Some(tr) = self.trace {
            tr.record_span(
                Track::Link(link_id),
                "hop",
                start,
                serialization,
                0,
                engine_span_id(flow as u64 + 1),
                vec![("wait", start - now), ("flow", flow as u64)],
            );
        }
        let header_out = start + spec.latency_ns;
        if hop + 1 < path.len() {
            heap.push(Reverse(DynEvent {
                time_ns: header_out,
                class: CLASS_FLOW,
                seq: *seq,
                kind: DynKind::Arrive(flow, hop + 1),
            }));
            *seq += 1;
        } else {
            let end = header_out + serialization;
            records[flow].end_ns = Some(end);
            if let (Some(obs), Some(t0)) = (obs, first_fail[flow]) {
                obs.reroute_latency_ns.record(end.saturating_sub(t0));
            }
        }
    }

    /// Books a retry for a failed attempt, or abandons the flow once the
    /// policy's attempt budget is spent.
    #[allow(clippy::too_many_arguments)]
    fn reschedule(
        &self,
        flow: usize,
        now: u64,
        records: &mut [FlowRecord],
        heap: &mut BinaryHeap<Reverse<DynEvent>>,
        seq: &mut u64,
        admissions: &mut [u32],
        first_fail: &mut [Option<u64>],
        obs: Option<&EngineObs>,
    ) {
        if first_fail[flow].is_none() {
            first_fail[flow] = Some(now);
        }
        let failed = admissions[flow];
        if failed < self.retry.attempts() {
            records[flow].retries += 1;
            if let Some(obs) = obs {
                obs.retries.inc();
            }
            if let Some(tr) = self.trace {
                tr.record_span(
                    Track::Engine,
                    "flow_retry",
                    now,
                    0,
                    0,
                    engine_span_id(flow as u64 + 1),
                    vec![("flow", flow as u64), ("attempt", u64::from(failed))],
                );
            }
            heap.push(Reverse(DynEvent {
                time_ns: now + self.retry.backoff_ns(failed),
                class: CLASS_FLOW,
                seq: *seq,
                kind: DynKind::Admit(flow),
            }));
            *seq += 1;
        } else {
            records[flow].abandoned = true;
            if let Some(obs) = obs {
                obs.abandoned_flows.inc();
                obs.unrouted.inc();
            }
        }
    }
}

/// Outcome of one route resolution under the current fault state.
enum Resolution {
    /// A live route (possibly a detour).
    Route(Vec<LinkId>),
    /// The healthy topology has no route for this pair; never retried.
    Unreachable,
    /// Everything is blocked by active faults; worth retrying.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{LinkId, LinkSpec};

    /// Two nodes joined by one link each way.
    struct Wire;

    impl Fabric for Wire {
        fn name(&self) -> &str {
            "wire"
        }
        fn nodes(&self) -> usize {
            2
        }
        fn link_count(&self) -> usize {
            2
        }
        fn link(&self, _id: LinkId) -> LinkSpec {
            LinkSpec {
                latency_ns: 100,
                bandwidth: 1.0,
            }
        }
        fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
            if src == dst {
                Some(vec![])
            } else {
                Some(vec![src])
            }
        }
        fn incident_links(&self, node: usize) -> Vec<LinkId> {
            vec![node]
        }
    }

    fn flow(src: usize, dst: usize, bytes: u64, start: u64) -> Flow {
        Flow {
            src,
            dst,
            bytes,
            start_ns: start,
        }
    }

    fn detailed(fabric: &dyn Fabric, flows: &[Flow]) -> (RunStats, Vec<FlowRecord>) {
        let out = Simulation::new(fabric).detailed().run(flows);
        let records = out.records.expect("detailed run");
        (out.stats, records)
    }

    #[test]
    fn single_flow_latency_is_serialization_plus_latency() {
        let (stats, records) = detailed(&Wire, &[flow(0, 1, 1000, 0)]);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.max_latency_ns, 1100);
    }

    #[test]
    fn fifo_contention_serializes() {
        // Two flows on the same link: the second waits for the first's
        // serialization (not its latency).
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 0)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(2100));
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let flows = [flow(0, 1, 1000, 0), flow(1, 0, 1000, 0)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(1100));
    }

    #[test]
    fn self_flow_completes_instantly() {
        let (stats, records) = detailed(&Wire, &[flow(1, 1, 500, 42)]);
        assert_eq!(records[0].end_ns, Some(42));
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn start_times_are_respected() {
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 5000)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[1].end_ns, Some(6100), "no queueing after a gap");
    }

    #[test]
    fn deterministic_across_runs() {
        let flows: Vec<Flow> = (0..50)
            .map(|i| flow(i % 2, (i + 1) % 2, 100 + i as u64, i as u64 * 3))
            .collect();
        let a = Simulation::new(&Wire).run(&flows);
        let b = Simulation::new(&Wire).run(&flows);
        assert_eq!(a, b);
        assert!(a.records.is_none(), "no records unless detailed()");
    }

    #[test]
    fn cache_deduplicates_repeated_pairs() {
        let flows: Vec<Flow> = (0..40)
            .map(|i| flow(i % 2, (i + 1) % 2, 64, i as u64))
            .collect();
        let mut cache = PathCache::new();
        let cached = Simulation::new(&Wire)
            .with_cache(&mut cache)
            .detailed()
            .run(&flows);
        assert_eq!(cache.len(), 2, "only two distinct pairs");
        let fresh = Simulation::new(&Wire).detailed().run(&flows);
        assert_eq!(cached, fresh);
    }

    #[test]
    fn cache_reuse_across_runs_is_identical() {
        let flows_a: Vec<Flow> = (0..10).map(|i| flow(0, 1, 100 + i, i)).collect();
        let flows_b: Vec<Flow> = (0..10).map(|i| flow(1, 0, 50 + i, i * 7)).collect();
        let mut cache = PathCache::new();
        let warm_a = Simulation::new(&Wire).with_cache(&mut cache).run(&flows_a);
        let warm_b = Simulation::new(&Wire).with_cache(&mut cache).run(&flows_b);
        assert_eq!(warm_a, Simulation::new(&Wire).run(&flows_a));
        assert_eq!(warm_b, Simulation::new(&Wire).run(&flows_b));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn obs_counts_cache_and_events() {
        let obs = EngineObs::new();
        let flows: Vec<Flow> = (0..10).map(|i| flow(0, 1, 64, i)).collect();
        let out = Simulation::new(&Wire).with_obs(&obs).run(&flows);
        assert_eq!(obs.runs.get(), 1);
        assert_eq!(obs.flows.get(), 10);
        assert_eq!(obs.cache_misses.get(), 1, "one distinct pair");
        assert_eq!(obs.cache_hits.get(), 9);
        assert_eq!(obs.events.get(), 10, "one hop per flow");
        assert_eq!(obs.unrouted.get(), 0);
        assert_eq!(obs.flow_bytes.count(), 10);
        assert_eq!(obs.timeline.len(), 10);
        // Nine flows queued behind the first; waits are multiples of the
        // 64-byte serialization time.
        assert_eq!(obs.queue_wait_ns.count(), 10);
        assert_eq!(out.stats.completed, 10);
    }

    #[test]
    fn targeted_invalidation_recomputes_on_next_index() {
        let mut cache = PathCache::new();
        let flows = [flow(0, 1, 64, 0), flow(1, 0, 64, 0)];
        Simulation::new(&Wire).with_cache(&mut cache).run(&flows);
        assert_eq!(cache.cached(0, 1), Some(Some(&[0usize][..])));
        assert_eq!(cache.invalidate_link(0), 1, "only 0→1 crosses link 0");
        assert_eq!(cache.cached(0, 1), None, "stale entries read as absent");
        assert_eq!(cache.cached(1, 0), Some(Some(&[1usize][..])));
        assert_eq!(
            cache.invalidate_node(0, &[0]),
            1,
            "only the still-fresh 1→0 entry is left to evict"
        );
        // A fresh run repopulates the stale slots in place.
        let again = Simulation::new(&Wire).with_cache(&mut cache).run(&flows);
        assert_eq!(again.stats.completed, 2);
        assert_eq!(cache.cached(0, 1), Some(Some(&[0usize][..])));
        assert_eq!(cache.len(), 2, "slots reused, not reallocated");
    }

    #[test]
    fn transient_failure_is_retried_and_delivered() {
        // Link 0 dies before the flow starts and recovers at t = 10 µs;
        // the default policy retries into the recovery window.
        let plan = FaultPlan::builder()
            .fail_link(0, 0)
            .recover_link(10_000, 0)
            .build(&Wire)
            .unwrap();
        let out = Simulation::new(&Wire)
            .with_faults(&plan)
            .detailed()
            .run(&[flow(0, 1, 1000, 5)]);
        let rec = out.records()[0];
        assert!(rec.retries >= 1, "at least one re-admission");
        assert!(!rec.abandoned);
        let end = rec.end_ns.expect("delivered after recovery");
        assert!(end >= 10_000 + 1100, "delivery after the link came back");
        assert_eq!(out.stats.completed, 1);
        assert_eq!(out.stats.total_retries, u64::from(rec.retries));
    }

    #[test]
    fn permanent_failure_abandons_after_budget() {
        let plan = FaultPlan::builder().fail_link(0, 0).build(&Wire).unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 100,
            max_backoff_ns: 1_000,
        };
        let out = Simulation::new(&Wire)
            .with_faults(&plan)
            .with_retry(policy)
            .detailed()
            .run(&[flow(0, 1, 1000, 5), flow(1, 0, 1000, 5)]);
        let dead = out.records()[0];
        assert!(dead.abandoned);
        assert_eq!(dead.end_ns, None);
        assert_eq!(dead.retries, 2, "attempts 2 and 3 were retries");
        let alive = out.records()[1];
        assert_eq!(alive.end_ns, Some(1105), "reverse direction unaffected");
        assert_eq!(out.stats.completed, 1);
        assert_eq!(out.stats.unrouted, 1);
        assert_eq!(out.stats.abandoned, 1);
    }

    #[test]
    fn node_failure_kills_incident_traffic() {
        let plan = FaultPlan::builder().fail_node(0, 0).build(&Wire).unwrap();
        let out = Simulation::new(&Wire)
            .with_faults(&plan)
            .with_retry(RetryPolicy {
                max_attempts: 2,
                base_backoff_ns: 10,
                max_backoff_ns: 10,
            })
            .detailed()
            .run(&[flow(0, 1, 100, 0), flow(1, 0, 100, 0)]);
        // Node 0 is down: it can neither send (0→1) nor receive (1→0).
        assert!(out.records()[0].abandoned);
        assert!(out.records()[1].abandoned, "a dead node cannot receive");
    }

    #[test]
    fn failed_link_blocks_new_admissions() {
        // The first flow claims the link at t = 0, before the failure at
        // t = 50, and sails through. The second admits at t = 60, finds
        // the link down, and retries into the recovery window.
        let obs = EngineObs::new();
        let plan = FaultPlan::builder()
            .fail_link(50, 0)
            .recover_link(5_000, 0)
            .build(&Wire)
            .unwrap();
        let out = Simulation::new(&Wire)
            .with_faults(&plan)
            .with_obs(&obs)
            .detailed()
            .run(&[flow(0, 1, 1000, 0), flow(0, 1, 1000, 60)]);
        assert_eq!(out.records()[0].end_ns, Some(1100), "first flow launched");
        let second = out.records()[1];
        assert!(second.retries >= 1);
        assert!(second.end_ns.unwrap() > 5_000);
        assert_eq!(obs.retries.get(), u64::from(second.retries));
        assert!(obs.faults.get() == 1 && obs.recoveries.get() == 1);
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let flows: Vec<Flow> = (0..30)
            .map(|i| flow(i % 2, (i + 1) % 2, 256 + i as u64, i as u64 * 11))
            .collect();
        let plain = Simulation::new(&Wire).detailed().run(&flows);
        let empty = FaultPlan::default();
        let with_plan = Simulation::new(&Wire)
            .with_faults(&empty)
            .detailed()
            .run(&flows);
        assert_eq!(plain, with_plan);
        assert!(with_plan.reprovisions.is_empty());
    }
}
