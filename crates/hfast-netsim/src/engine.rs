//! The discrete-event core: per-link FIFO serialization of flows, with
//! optional runtime fault injection.
//!
//! Fault-free runs use a static loop (one event per flow-hop arrival).
//! Attaching a non-empty [`FaultPlan`] switches to the dynamic loop, where
//! plan events, HFAST sync points, and flow admissions interleave on one
//! simulated-time axis: in-flight flows are killed when their header meets
//! a dead link, re-admitted under a [`RetryPolicy`] with exponential
//! backoff after targeted [`PathCache`] invalidation, and — on fabrics
//! that support it — failed circuits are repatched mid-run through the
//! MEMS crossbar at the next synchronization point.
//!
//! Both loops schedule through one calendar-queue [`Scheduler`] over a
//! flat SoA event arena (see [`crate::queue`]) instead of a
//! `BinaryHeap<Reverse<Event>>`: events are `u32` indices into parallel
//! columns, routes are interned once per run into a flat link arena, and
//! per-event work touches dense per-run tables (latency, bandwidth,
//! route offsets) rather than virtual calls and hash probes. On top of
//! the sequential rewrite the static loop can execute conservative
//! lookahead windows in parallel (`HFAST_THREADS` /
//! [`Simulation::with_threads`]) while preserving the deterministic
//! `(time_ns, class, seq)` total order, so any thread count produces
//! byte-identical [`SimOutput`]s — the invariant every release asserts.

use std::collections::{BTreeSet, HashMap};
use std::hash::{BuildHasher, Hasher};

use hfast_core::ReconfigStep;
use hfast_trace::{engine_span_id, TraceRecorder, Track};

use crate::congestion::CreditConfig;
use crate::fabric::{Fabric, LinkId, LinkSpec};
use crate::faultplan::{FaultAction, FaultPlan, FaultState, FaultTarget, RetryPolicy};
use crate::obs::EngineObs;
use crate::queue::{FlowQueue, Scheduler};
use crate::stats::RunStats;
use crate::traffic::Flow;

/// Unique-pair count above which missing paths are computed on worker
/// threads; below it the spawn cost outweighs the routing work.
pub(crate) const PAR_PATH_THRESHOLD: usize = 64;

/// Batch size below which a drained lookahead window is executed inline:
/// fanning a handful of events out to workers costs more than the events.
const PAR_BATCH_MIN: usize = 64;

/// Per-slot state: fresh entries have no bits set; [`STALE_BIT`] marks an
/// entry whose route must be re-derived; [`NOROUTE_BIT`] caches the "this
/// pair is unreachable in the healthy fabric" verdict.
const STALE_BIT: u8 = 1;
const NOROUTE_BIT: u8 = 2;

/// `(src, dst)` packed into the cache's hash key.
#[inline]
fn pair_key(src: usize, dst: usize) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// A multiply-mix hasher for the packed pair keys: one SplitMix64
/// finalizer instead of SipHash's rounds. Pair interning runs once per
/// flow per run, so this is on the run-setup critical path.
#[derive(Debug, Clone, Default)]
struct PairHashBuilder;

impl BuildHasher for PairHashBuilder {
    type Hasher = PairHasher;
    fn build_hasher(&self) -> PairHasher {
        PairHasher(0)
    }
}

#[derive(Debug)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (unused by the pair map).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Memoized per-(src, dst) routes for a static fabric.
///
/// Fabrics never change during a run and application traffic repeats the
/// same pairs (halo exchanges, transposes), so the engine resolves each
/// distinct pair once. A cache can be reused across runs on the **same**
/// fabric — replaying several traffic patterns on one fabric pays the
/// routing cost once — and missing paths are computed in parallel (input
/// order preserved, so results are deterministic).
///
/// Internally the cache is an interned slot table: each pair owns a `u32`
/// slot whose route lives in one flat link arena (`offs`/`lens` spans
/// into `links`) and whose freshness is a per-slot state byte. Fault runs
/// evict affected routes in place via [`invalidate_link`] /
/// [`invalidate_node`] — one indexed store per evicted slot, no hash
/// probing — and the slot stays allocated, so the next resolution of that
/// pair recomputes it. A cache handed to a fault run therefore stays safe
/// to reuse afterwards: every route the faults touched is left stale, so
/// a later run re-derives the primary route instead of inheriting a
/// detour.
///
/// [`invalidate_link`]: PathCache::invalidate_link
/// [`invalidate_node`]: PathCache::invalidate_node
#[derive(Debug, Default, Clone)]
pub struct PathCache {
    slot_of_pair: HashMap<u64, u32, PairHashBuilder>,
    /// Slot → its (src, dst) pair, densely iterable for node invalidation.
    pairs: Vec<(u32, u32)>,
    /// Slot → start of its route span in `links`.
    offs: Vec<u32>,
    /// Slot → length of its route span.
    lens: Vec<u32>,
    /// Flat route arena: every slot's links, concatenated. Rewrites (fault
    /// detours) append a fresh span and abandon the old one.
    links: Vec<LinkId>,
    /// Slot → [`STALE_BIT`] | [`NOROUTE_BIT`] state byte.
    state: Vec<u8>,
}

impl PathCache {
    /// An empty cache.
    pub fn new() -> Self {
        PathCache::default()
    }

    /// Number of distinct (src, dst) pairs resolved so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pair has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Forgets all cached routes (required before switching fabrics).
    pub fn clear(&mut self) {
        self.slot_of_pair.clear();
        self.pairs.clear();
        self.offs.clear();
        self.lens.clear();
        self.links.clear();
        self.state.clear();
    }

    /// The current route for a pair: `None` if the pair was never resolved
    /// or its entry is stale, `Some(None)` if the fabric has no route,
    /// `Some(Some(path))` otherwise.
    pub fn cached(&self, src: usize, dst: usize) -> Option<Option<&[LinkId]>> {
        let &slot = self.slot_of_pair.get(&pair_key(src, dst))?;
        if self.state[slot as usize] & STALE_BIT != 0 {
            return None;
        }
        Some(self.path(slot as usize))
    }

    /// Marks every cached route crossing `link` stale, returning how many
    /// routes were evicted. O(cached pairs) over the dense slot table —
    /// called per fault event, not per flow — and each eviction is one
    /// indexed store into the state column.
    pub fn invalidate_link(&mut self, link: LinkId) -> usize {
        let mut evicted = 0;
        for slot in 0..self.state.len() {
            if self.state[slot] != 0 {
                continue; // stale already, or no route to cross the link
            }
            let off = self.offs[slot] as usize;
            let len = self.lens[slot] as usize;
            if self.links[off..off + len].contains(&link) {
                self.state[slot] |= STALE_BIT;
                evicted += 1;
            }
        }
        evicted
    }

    /// Marks every cached route with `node` as an endpoint or crossing any
    /// of its `incident` links stale, returning how many routes were
    /// evicted.
    pub fn invalidate_node(&mut self, node: usize, incident: &[LinkId]) -> usize {
        let node = node as u32;
        let mut evicted = 0;
        for (slot, &(src, dst)) in self.pairs.iter().enumerate() {
            if self.state[slot] & STALE_BIT != 0 {
                continue;
            }
            let touches = src == node
                || dst == node
                || self
                    .path(slot)
                    .is_some_and(|p| p.iter().any(|l| incident.contains(l)));
            if touches {
                self.state[slot] |= STALE_BIT;
                evicted += 1;
            }
        }
        evicted
    }

    /// Marks the cached routes for exactly the given (src, dst) pairs stale
    /// (both orientations), returning how many routes were evicted. This is
    /// the targeted eviction path for incremental re-provisioning: an
    /// [`ReprovisionOutcome`](hfast_core::ReprovisionOutcome) names the pairs
    /// whose circuits moved, and only those slots pay a recompute — O(pairs
    /// touched) hash probes instead of an O(cached pairs) sweep.
    pub fn invalidate_pairs(&mut self, pairs: &[(usize, usize)]) -> usize {
        let mut evicted = 0;
        for &(a, b) in pairs {
            for key in [pair_key(a, b), pair_key(b, a)] {
                if let Some(&slot) = self.slot_of_pair.get(&key) {
                    let slot = slot as usize;
                    if self.state[slot] & STALE_BIT == 0 {
                        self.state[slot] |= STALE_BIT;
                        evicted += 1;
                    }
                }
            }
        }
        evicted
    }

    /// The cached route in slot `slot` (ignoring staleness): `None` for a
    /// cached unreachable verdict.
    #[inline]
    fn path(&self, slot: usize) -> Option<&[LinkId]> {
        if self.state[slot] & NOROUTE_BIT != 0 {
            return None;
        }
        let off = self.offs[slot] as usize;
        Some(&self.links[off..off + self.lens[slot] as usize])
    }

    /// True if the slot's entry must be re-derived before use.
    #[inline]
    fn is_stale(&self, slot: usize) -> bool {
        self.state[slot] & STALE_BIT != 0
    }

    /// Marks one slot stale: a single indexed store.
    #[inline]
    fn mark_stale(&mut self, slot: usize) {
        self.state[slot] |= STALE_BIT;
    }

    /// Appends a new slot for `pair` holding `route`.
    fn push_slot(&mut self, src: u32, dst: u32, route: Option<&[LinkId]>) {
        self.pairs.push((src, dst));
        self.offs.push(self.links.len() as u32);
        match route {
            Some(p) => {
                self.links.extend_from_slice(p);
                self.lens.push(p.len() as u32);
                self.state.push(0);
            }
            None => {
                self.lens.push(0);
                self.state.push(NOROUTE_BIT);
            }
        }
    }

    /// Overwrites slot `slot`'s route and marks it fresh. New routes
    /// append a fresh arena span (the old span is abandoned — only fault
    /// runs rewrite, so the garbage is bounded by detour churn).
    fn set_route(&mut self, slot: usize, route: Option<&[LinkId]>) {
        match route {
            Some(p) => {
                self.offs[slot] = self.links.len() as u32;
                self.links.extend_from_slice(p);
                self.lens[slot] = p.len() as u32;
                self.state[slot] = 0;
            }
            None => {
                self.lens[slot] = 0;
                self.state[slot] = NOROUTE_BIT;
            }
        }
    }

    /// Number of allocated slots (fresh or stale). Unlike [`len`], this is
    /// the bound a [`RouteView`] partitions on.
    ///
    /// [`len`]: PathCache::len
    #[inline]
    pub(crate) fn slot_count(&self) -> usize {
        self.pairs.len()
    }

    /// The slot of a pair with a *fresh* entry, if any.
    #[inline]
    pub(crate) fn fresh_slot(&self, src: usize, dst: usize) -> Option<usize> {
        let &slot = self.slot_of_pair.get(&pair_key(src, dst))?;
        (self.state[slot as usize] & STALE_BIT == 0).then_some(slot as usize)
    }

    /// Stores a resolved route for a pair, allocating or refreshing its
    /// slot (used by warm-cache builders outside a run).
    pub(crate) fn insert_resolved(&mut self, src: usize, dst: usize, path: Option<Vec<LinkId>>) {
        match self.slot_of_pair.get(&pair_key(src, dst)) {
            Some(&slot) => self.set_route(slot as usize, path.as_deref()),
            None => {
                self.slot_of_pair
                    .insert(pair_key(src, dst), self.pairs.len() as u32);
                self.push_slot(src as u32, dst as u32, path.as_deref());
            }
        }
    }

    /// Resolves every flow's pair (computing missing routes, in parallel
    /// when there are many) and returns each flow's cache slot. Stale
    /// entries count as misses and are recomputed from the fabric's
    /// primary routing.
    fn index_flows(
        &mut self,
        fabric: &dyn Fabric,
        flows: &[Flow],
        obs: Option<&EngineObs>,
    ) -> Vec<usize> {
        let mut slots = Vec::with_capacity(flows.len());
        let mut missing: Vec<(u32, u32)> = Vec::new();
        let mut refresh: Vec<u32> = Vec::new();
        let mut hits = 0u64;
        let base = self.pairs.len();
        for f in flows {
            assert!(
                f.src < fabric.nodes() && f.dst < fabric.nodes(),
                "flow endpoints in range"
            );
            let next = (base + missing.len()) as u32;
            let mut fresh = false;
            let slot = *self
                .slot_of_pair
                .entry(pair_key(f.src, f.dst))
                .or_insert_with(|| {
                    missing.push((f.src as u32, f.dst as u32));
                    fresh = true;
                    next
                });
            if !fresh {
                let s = slot as usize;
                // A slot allocated earlier in this same call has no state
                // byte yet — it is being computed fresh below.
                if s < self.state.len() && self.state[s] & STALE_BIT != 0 {
                    // Claim the refresh so a repeated pair is queued once.
                    self.state[s] &= !STALE_BIT;
                    refresh.push(slot);
                } else {
                    hits += 1;
                }
            }
            slots.push(slot as usize);
        }
        if let Some(obs) = obs {
            obs.cache_hits.add(hits);
            obs.cache_misses.add((missing.len() + refresh.len()) as u64);
        }
        let routed: Vec<Option<Vec<LinkId>>> = if missing.len() >= PAR_PATH_THRESHOLD {
            hfast_par::par_map(missing.clone(), |(s, d)| {
                fabric.path(s as usize, d as usize)
            })
        } else {
            missing
                .iter()
                .map(|&(s, d)| fabric.path(s as usize, d as usize))
                .collect()
        };
        for (&(s, d), path) in missing.iter().zip(&routed) {
            self.push_slot(s, d, path.as_deref());
        }
        for slot in refresh {
            let (s, d) = self.pairs[slot as usize];
            let path = fabric.path(s as usize, d as usize);
            self.set_route(slot as usize, path.as_deref());
        }
        slots
    }
}

/// Resolved routes for one static run: an immutable base cache plus an
/// optional local overlay for pairs the base did not cover.
///
/// Slots below `base_len` index into `base`; slots at or above it index
/// into `extra`. The owned-cache path uses `extra: None` (every slot lands
/// in the caller's cache); the snapshot path leaves the shared base
/// untouched and resolves strictly-new pairs into a run-private overlay,
/// which is what lets many concurrent runs read one warm cache without
/// cloning or locking it.
struct RouteView<'a> {
    base: &'a PathCache,
    base_len: usize,
    extra: Option<PathCache>,
    slots: Vec<usize>,
}

impl RouteView<'_> {
    /// The route of flow `flow`, wherever its slot lives.
    #[inline]
    fn path(&self, flow: usize) -> Option<&[LinkId]> {
        let slot = self.slots[flow];
        if slot < self.base_len {
            self.base.path(slot)
        } else {
            self.extra
                .as_ref()
                .expect("overlay slots require an overlay")
                .path(slot - self.base_len)
        }
    }
}

/// Builds a [`RouteView`] over an immutable snapshot: pairs the snapshot
/// covers (fresh entries) are hits; everything else is resolved into a
/// run-private overlay, in parallel when there are many, exactly like
/// [`PathCache::index_flows`].
fn index_flows_layered<'a>(
    base: &'a PathCache,
    fabric: &dyn Fabric,
    flows: &[Flow],
    obs: Option<&EngineObs>,
) -> RouteView<'a> {
    let base_len = base.slot_count();
    let mut extra = PathCache::new();
    let mut slots = Vec::with_capacity(flows.len());
    let mut missing: Vec<(u32, u32)> = Vec::new();
    let mut hits = 0u64;
    for f in flows {
        assert!(
            f.src < fabric.nodes() && f.dst < fabric.nodes(),
            "flow endpoints in range"
        );
        if let Some(slot) = base.fresh_slot(f.src, f.dst) {
            hits += 1;
            slots.push(slot);
            continue;
        }
        let next = missing.len() as u32;
        let mut fresh = false;
        let slot = *extra
            .slot_of_pair
            .entry(pair_key(f.src, f.dst))
            .or_insert_with(|| {
                missing.push((f.src as u32, f.dst as u32));
                fresh = true;
                next
            });
        if !fresh {
            hits += 1;
        }
        slots.push(base_len + slot as usize);
    }
    if let Some(obs) = obs {
        obs.cache_hits.add(hits);
        obs.cache_misses.add(missing.len() as u64);
    }
    let routed: Vec<Option<Vec<LinkId>>> = if missing.len() >= PAR_PATH_THRESHOLD {
        hfast_par::par_map(missing.clone(), |(s, d)| {
            fabric.path(s as usize, d as usize)
        })
    } else {
        missing
            .iter()
            .map(|&(s, d)| fabric.path(s as usize, d as usize))
            .collect()
    };
    for (&(s, d), path) in missing.iter().zip(&routed) {
        extra.push_slot(s, d, path.as_deref());
    }
    RouteView {
        base,
        base_len,
        extra: Some(extra),
        slots,
    }
}

/// Per-flow simulation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Index into the input flow list.
    pub flow: usize,
    /// Injection time.
    pub start_ns: u64,
    /// Delivery time (`None` if the fabric had no route or the flow was
    /// abandoned).
    pub end_ns: Option<u64>,
    /// Links traversed (of the delivering route).
    pub hops: usize,
    /// Re-admissions this flow needed (0 in fault-free runs).
    pub retries: u32,
    /// True if the retry policy gave up on this flow.
    pub abandoned: bool,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// Per-flow records; present only for [`Simulation::detailed`] runs.
    pub records: Option<Vec<FlowRecord>>,
    /// Mid-run circuit re-provisioning rounds, in sync-point order (empty
    /// unless faults hit a reprovision-capable fabric).
    pub reprovisions: Vec<ReconfigStep>,
    /// Event-loop execution metrics for this run. The **only**
    /// wall-clock-derived data in a `SimOutput`: everything else is
    /// deterministic simulated output, so equality checks and digests
    /// must ignore this field.
    pub perf: LoopPerf,
}

/// Simulated-output equality: compares `stats`, `records`, and
/// `reprovisions`; `perf` is wall-clock and deliberately excluded, so
/// two deterministic replays compare equal.
impl PartialEq for SimOutput {
    fn eq(&self, other: &Self) -> bool {
        self.stats == other.stats
            && self.records == other.records
            && self.reprovisions == other.reprovisions
    }
}

/// How much work the event loop did and how fast it did it: the
/// benchmark currency of the engine (`speedup/eventloop_*` in
/// `BENCH_<tag>.json` is computed from these numbers).
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopPerf {
    /// Events the loop processed (hop arrivals, plus fault, sync,
    /// repatch, and admission events on dynamic runs).
    pub events: u64,
    /// Wall-clock nanoseconds spent inside the event loop proper —
    /// excludes route resolution, table setup, and statistics
    /// aggregation.
    pub loop_ns: u64,
}

impl LoopPerf {
    /// Events per wall-clock second, `0.0` for an instant loop.
    pub fn events_per_sec(&self) -> f64 {
        if self.loop_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.loop_ns as f64
        }
    }
}

impl SimOutput {
    /// The per-flow records of a detailed run.
    ///
    /// # Panics
    /// If the run was not configured with [`Simulation::detailed`].
    pub fn records(&self) -> &[FlowRecord] {
        self.records
            .as_deref()
            .expect("records require Simulation::detailed()")
    }
}

/// Worker count for the static loop's lookahead windows: an explicitly
/// set `HFAST_THREADS` wins; unset (or 1) keeps the plain sequential
/// loop. Unlike [`hfast_par::thread_count`] this does **not** fall back
/// to the machine's available parallelism — windowed execution is an
/// opt-in, so default runs stay on the fastest single-thread path.
fn engine_threads() -> usize {
    std::env::var("HFAST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Builder for one simulation run — the single entry point for fault-free
/// and fault-injected replays alike.
///
/// Model: virtual cut-through. The message *header* advances hop by hop,
/// paying each link's fixed latency and waiting where a link is busy; each
/// link stays occupied for the message's serialization time from the moment
/// the header enters it; the tail arrives one serialization time after the
/// header clears the last link. Uncontended end-to-end latency is therefore
/// `Σ latency + bytes/bandwidth` — pipelined, like real cut-through
/// networks — while shared links still contend FIFO.
///
/// ```
/// use hfast_netsim::{engine::PathCache, Simulation, TorusFabric, traffic};
///
/// let torus = TorusFabric::new((4, 4, 1)).unwrap();
/// let flows = traffic::alltoall(16, 4 << 10);
/// let mut cache = PathCache::new();
/// let out = Simulation::new(&torus)
///     .with_cache(&mut cache)
///     .detailed()
///     .run(&flows);
/// assert_eq!(out.stats.completed, flows.len());
/// assert_eq!(out.records().len(), flows.len());
/// ```
///
/// Injecting faults:
///
/// ```
/// use hfast_netsim::{FaultPlan, RetryPolicy, Simulation, TorusFabric, traffic};
///
/// let torus = TorusFabric::new((4, 4, 1)).unwrap();
/// let flows = traffic::alltoall(16, 4 << 10);
/// let plan = FaultPlan::builder()
///     .fail_link(0, 0)
///     .recover_link(60_000, 0)
///     .build(&torus)
///     .unwrap();
/// let out = Simulation::new(&torus)
///     .with_faults(&plan)
///     .with_retry(RetryPolicy::default())
///     .run(&flows);
/// assert_eq!(out.stats.completed + out.stats.unrouted, flows.len());
/// ```
#[must_use = "a Simulation does nothing until run()"]
pub struct Simulation<'a> {
    fabric: &'a dyn Fabric,
    cache: Option<&'a mut PathCache>,
    snapshot: Option<&'a PathCache>,
    detailed: bool,
    obs: Option<&'a EngineObs>,
    trace: Option<&'a TraceRecorder>,
    faults: Option<&'a FaultPlan>,
    retry: RetryPolicy,
    reprovision_interval_ns: Option<u64>,
    threads: Option<usize>,
    congestion: CreditConfig,
}

impl<'a> Simulation<'a> {
    /// A run over `fabric` with default settings: private path cache, no
    /// per-flow records, observability per `HFAST_OBS`, no faults.
    pub fn new(fabric: &'a dyn Fabric) -> Self {
        Simulation {
            fabric,
            cache: None,
            snapshot: None,
            detailed: false,
            obs: None,
            trace: None,
            faults: None,
            retry: RetryPolicy::default(),
            reprovision_interval_ns: None,
            threads: None,
            congestion: CreditConfig::default(),
        }
    }

    /// Reuses a caller-owned [`PathCache`] (valid across runs on the same
    /// fabric; [`PathCache::clear`] it before switching fabrics).
    pub fn with_cache(mut self, cache: &'a mut PathCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Reads routes from an immutable warm-cache snapshot (see
    /// [`SharedPathCache`](crate::SharedPathCache)) instead of resolving
    /// them privately: pairs the snapshot covers cost nothing, and only
    /// strictly-new pairs are routed into a run-private overlay. Because
    /// the snapshot is never written, any number of concurrent runs can
    /// share one `Arc<PathCache>` — this is what fixes the cold-start
    /// rescan a fresh private cache forces on every run.
    ///
    /// The snapshot must describe the same fabric. [`with_cache`] takes
    /// precedence when both are set; fault runs, which rewrite routes
    /// mid-flight, seed their private cache from a clone of the snapshot.
    ///
    /// Results are bit-identical to a run with a private cache (asserted
    /// by property tests).
    ///
    /// [`with_cache`]: Simulation::with_cache
    pub fn with_snapshot(mut self, snapshot: &'a PathCache) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Also return per-flow [`FlowRecord`]s.
    pub fn detailed(mut self) -> Self {
        self.detailed = true;
        self
    }

    /// Records engine counters, histograms, and the per-link busy
    /// timeline into `obs` (overrides the `HFAST_OBS`-gated global sink).
    pub fn with_obs(mut self, obs: &'a EngineObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Records causal spans into `recorder`: one `flow` span per flow on
    /// the engine track (timestamped with simulated time, span ids from
    /// the flow index — fully deterministic) and one `hop` span per link
    /// crossing on that link's track, parented to the flow span with the
    /// queueing delay as a `wait` field. Fault kills, retries, and
    /// repatches land as annotations. Never changes results.
    pub fn with_trace(mut self, recorder: &'a TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Replays `plan`'s failures and recoveries during the run. An empty
    /// plan leaves the output bit-identical to a run without one.
    pub fn with_faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Overrides the [`RetryPolicy`] used when faults kill flows.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Executes the static loop's conservative lookahead windows on
    /// `threads` workers (overriding `HFAST_THREADS`). `1` is the plain
    /// sequential loop. Results are byte-identical for every thread count
    /// — the windowed executor preserves the `(time_ns, class, seq)`
    /// total order (property-tested) — so this only trades wall-clock
    /// for cores. Fault runs are always sequential.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Selects the link model (see [`crate::congestion`]).
    /// [`CongestionMode::Ideal`](crate::CongestionMode::Ideal) — the
    /// default — leaves every existing code path untouched, so outputs
    /// are byte-identical to a builder that never mentions congestion.
    /// [`CongestionMode::Credit`](crate::CongestionMode::Credit) routes
    /// the run through the credit-based flow-control loop: finite
    /// per-link buffers, head-of-line blocking, congestion trees. Credit
    /// runs are strictly sequential (thread settings are ignored) and do
    /// not model mid-run re-provisioning.
    pub fn with_congestion(mut self, config: CreditConfig) -> Self {
        self.congestion = config;
        self
    }

    /// Enables mid-run circuit re-provisioning at sync points spaced
    /// `interval_ns` apart: when a reprovisionable link fails (see
    /// [`Fabric::reprovisionable`]), the repair is batched to the next
    /// multiple of `interval_ns` and the batch pays one
    /// [`CircuitSwitch::RECONFIG_LATENCY_NS`](hfast_core::CircuitSwitch::RECONFIG_LATENCY_NS).
    /// A no-op on fabrics without reprovisionable links (fat tree, torus).
    ///
    /// # Panics
    /// If `interval_ns` is zero.
    pub fn with_reprovision(mut self, interval_ns: u64) -> Self {
        assert!(interval_ns > 0, "sync interval must be positive");
        self.reprovision_interval_ns = Some(interval_ns);
        self
    }

    /// Runs the simulation.
    ///
    /// The event loop is fully deterministic: identical inputs produce
    /// identical [`SimOutput`]s regardless of cache reuse, attached
    /// observability, or thread count.
    pub fn run(self, flows: &[Flow]) -> SimOutput {
        let obs = self
            .obs
            .or_else(|| hfast_obs::enabled().then(crate::obs::global));
        if self.congestion.mode == crate::congestion::CongestionMode::Credit {
            let (stats, records, perf) = crate::congestion::run_credit(
                self.fabric,
                flows,
                self.congestion.credits,
                self.faults.filter(|p| !p.is_empty()),
                self.retry,
                obs,
                self.trace,
            );
            return SimOutput {
                stats,
                records: self.detailed.then_some(records),
                reprovisions: Vec::new(),
                perf,
            };
        }
        let threads = self.threads.unwrap_or_else(engine_threads);
        match self.faults {
            Some(plan) if !plan.is_empty() => {
                // The dynamic loop rewrites routes in place (detours,
                // invalidations), so a shared snapshot cannot back it
                // directly — clone it into the run-private cache instead,
                // which still saves the cold resolution work.
                let mut own_cache;
                let cache = match self.cache {
                    Some(c) => c,
                    None => {
                        own_cache = self.snapshot.cloned().unwrap_or_default();
                        &mut own_cache
                    }
                };
                let dyn_run = FaultRun {
                    fabric: self.fabric,
                    plan,
                    retry: self.retry,
                    reprovision_interval_ns: self.reprovision_interval_ns,
                    trace: self.trace,
                };
                let (stats, records, reprovisions, perf) = dyn_run.run(flows, cache, obs);
                SimOutput {
                    stats,
                    records: self.detailed.then_some(records),
                    reprovisions,
                    perf,
                }
            }
            _ => {
                let mut own_cache;
                let routes = match (self.cache, self.snapshot) {
                    (Some(cache), _) => {
                        let slots = cache.index_flows(self.fabric, flows, obs);
                        let base_len = cache.slot_count();
                        RouteView {
                            base: cache,
                            base_len,
                            extra: None,
                            slots,
                        }
                    }
                    (None, Some(snap)) => index_flows_layered(snap, self.fabric, flows, obs),
                    (None, None) => {
                        own_cache = PathCache::new();
                        let slots = own_cache.index_flows(self.fabric, flows, obs);
                        let base_len = own_cache.slot_count();
                        RouteView {
                            base: &own_cache,
                            base_len,
                            extra: None,
                            slots,
                        }
                    }
                };
                let (stats, records, perf) =
                    run_event_loop(self.fabric, flows, &routes, obs, self.trace, threads);
                SimOutput {
                    stats,
                    records: self.detailed.then_some(records),
                    reprovisions: Vec::new(),
                    perf,
                }
            }
        }
    }
}

/// Sentinel in the flattened per-flow route table: this flow has no route.
const UNROUTED: u32 = u32::MAX;

/// Sentinel in the flat delivery-time column: not delivered.
const NO_END: u64 = u64::MAX;

/// A route-arena cell: a link id with the entry's high bit flagging the
/// route's final hop. Lets flow events carry a bare arena index — the loop
/// learns both the link and whether the flow delivers from one load.
///
/// Two widths exist because the arena is the static loop's biggest random
/// working set: fabrics with < 2^15 links (every suite benched here) halve
/// their arena-cache footprint with `u16` cells, while bigger fabrics fall
/// back to `u32`. The loops are generic over the cell, so both widths run
/// identical event math.
trait ArenaEntry: Copy + Send + Sync + 'static {
    /// Largest representable link id (the flag claims the top bit).
    const MAX_LINKS: usize;
    fn from_link(link: usize) -> Self;
    fn mark_last(&mut self);
    /// The link id, flag stripped.
    fn link(self) -> usize;
    fn is_last(self) -> bool;
}

impl ArenaEntry for u16 {
    const MAX_LINKS: usize = 1 << 15;
    #[inline(always)]
    fn from_link(link: usize) -> Self {
        link as u16
    }
    #[inline(always)]
    fn mark_last(&mut self) {
        *self |= 1 << 15;
    }
    #[inline(always)]
    fn link(self) -> usize {
        (self & !(1 << 15)) as usize
    }
    #[inline(always)]
    fn is_last(self) -> bool {
        self & (1 << 15) != 0
    }
}

impl ArenaEntry for u32 {
    const MAX_LINKS: usize = 1 << 31;
    #[inline(always)]
    fn from_link(link: usize) -> Self {
        link as u32
    }
    #[inline(always)]
    fn mark_last(&mut self) {
        *self |= 1 << 31;
    }
    #[inline(always)]
    fn link(self) -> usize {
        (self & !(1 << 31)) as usize
    }
    #[inline(always)]
    fn is_last(self) -> bool {
        self & (1 << 31) != 0
    }
}

/// How the static loop resolves per-event serialization times; picked
/// once per run, cheapest viable representation first (see
/// [`run_event_loop`]).
enum SerMode {
    /// Uniform bandwidth and payload: one scalar, zero per-event lookups.
    Scalar(u64),
    /// Uniform bandwidth, varying payloads: a flat per-flow table.
    Table(Vec<u64>),
    /// Mixed bandwidths: per-flow memo in [`FlowHot`], recomputed when a
    /// flow crosses a differently-provisioned link.
    Memo,
}

/// Per-link hot state: everything an event touches about its link, packed
/// so one claim is one cache line instead of four (`free_at` / `busy` /
/// `lat` / `bw` used to live in four parallel `Vec`s).
#[derive(Clone, Copy)]
struct LinkHot {
    free_at: u64,
    busy_ns: u64,
    lat: u64,
    bw_bits: u64,
}

/// Per-flow hot state: the route length (for the post-loop records pass)
/// plus the memoized serialization time. `bw_bits` caches the bandwidth
/// the memo was computed for; links share a handful of bandwidths, so the
/// `bytes / bandwidth` division runs once per flow, not per hop (and on
/// uniform-bandwidth fabrics the loop never touches this struct at all —
/// see [`SerMode`]).
#[derive(Clone, Copy)]
struct FlowHot {
    len: u32,
    bw_bits: u64,
    ser: u64,
}

#[inline]
fn serialize(bw_bits: u64, bytes: u64) -> u64 {
    LinkSpec {
        latency_ns: 0,
        bandwidth: f64::from_bits(bw_bits),
    }
    .serialize_ns(bytes)
}

/// The static event loop shared by every fault-free run configuration.
///
/// Setup interns everything the per-event work touches into dense per-run
/// tables: each distinct route slot is flattened once into one link arena
/// of [`ArenaEntry`] cells (`u16` when the fabric's link ids fit, `u32`
/// otherwise), per-link specs land in [`LinkHot`] (one virtual
/// [`Fabric::link`] call per link per run instead of per event), and
/// per-flow route spans and serialization memos in [`FlowHot`].
///
/// Seed admissions are **not** enqueued: they are sorted once into a flat
/// `(start_ns, flow)` array and merged with the calendar queue at pop
/// time, with seeds winning timestamp ties — exactly the order the old
/// code produced by pushing every seed first (seeds held the lowest
/// sequence numbers). This keeps the queue's live set at the number of
/// in-flight flows (typically hundreds) instead of the total flow count
/// (tens of thousands), which is the difference between the hot path
/// living in L1 and every queue operation missing to L3.
///
/// Observability is strictly read-from: `obs` never influences event
/// ordering or timing, so an instrumented run returns bit-identical
/// results (asserted by property tests).
///
/// `threads > 1` executes conservative lookahead windows in parallel; see
/// [`run_windows`] for the determinism argument.
fn run_event_loop(
    fabric: &dyn Fabric,
    flows: &[Flow],
    routes: &RouteView<'_>,
    obs: Option<&EngineObs>,
    trace: Option<&TraceRecorder>,
    threads: usize,
) -> (RunStats, Vec<FlowRecord>, LoopPerf) {
    let link_count = fabric.link_count();

    // Per-link spec table: one virtual call per link, up front.
    let mut links: Vec<LinkHot> = Vec::with_capacity(link_count);
    let mut uniform_bw = true;
    for id in 0..link_count {
        let spec = fabric.link(id);
        let bw_bits = spec.bandwidth.to_bits();
        uniform_bw &= id == 0 || bw_bits == links[0].bw_bits;
        links.push(LinkHot {
            free_at: 0,
            busy_ns: 0,
            lat: spec.latency_ns,
            bw_bits,
        });
    }

    // Narrow arena cells whenever link ids fit: the route arena is the
    // loop's largest random working set, and halving it is a straight
    // cache-footprint win (the event math is identical — both widths are
    // one monomorphization of the same generic code).
    if link_count < <u16 as ArenaEntry>::MAX_LINKS {
        run_static::<u16>(
            fabric, flows, routes, obs, trace, threads, links, uniform_bw,
        )
    } else {
        run_static::<u32>(
            fabric, flows, routes, obs, trace, threads, links, uniform_bw,
        )
    }
}

/// The body of [`run_event_loop`], monomorphized per arena-cell width.
#[allow(clippy::too_many_arguments)]
fn run_static<E: ArenaEntry>(
    fabric: &dyn Fabric,
    flows: &[Flow],
    routes: &RouteView<'_>,
    obs: Option<&EngineObs>,
    trace: Option<&TraceRecorder>,
    threads: usize,
    mut links: Vec<LinkHot>,
    uniform_bw: bool,
) -> (RunStats, Vec<FlowRecord>, LoopPerf) {
    // Flatten each distinct route slot once into the link arena. Each
    // cell is a link id with the last-hop flag set on a route's final
    // link, so events carry a bare arena index and the loop never consults
    // a per-flow route span.
    debug_assert!(links.len() < E::MAX_LINKS, "link ids fit beside the flag");
    let total_slots = routes.base_len + routes.extra.as_ref().map_or(0, PathCache::slot_count);
    let mut slot_span: Vec<(u32, u32)> = vec![(0, 0); total_slots];
    let mut slot_seen: Vec<bool> = vec![false; total_slots];
    let mut route_links: Vec<E> = Vec::new();
    let mut flow_hot: Vec<FlowHot> = Vec::with_capacity(flows.len());
    // Delivery times, `NO_END` = undelivered; records are built from this
    // flat column after the loop so the hot path writes 8 bytes per flow.
    let mut ends: Vec<u64> = vec![NO_END; flows.len()];
    // Routed admissions as (start, flow, arena offset), merged with the
    // queue at pop time once sorted.
    let mut seeds: Vec<(u64, u32, u32)> = Vec::with_capacity(flows.len());
    let mut uniform_bytes = true;
    let mut first_bytes = None;
    for (i, f) in flows.iter().enumerate() {
        let slot = routes.slots[i];
        if !slot_seen[slot] {
            slot_seen[slot] = true;
            slot_span[slot] = match routes.path(i) {
                Some(p) => {
                    let off = route_links.len() as u32;
                    route_links.extend(p.iter().map(|&l| E::from_link(l)));
                    if !p.is_empty() {
                        route_links.last_mut().expect("just extended").mark_last();
                    }
                    (off, p.len() as u32)
                }
                None => (0, UNROUTED),
            };
        }
        let (off, len) = slot_span[slot];
        flow_hot.push(FlowHot {
            len,
            bw_bits: u64::MAX,
            ser: 0,
        });
        match len {
            UNROUTED => {}
            0 => ends[i] = f.start_ns, // self-delivery
            _ => {
                uniform_bytes &= *first_bytes.get_or_insert(f.bytes) == f.bytes;
                seeds.push((f.start_ns, i as u32, off));
            }
        }
    }
    // (start, flow) order = the order the old code assigned seed sequence
    // numbers in (flow order within a timestamp); the offset rides along
    // without influencing it (it is a function of the flow).
    seeds.sort_unstable();

    // How the loop finds an event's serialization time, cheapest viable
    // representation first: one scalar when every routed flow crosses
    // identical-bandwidth links with identical payloads (no per-event
    // flow lookup at all), a flat per-flow table under uniform bandwidth,
    // and the per-flow bandwidth memo in [`FlowHot`] otherwise.
    let ser_mode = if uniform_bw && !links.is_empty() {
        match (uniform_bytes, first_bytes) {
            (true, Some(b)) => SerMode::Scalar(serialize(links[0].bw_bits, b)),
            _ => SerMode::Table(
                flows
                    .iter()
                    .enumerate()
                    .map(|(i, f)| match flow_hot[i].len {
                        0 | UNROUTED => 0,
                        _ => serialize(links[0].bw_bits, f.bytes),
                    })
                    .collect(),
            ),
        }
    } else {
        SerMode::Memo
    };

    // The static loop schedules exactly one event class, so it uses the
    // stable single-class queue: 16-byte entries, timestamp-only
    // comparisons, push order standing in for sequence numbers.
    let mut q = FlowQueue::with_hint(256, 1 << 12);

    let mut n_events = 0u64;
    let t_loop = std::time::Instant::now();
    if threads <= 1 && obs.is_none() && trace.is_none() {
        // The uninstrumented hot path, monomorphized per serialization
        // mode: the closure inlines away, so the Scalar instantiation adds
        // literally nothing per event beyond the merged pop, the arena
        // load, the link claim, and the push. The
        // `warm_cache_and_obs_runs_are_byte_identical` property test pins
        // this specialization to the instrumented loop below.
        n_events = match &ser_mode {
            SerMode::Scalar(s) => {
                let s = *s;
                seq_lean(
                    &mut q,
                    &seeds,
                    &route_links,
                    &mut links,
                    &mut ends,
                    |_, _| s,
                )
            }
            SerMode::Table(tab) => seq_lean(
                &mut q,
                &seeds,
                &route_links,
                &mut links,
                &mut ends,
                |flow, _| tab[flow as usize],
            ),
            SerMode::Memo => {
                let flow_hot = &mut flow_hot;
                seq_lean(
                    &mut q,
                    &seeds,
                    &route_links,
                    &mut links,
                    &mut ends,
                    |flow, bw_bits| {
                        let fi = flow as usize;
                        let fh = flow_hot[fi];
                        if fh.bw_bits == bw_bits {
                            fh.ser
                        } else {
                            let s = serialize(bw_bits, flows[fi].bytes);
                            flow_hot[fi].bw_bits = bw_bits;
                            flow_hot[fi].ser = s;
                            s
                        }
                    },
                )
            }
        };
    } else if threads <= 1 {
        // The instrumented sequential loop: identical event math with the
        // observability and tracing hooks woven in.
        let mut seed_pos = 0usize;
        loop {
            let take_seed = match (seeds.get(seed_pos), q.peek_time()) {
                (Some(&(s, _, _)), Some(t)) => s <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (t, flow, idx) = if take_seed {
                let (s, f, off) = seeds[seed_pos];
                seed_pos += 1;
                (s, f, off)
            } else {
                q.pop().expect("peeked event pops")
            };
            n_events += 1;
            let entry = route_links[idx as usize];
            let link = entry.link();
            let lh = &mut links[link];
            let start = t.max(lh.free_at);
            let ser = match &ser_mode {
                SerMode::Scalar(s) => *s,
                SerMode::Table(tab) => tab[flow as usize],
                SerMode::Memo => {
                    let fi = flow as usize;
                    let fh = flow_hot[fi];
                    if fh.bw_bits == lh.bw_bits {
                        fh.ser
                    } else {
                        let s = serialize(lh.bw_bits, flows[fi].bytes);
                        flow_hot[fi].bw_bits = lh.bw_bits;
                        flow_hot[fi].ser = s;
                        s
                    }
                }
            };
            lh.free_at = start + ser;
            lh.busy_ns += ser;
            let lat = lh.lat;
            if let Some(obs) = obs {
                obs.queue_wait_ns.record(start - t);
                obs.queue_occupancy
                    .record((q.len() + seeds.len() - seed_pos) as u64);
                obs.link_busy(start, ser, link);
            }
            if let Some(tr) = trace {
                tr.record_span(
                    Track::Link(link),
                    "hop",
                    start,
                    ser,
                    0,
                    engine_span_id(u64::from(flow) + 1),
                    vec![("wait", start - t), ("flow", u64::from(flow))],
                );
            }
            // The header clears this link after the fixed latency; the
            // tail follows one serialization time behind.
            let header_out = start + lat;
            if !entry.is_last() {
                q.push(header_out, flow, idx + 1);
            } else {
                ends[flow as usize] = header_out + ser;
            }
        }
    } else {
        n_events = run_windows(
            &mut q,
            &seeds,
            flows,
            &route_links,
            &ser_mode,
            &mut flow_hot,
            &mut links,
            &mut ends,
            obs,
            trace,
            threads,
        );
    }

    let perf = LoopPerf {
        events: n_events,
        loop_ns: t_loop.elapsed().as_nanos() as u64,
    };

    let mut records: Vec<FlowRecord> = Vec::with_capacity(flows.len());
    for (i, f) in flows.iter().enumerate() {
        let len = flow_hot[i].len;
        records.push(FlowRecord {
            flow: i,
            start_ns: f.start_ns,
            end_ns: (ends[i] != NO_END).then_some(ends[i]),
            hops: if len == UNROUTED { 0 } else { len as usize },
            retries: 0,
            abandoned: false,
        });
    }

    if let Some(tr) = trace {
        record_flow_spans(tr, flows, &records);
    }

    let link_busy_ns: Vec<u64> = links.iter().map(|l| l.busy_ns).collect();
    let stats = RunStats::from_records(fabric, flows, &records, &link_busy_ns);
    if let Some(obs) = obs {
        obs.runs.inc();
        obs.flows.add(flows.len() as u64);
        obs.events.add(n_events);
        obs.unrouted.add(stats.unrouted as u64);
        obs.heap_peak.set_max(q.peak() as u64);
        obs.set_events_per_sec(&perf);
        for f in flows {
            obs.flow_bytes.record(f.bytes);
        }
    }
    (stats, records, perf)
}

/// The uninstrumented sequential event loop, generic over the arena-cell
/// width and over how an event's serialization time is found
/// (`ser_of(flow, bw_bits)`). Each [`SerMode`] instantiates its own copy
/// with the closure fully inlined — under `SerMode::Scalar` the body
/// compiles down to the merged pop, one arena load, one link claim, and
/// one push, with no per-flow memory traffic at all. Event math is
/// byte-for-byte the instrumented loop's (property tests assert the
/// equivalence).
#[inline(always)]
fn seq_lean<E: ArenaEntry>(
    q: &mut FlowQueue,
    seeds: &[(u64, u32, u32)],
    route_links: &[E],
    links: &mut [LinkHot],
    ends: &mut [u64],
    mut ser_of: impl FnMut(u32, u64) -> u64,
) -> u64 {
    let mut n_events = 0u64;
    let mut seed_pos = 0usize;
    loop {
        // Merged head of the sorted seed stream and the calendar queue;
        // seeds win timestamp ties (they held the lowest sequence numbers
        // in the old single-queue order), so the queue pops only when its
        // top is strictly earlier than the next seed.
        let limit = seeds.get(seed_pos).map_or(u64::MAX, |&(s, _, _)| s);
        let (t, flow, idx) = match q.pop_before(limit) {
            Some(ev) => ev,
            None if seed_pos < seeds.len() => {
                let (s, f, off) = seeds[seed_pos];
                seed_pos += 1;
                (s, f, off)
            }
            // `pop_before` is strict, so an event at exactly `u64::MAX`
            // (unreachable for real timestamps) still drains here.
            None => match q.pop() {
                Some(ev) => ev,
                None => break,
            },
        };
        n_events += 1;
        let entry = route_links[idx as usize];
        let lh = &mut links[entry.link()];
        let start = t.max(lh.free_at);
        let ser = ser_of(flow, lh.bw_bits);
        lh.free_at = start + ser;
        lh.busy_ns += ser;
        // The header clears this link after the fixed latency; the tail
        // follows one serialization time behind.
        let header_out = start + lh.lat;
        if !entry.is_last() {
            q.push(header_out, flow, idx + 1);
        } else {
            ends[flow as usize] = header_out + ser;
        }
    }
    n_events
}

/// One parallel worker's output in [`run_windows`]: the group's link, the
/// link's final `free_at`, and `(start, ser)` per event in drain order.
type GroupResult = (usize, u64, Vec<(u64, u64)>);

/// The conservative-parallelism executor for the static loop.
///
/// Events are drained in `(time, insertion)` order into a batch while each
/// event's timestamp stays below the running lookahead bound
/// `W = min over drained events of (time + latency(link(event)))`.
///
/// Why every drained batch is safe to execute out of order across links:
///
/// 1. Every batch event's time is `< W`: events pop in nondecreasing
///    time, and for any members `j`, `k`: if `k` drained first, the bound
///    including `k` already gated `j`'s admission (`t_j < W ≤ t_k +
///    lat_k`); if `k` drained after `j`, then `t_j ≤ t_k < t_k + lat_k`.
/// 2. Every successor lands at `start + latency ≥ time + latency ≥ W`,
///    so no event scheduled *by* the batch can belong *in* the batch —
///    the sequential loop would also have processed the entire batch
///    before any successor.
/// 3. Within the batch, only same-link events interact (through
///    `link_free_at`); grouping by link preserves the drain order, so
///    each link's FIFO claims replay exactly the sequential order.
/// 4. Successors are pushed during the merge in batch order — the same
///    order the sequential loop would have pushed them — and the stable
///    [`FlowQueue`] breaks timestamp ties by push order, so the
///    *(time, insertion)* total order (the old `(time, class, seq)`
///    order with one class and monotone seqs), and with it every
///    downstream tie-break, is byte-identical.
///
/// Observability and trace spans are recorded at merge time in batch
/// order, so instrumented streams are also identical across thread
/// counts. Batches smaller than [`PAR_BATCH_MIN`] execute inline; the
/// fan-out only engages on bursts (all-to-alls, incasts) where per-link
/// groups carry real work.
#[allow(clippy::too_many_arguments)]
fn run_windows<E: ArenaEntry>(
    q: &mut FlowQueue,
    seeds: &[(u64, u32, u32)],
    flows: &[Flow],
    route_links: &[E],
    ser_mode: &SerMode,
    flow_hot: &mut [FlowHot],
    links: &mut [LinkHot],
    ends: &mut [u64],
    obs: Option<&EngineObs>,
    trace: Option<&TraceRecorder>,
    threads: usize,
) -> u64 {
    let mut n_events = 0u64;
    let mut seed_pos = 0usize;
    // (time, flow, arena index, arena entry) per drained event, in pop
    // order.
    let mut batch: Vec<(u64, u32, u32, E)> = Vec::new();
    // (start, ser) per batch event, filled by the per-link groups.
    let mut rows: Vec<(u64, u64)> = Vec::new();
    // link -> group index for the current batch; reset after each batch.
    let mut link_group: Vec<u32> = vec![u32::MAX; links.len()];
    let mut groups: Vec<Vec<u32>> = Vec::new();

    loop {
        batch.clear();
        let mut bound = u64::MAX;
        loop {
            // Merged head of the seed stream and the calendar queue;
            // seeds win timestamp ties (they carried the lowest sequence
            // numbers in the old single-queue order).
            let take_seed = match (seeds.get(seed_pos), q.peek_time()) {
                (Some(&(s, _, _)), Some(t)) => s <= t,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let t_next = if take_seed {
                seeds[seed_pos].0
            } else {
                q.peek_time().expect("peeked above")
            };
            if !batch.is_empty() && t_next >= bound {
                break;
            }
            let (t, flow, idx) = if take_seed {
                let (s, f, off) = seeds[seed_pos];
                seed_pos += 1;
                (s, f, off)
            } else {
                q.pop().expect("peeked event pops")
            };
            let entry = route_links[idx as usize];
            bound = bound.min(t + links[entry.link()].lat);
            batch.push((t, flow, idx, entry));
        }
        if batch.is_empty() {
            break;
        }
        let k = batch.len();
        n_events += k as u64;

        if k < PAR_BATCH_MIN {
            rows.clear();
            for &(t, flow, _idx, entry) in batch.iter() {
                let fi = flow as usize;
                let lh = &mut links[entry.link()];
                let start = t.max(lh.free_at);
                let ser = match ser_mode {
                    SerMode::Scalar(s) => *s,
                    SerMode::Table(tab) => tab[fi],
                    SerMode::Memo => {
                        let fh = flow_hot[fi];
                        if fh.bw_bits == lh.bw_bits {
                            fh.ser
                        } else {
                            let s = serialize(lh.bw_bits, flows[fi].bytes);
                            flow_hot[fi].bw_bits = lh.bw_bits;
                            flow_hot[fi].ser = s;
                            s
                        }
                    }
                };
                lh.free_at = start + ser;
                rows.push((start, ser));
            }
        } else {
            // Group by link, preserving drain order within each group.
            groups.clear();
            for (i, &(_, _, _, entry)) in batch.iter().enumerate() {
                let link = entry.link();
                let g = link_group[link];
                if g == u32::MAX {
                    link_group[link] = groups.len() as u32;
                    groups.push(vec![i as u32]);
                } else {
                    groups[g as usize].push(i as u32);
                }
            }
            // Each link's FIFO replays independently on a worker. Workers
            // read the serialization memo but never write it (a pure
            // recompute on miss costs the same either way and keeps the
            // fan-out free of shared mutable state).
            let batch_ref = &batch;
            let groups_ref = &groups;
            let links_ref: &[LinkHot] = links;
            let flow_hot_ref: &[FlowHot] = flow_hot;
            // Per group: (link, final free_at, (start, ser) per event).
            let results: Vec<GroupResult> =
                hfast_par::par_map_range(threads, groups_ref.len(), |gi| {
                    let idxs = &groups_ref[gi];
                    let link = batch_ref[idxs[0] as usize].3.link();
                    let lh = links_ref[link];
                    let mut free = lh.free_at;
                    let mut out = Vec::with_capacity(idxs.len());
                    for &bi in idxs {
                        let (t, flow, _, _) = batch_ref[bi as usize];
                        let start = t.max(free);
                        let ser = match ser_mode {
                            SerMode::Scalar(s) => *s,
                            SerMode::Table(tab) => tab[flow as usize],
                            SerMode::Memo => {
                                let fh = flow_hot_ref[flow as usize];
                                if fh.bw_bits == lh.bw_bits {
                                    fh.ser
                                } else {
                                    serialize(lh.bw_bits, flows[flow as usize].bytes)
                                }
                            }
                        };
                        free = start + ser;
                        out.push((start, ser));
                    }
                    (link, free, out)
                });
            rows.clear();
            rows.resize(k, (0, 0));
            for (gi, (link, free, out)) in results.into_iter().enumerate() {
                links[link].free_at = free;
                for (&bi, row) in groups[gi].iter().zip(out) {
                    rows[bi as usize] = row;
                }
            }
            for g in &groups {
                link_group[batch[g[0] as usize].3.link()] = u32::MAX;
            }
        }

        // Merge in batch (= sequential) order: busy accounting, delivery
        // times, observability, and successor pushes (whose order is the
        // stable queue's tie-break).
        for (i, (&(t, flow, idx, entry), &(start, ser))) in
            batch.iter().zip(rows.iter()).enumerate()
        {
            let link = entry.link();
            links[link].busy_ns += ser;
            if let Some(obs) = obs {
                obs.queue_wait_ns.record(start - t);
                // The pending-event count the sequential loop would
                // observe after consuming this event: the still-undrained
                // remainder of the batch plus the unconsumed seed tail
                // plus everything scheduled so far.
                obs.queue_occupancy
                    .record((q.len() + (seeds.len() - seed_pos) + k - i - 1) as u64);
                obs.link_busy(start, ser, link);
            }
            if let Some(tr) = trace {
                tr.record_span(
                    Track::Link(link),
                    "hop",
                    start,
                    ser,
                    0,
                    engine_span_id(u64::from(flow) + 1),
                    vec![("wait", start - t), ("flow", u64::from(flow))],
                );
            }
            let header_out = start + links[link].lat;
            if !entry.is_last() {
                q.push(header_out, flow, idx + 1);
            } else {
                ends[flow as usize] = header_out + ser;
            }
        }
    }
    n_events
}

/// Records one `flow` span (or terminal instant) per flow on the engine
/// track; its span id (`engine_span_id(index + 1)`) is what every hop
/// span recorded during the run parented itself to. Self-deliveries cross
/// no link and leave no span.
pub(crate) fn record_flow_spans(trace: &TraceRecorder, flows: &[Flow], records: &[FlowRecord]) {
    for (i, (f, r)) in flows.iter().zip(records).enumerate() {
        let span_id = engine_span_id(i as u64 + 1);
        let fields = vec![
            ("src", f.src as u64),
            ("dst", f.dst as u64),
            ("bytes", f.bytes),
            ("retries", u64::from(r.retries)),
        ];
        match r.end_ns {
            Some(end) if end > r.start_ns => {
                trace.record_span(
                    Track::Engine,
                    "flow",
                    r.start_ns,
                    end - r.start_ns,
                    span_id,
                    0,
                    fields,
                );
            }
            Some(_) => {}
            None => {
                trace.record_span(
                    Track::Engine,
                    if r.abandoned {
                        "flow_abandoned"
                    } else {
                        "flow_unrouted"
                    },
                    r.start_ns,
                    0,
                    span_id,
                    0,
                    fields,
                );
            }
        }
    }
}

/// Event classes of the dynamic loop. At equal timestamps topology changes
/// apply first, then pending repatches complete, then sync points fire,
/// then flow traffic moves — so a flow admitted at the instant of a failure
/// already sees the failure, matching the static loop's "state before
/// traffic" reading.
const CLASS_FAULT: u8 = 0;
const CLASS_REPATCH: u8 = 1;
const CLASS_SYNC: u8 = 2;
const CLASS_FLOW: u8 = 3;

/// Event kinds carried in the queue's payload byte. The static loop only
/// uses [`KIND_FLOW`] (a hop arrival, `a` = flow, `b` = hop); the dynamic
/// loop adds plan application (`a` = plan index), repatch completion
/// (`a` = batch index), sync points, and (re-)admissions (`a` = flow).
const KIND_FLOW: u8 = 0;
const KIND_FAULT: u8 = 1;
const KIND_REPATCH: u8 = 2;
const KIND_SYNC: u8 = 3;
const KIND_ADMIT: u8 = 4;

/// The dynamic fault-injection run (configuration plus the loop).
struct FaultRun<'a> {
    fabric: &'a dyn Fabric,
    plan: &'a FaultPlan,
    retry: RetryPolicy,
    reprovision_interval_ns: Option<u64>,
    trace: Option<&'a TraceRecorder>,
}

impl FaultRun<'_> {
    fn run(
        &self,
        flows: &[Flow],
        cache: &mut PathCache,
        obs: Option<&EngineObs>,
    ) -> (RunStats, Vec<FlowRecord>, Vec<ReconfigStep>, LoopPerf) {
        let fabric = self.fabric;
        let flow_slot = cache.index_flows(fabric, flows, obs);
        let mut state = FaultState::healthy(fabric);

        let mut link_free_at: Vec<u64> = vec![0; fabric.link_count()];
        let mut link_busy_ns: Vec<u64> = vec![0; fabric.link_count()];
        let mut records: Vec<FlowRecord> = flows
            .iter()
            .enumerate()
            .map(|(i, f)| FlowRecord {
                flow: i,
                start_ns: f.start_ns,
                end_ns: None,
                hops: 0,
                retries: 0,
                abandoned: false,
            })
            .collect();
        // Each flow owns its admitted route: cache slots can be rewritten
        // by later resolutions while the flow is still in flight.
        let mut route: Vec<Option<Vec<LinkId>>> = vec![None; flows.len()];
        let mut admissions: Vec<u32> = vec![0; flows.len()];
        let mut first_fail: Vec<Option<u64>> = vec![None; flows.len()];
        // Slots rewritten while components were down: their routes are
        // fault-era detours, re-marked stale at the end of the run so a
        // reused cache re-derives primary routes.
        let mut dirty: BTreeSet<usize> = BTreeSet::new();

        let mut t_min = u64::MAX;
        let mut t_max = 0u64;
        for t in self
            .plan
            .events()
            .iter()
            .map(|e| e.time_ns)
            .chain(flows.iter().map(|f| f.start_ns))
        {
            t_min = t_min.min(t);
            t_max = t_max.max(t);
        }
        let mut sched = Scheduler::with_hint(
            self.plan.events().len() + flows.len(),
            t_max.saturating_sub(t_min.min(t_max)),
        );
        for (idx, ev) in self.plan.events().iter().enumerate() {
            sched.schedule(ev.time_ns, CLASS_FAULT, KIND_FAULT, idx as u32, 0);
        }
        for (i, f) in flows.iter().enumerate() {
            sched.schedule(f.start_ns, CLASS_FLOW, KIND_ADMIT, i as u32, 0);
        }

        // Distinct pairs with byte weights, for circuit-coverage snapshots
        // around each re-provisioning round.
        let mut pair_weight: Vec<((usize, usize), u64)> = Vec::new();
        {
            let mut acc: std::collections::BTreeMap<(usize, usize), u64> = Default::default();
            for f in flows {
                *acc.entry((f.src, f.dst)).or_insert(0) += f.bytes;
            }
            pair_weight.extend(acc);
        }
        let coverage = |state: &FaultState| -> f64 {
            let mut covered = 0u64;
            let mut total = 0u64;
            for &((s, d), w) in &pair_weight {
                total += w;
                if fabric.path_avoiding(s, d, state).is_some() {
                    covered += w;
                }
            }
            if total == 0 {
                1.0
            } else {
                covered as f64 / total as f64
            }
        };

        let mut sync_pending = false;
        let mut batches: Vec<(Vec<LinkId>, f64)> = Vec::new();
        let mut reprovisions: Vec<ReconfigStep> = Vec::new();
        let mut n_events = 0u64;
        let t_loop = std::time::Instant::now();

        while let Some(ev) = sched.pop() {
            n_events += 1;
            let now = ev.time_ns;
            if let Some(obs) = obs {
                obs.queue_occupancy.record(sched.q.len() as u64);
            }
            match ev.kind {
                KIND_FAULT => {
                    let idx = ev.a as usize;
                    let fe = self.plan.events()[idx];
                    let incident = state.apply(fabric, fe);
                    let evicted = match fe.target {
                        FaultTarget::Link(l) => match fe.action {
                            FaultAction::Fail => cache.invalidate_link(l),
                            FaultAction::Recover => 0,
                        },
                        FaultTarget::Node(n) => match fe.action {
                            FaultAction::Fail => cache.invalidate_node(n, &incident),
                            FaultAction::Recover => 0,
                        },
                    };
                    if let Some(obs) = obs {
                        obs.cache_evictions.add(evicted as u64);
                        let (kind, id) = match (fe.action, fe.target) {
                            (FaultAction::Fail, FaultTarget::Link(l)) => ("link_fail", l),
                            (FaultAction::Recover, FaultTarget::Link(l)) => ("link_recover", l),
                            (FaultAction::Fail, FaultTarget::Node(n)) => ("node_fail", n),
                            (FaultAction::Recover, FaultTarget::Node(n)) => ("node_recover", n),
                        };
                        match fe.action {
                            FaultAction::Fail => obs.faults.inc(),
                            FaultAction::Recover => obs.recoveries.inc(),
                        }
                        obs.fault_event(now, kind, id);
                    }
                    if let Some(tr) = self.trace {
                        // Fault instants: link events annotate the link's
                        // own track; node events land on the engine track.
                        let (name, track, field) = match (fe.action, fe.target) {
                            (FaultAction::Fail, FaultTarget::Link(l)) => {
                                ("link_fail", Track::Link(l), ("link", l as u64))
                            }
                            (FaultAction::Recover, FaultTarget::Link(l)) => {
                                ("link_recover", Track::Link(l), ("link", l as u64))
                            }
                            (FaultAction::Fail, FaultTarget::Node(n)) => {
                                ("node_fail", Track::Engine, ("node", n as u64))
                            }
                            (FaultAction::Recover, FaultTarget::Node(n)) => {
                                ("node_recover", Track::Engine, ("node", n as u64))
                            }
                        };
                        tr.record_span(track, name, now, 0, 0, 0, vec![field]);
                    }
                    // A repairable circuit failure books the next sync
                    // point (once; later failures join the same batch).
                    if let (Some(interval), FaultAction::Fail, FaultTarget::Link(l)) =
                        (self.reprovision_interval_ns, fe.action, fe.target)
                    {
                        if fabric.reprovisionable(l) && !sync_pending {
                            sync_pending = true;
                            sched.schedule(
                                (now / interval + 1) * interval,
                                CLASS_SYNC,
                                KIND_SYNC,
                                0,
                                0,
                            );
                        }
                    }
                }
                KIND_SYNC => {
                    let batch: Vec<LinkId> = state
                        .failed_links()
                        .into_iter()
                        .filter(|&l| fabric.reprovisionable(l))
                        .collect();
                    if batch.is_empty() {
                        // Everything already recovered on its own.
                        sync_pending = false;
                        continue;
                    }
                    let cov_before = coverage(&state);
                    let done_at = now + hfast_core::CircuitSwitch::RECONFIG_LATENCY_NS;
                    if let Some(tr) = self.trace {
                        tr.record_span(
                            Track::Reconfig,
                            "sync_point",
                            now,
                            0,
                            0,
                            0,
                            vec![("failed_circuits", batch.len() as u64)],
                        );
                    }
                    batches.push((batch, cov_before));
                    sched.schedule(
                        done_at,
                        CLASS_REPATCH,
                        KIND_REPATCH,
                        (batches.len() - 1) as u32,
                        0,
                    );
                }
                KIND_REPATCH => {
                    let idx = ev.a as usize;
                    let (batch, cov_before) = batches[idx].clone();
                    for &l in &batch {
                        state.repatch_link(l);
                    }
                    // Fault-era detours may now be worse than the repaired
                    // primary: force those pairs to re-resolve.
                    for &slot in &dirty {
                        cache.mark_stale(slot);
                    }
                    let cov_after = coverage(&state);
                    if let Some(tr) = self.trace {
                        // The batch occupied the crossbar from its sync
                        // point until now; span ids continue past the flow
                        // id range so both stay unique in one recorder.
                        let latency = hfast_core::CircuitSwitch::RECONFIG_LATENCY_NS;
                        tr.record_span(
                            Track::Reconfig,
                            "reprovision",
                            now.saturating_sub(latency),
                            latency,
                            engine_span_id(flows.len() as u64 + 1 + idx as u64),
                            0,
                            vec![
                                ("circuits", batch.len() as u64),
                                ("coverage_before_permille", (cov_before * 1000.0) as u64),
                                ("coverage_after_permille", (cov_after * 1000.0) as u64),
                            ],
                        );
                    }
                    reprovisions.push(ReconfigStep::repatch(batch.len(), cov_before, cov_after));
                    if let Some(obs) = obs {
                        obs.reprovisions.inc();
                        obs.repatched_links.add(batch.len() as u64);
                        obs.fault_event(now, "reprovision", batch.len());
                    }
                    sync_pending = false;
                    // Circuits that failed during the repatch window get
                    // their own round.
                    if let Some(interval) = self.reprovision_interval_ns {
                        if state
                            .failed_links()
                            .iter()
                            .any(|&l| fabric.reprovisionable(l))
                        {
                            sync_pending = true;
                            sched.schedule(
                                (now / interval + 1) * interval,
                                CLASS_SYNC,
                                KIND_SYNC,
                                0,
                                0,
                            );
                        }
                    }
                }
                KIND_ADMIT => {
                    let flow = ev.a as usize;
                    admissions[flow] += 1;
                    let slot = flow_slot[flow];
                    let resolved =
                        Self::resolve(cache, slot, fabric, &state, flows[flow], &mut dirty);
                    match resolved {
                        Resolution::Route(r) => {
                            records[flow].hops = r.len();
                            if r.is_empty() {
                                records[flow].end_ns = Some(now); // self-delivery
                                continue;
                            }
                            route[flow] = Some(r);
                            self.advance(
                                flow,
                                0,
                                now,
                                flows,
                                &state,
                                &route,
                                &mut records,
                                &mut link_free_at,
                                &mut link_busy_ns,
                                obs,
                                &mut sched,
                                &mut admissions,
                                &mut first_fail,
                                false,
                            );
                        }
                        Resolution::Unreachable => {
                            // The topology itself has no route; retrying
                            // cannot help (matches the static loop).
                            if let Some(obs) = obs {
                                obs.unrouted.inc();
                            }
                        }
                        Resolution::Blocked => {
                            self.reschedule(
                                flow,
                                now,
                                &mut records,
                                &mut sched,
                                &mut admissions,
                                &mut first_fail,
                                obs,
                            );
                        }
                    }
                }
                _ => {
                    debug_assert_eq!(ev.kind, KIND_FLOW);
                    self.advance(
                        ev.a as usize,
                        ev.b as usize,
                        now,
                        flows,
                        &state,
                        &route,
                        &mut records,
                        &mut link_free_at,
                        &mut link_busy_ns,
                        obs,
                        &mut sched,
                        &mut admissions,
                        &mut first_fail,
                        true,
                    );
                }
            }
        }

        let perf = LoopPerf {
            events: n_events,
            loop_ns: t_loop.elapsed().as_nanos() as u64,
        };

        // Leave no fault-era route behind for the next (possibly
        // fault-free) user of this cache.
        for slot in dirty {
            cache.mark_stale(slot);
        }

        if let Some(tr) = self.trace {
            record_flow_spans(tr, flows, &records);
        }

        let stats = RunStats::from_records(fabric, flows, &records, &link_busy_ns);
        if let Some(obs) = obs {
            obs.runs.inc();
            obs.flows.add(flows.len() as u64);
            obs.events.add(n_events);
            obs.heap_peak.set_max(sched.q.peak() as u64);
            obs.set_events_per_sec(&perf);
            for f in flows {
                obs.flow_bytes.record(f.bytes);
            }
        }
        (stats, records, reprovisions, perf)
    }

    /// Resolves the current best route for `flow`'s pair through the
    /// cache, recomputing via [`Fabric::path_avoiding`] when the stored
    /// route is stale or blocked.
    fn resolve(
        cache: &mut PathCache,
        slot: usize,
        fabric: &dyn Fabric,
        state: &FaultState,
        flow: Flow,
        dirty: &mut BTreeSet<usize>,
    ) -> Resolution {
        if !cache.is_stale(slot) {
            match cache.path(slot) {
                Some(p) if !state.blocks(p) => return Resolution::Route(p.to_vec()),
                None => return Resolution::Unreachable,
                Some(_) => {}
            }
        }
        match fabric.path_avoiding(flow.src, flow.dst, state) {
            Some(r) => {
                cache.set_route(slot, Some(&r));
                if state.any_down() {
                    dirty.insert(slot);
                } else {
                    dirty.remove(&slot);
                }
                Resolution::Route(r)
            }
            None => {
                if state.any_down() {
                    Resolution::Blocked
                } else {
                    // Healthy fabric, still no route: permanently
                    // unreachable. Cache the verdict.
                    cache.set_route(slot, None);
                    dirty.remove(&slot);
                    Resolution::Unreachable
                }
            }
        }
    }

    /// Moves `flow`'s header onto hop `hop` at time `now`: kills the
    /// attempt if the link is down, otherwise claims the link FIFO exactly
    /// like the static loop and schedules the next hop or the delivery.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        flow: usize,
        hop: usize,
        now: u64,
        flows: &[Flow],
        state: &FaultState,
        route: &[Option<Vec<LinkId>>],
        records: &mut [FlowRecord],
        link_free_at: &mut [u64],
        link_busy_ns: &mut [u64],
        obs: Option<&EngineObs>,
        sched: &mut Scheduler,
        admissions: &mut [u32],
        first_fail: &mut [Option<u64>],
        in_flight: bool,
    ) {
        let path = route[flow].as_deref().expect("admitted flows have routes");
        let link_id = path[hop];
        if !state.link_up(link_id) {
            // Lazy kill: the header met a dead link.
            if in_flight {
                if let Some(obs) = obs {
                    obs.flow_kills.inc();
                }
            }
            if let Some(tr) = self.trace {
                tr.record_span(
                    Track::Link(link_id),
                    "flow_kill",
                    now,
                    0,
                    0,
                    engine_span_id(flow as u64 + 1),
                    vec![("flow", flow as u64), ("hop", hop as u64)],
                );
            }
            self.reschedule(flow, now, records, sched, admissions, first_fail, obs);
            return;
        }
        let spec = self.fabric.link(link_id);
        let bytes = flows[flow].bytes;
        let start = now.max(link_free_at[link_id]);
        let serialization = spec.serialize_ns(bytes);
        link_free_at[link_id] = start + serialization;
        link_busy_ns[link_id] += serialization;
        if let Some(obs) = obs {
            obs.queue_wait_ns.record(start - now);
            obs.link_busy(start, serialization, link_id);
        }
        if let Some(tr) = self.trace {
            tr.record_span(
                Track::Link(link_id),
                "hop",
                start,
                serialization,
                0,
                engine_span_id(flow as u64 + 1),
                vec![("wait", start - now), ("flow", flow as u64)],
            );
        }
        let header_out = start + spec.latency_ns;
        if hop + 1 < path.len() {
            sched.schedule(
                header_out,
                CLASS_FLOW,
                KIND_FLOW,
                flow as u32,
                (hop + 1) as u32,
            );
        } else {
            let end = header_out + serialization;
            records[flow].end_ns = Some(end);
            if let (Some(obs), Some(t0)) = (obs, first_fail[flow]) {
                obs.reroute_latency_ns.record(end.saturating_sub(t0));
            }
        }
    }

    /// Books a retry for a failed attempt, or abandons the flow once the
    /// policy's attempt budget is spent.
    #[allow(clippy::too_many_arguments)]
    fn reschedule(
        &self,
        flow: usize,
        now: u64,
        records: &mut [FlowRecord],
        sched: &mut Scheduler,
        admissions: &mut [u32],
        first_fail: &mut [Option<u64>],
        obs: Option<&EngineObs>,
    ) {
        if first_fail[flow].is_none() {
            first_fail[flow] = Some(now);
        }
        let failed = admissions[flow];
        if failed < self.retry.attempts() {
            records[flow].retries += 1;
            if let Some(obs) = obs {
                obs.retries.inc();
            }
            if let Some(tr) = self.trace {
                tr.record_span(
                    Track::Engine,
                    "flow_retry",
                    now,
                    0,
                    0,
                    engine_span_id(flow as u64 + 1),
                    vec![("flow", flow as u64), ("attempt", u64::from(failed))],
                );
            }
            sched.schedule(
                now + self.retry.backoff_ns(failed),
                CLASS_FLOW,
                KIND_ADMIT,
                flow as u32,
                0,
            );
        } else {
            records[flow].abandoned = true;
            if let Some(obs) = obs {
                obs.abandoned_flows.inc();
                obs.unrouted.inc();
            }
        }
    }
}

/// Outcome of one route resolution under the current fault state.
enum Resolution {
    /// A live route (possibly a detour).
    Route(Vec<LinkId>),
    /// The healthy topology has no route for this pair; never retried.
    Unreachable,
    /// Everything is blocked by active faults; worth retrying.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{LinkId, LinkSpec};

    /// Two nodes joined by one link each way.
    struct Wire;

    impl Fabric for Wire {
        fn name(&self) -> &str {
            "wire"
        }
        fn nodes(&self) -> usize {
            2
        }
        fn link_count(&self) -> usize {
            2
        }
        fn link(&self, _id: LinkId) -> LinkSpec {
            LinkSpec {
                latency_ns: 100,
                bandwidth: 1.0,
            }
        }
        fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
            if src == dst {
                Some(vec![])
            } else {
                Some(vec![src])
            }
        }
        fn incident_links(&self, node: usize) -> Vec<LinkId> {
            vec![node]
        }
    }

    fn flow(src: usize, dst: usize, bytes: u64, start: u64) -> Flow {
        Flow {
            src,
            dst,
            bytes,
            start_ns: start,
        }
    }

    fn detailed(fabric: &dyn Fabric, flows: &[Flow]) -> (RunStats, Vec<FlowRecord>) {
        let out = Simulation::new(fabric).detailed().run(flows);
        let records = out.records.expect("detailed run");
        (out.stats, records)
    }

    #[test]
    fn single_flow_latency_is_serialization_plus_latency() {
        let (stats, records) = detailed(&Wire, &[flow(0, 1, 1000, 0)]);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.max_latency_ns, 1100);
    }

    #[test]
    fn fifo_contention_serializes() {
        // Two flows on the same link: the second waits for the first's
        // serialization (not its latency).
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 0)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(2100));
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let flows = [flow(0, 1, 1000, 0), flow(1, 0, 1000, 0)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(1100));
    }

    #[test]
    fn self_flow_completes_instantly() {
        let (stats, records) = detailed(&Wire, &[flow(1, 1, 500, 42)]);
        assert_eq!(records[0].end_ns, Some(42));
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn start_times_are_respected() {
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 5000)];
        let (_, records) = detailed(&Wire, &flows);
        assert_eq!(records[1].end_ns, Some(6100), "no queueing after a gap");
    }

    #[test]
    fn deterministic_across_runs() {
        let flows: Vec<Flow> = (0..50)
            .map(|i| flow(i % 2, (i + 1) % 2, 100 + i as u64, i as u64 * 3))
            .collect();
        let a = Simulation::new(&Wire).run(&flows);
        let b = Simulation::new(&Wire).run(&flows);
        assert_eq!(a, b);
        assert!(a.records.is_none(), "no records unless detailed()");
    }

    #[test]
    fn thread_counts_are_byte_identical() {
        let flows: Vec<Flow> = (0..200)
            .map(|i| flow(i % 2, (i + 1) % 2, 64 + i as u64, (i as u64 % 5) * 40))
            .collect();
        let seq = Simulation::new(&Wire)
            .detailed()
            .with_threads(1)
            .run(&flows);
        for threads in [2, 8] {
            let par = Simulation::new(&Wire)
                .detailed()
                .with_threads(threads)
                .run(&flows);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn cache_deduplicates_repeated_pairs() {
        let flows: Vec<Flow> = (0..40)
            .map(|i| flow(i % 2, (i + 1) % 2, 64, i as u64))
            .collect();
        let mut cache = PathCache::new();
        let cached = Simulation::new(&Wire)
            .with_cache(&mut cache)
            .detailed()
            .run(&flows);
        assert_eq!(cache.len(), 2, "only two distinct pairs");
        let fresh = Simulation::new(&Wire).detailed().run(&flows);
        assert_eq!(cached, fresh);
    }

    #[test]
    fn cache_reuse_across_runs_is_identical() {
        let flows_a: Vec<Flow> = (0..10).map(|i| flow(0, 1, 100 + i, i)).collect();
        let flows_b: Vec<Flow> = (0..10).map(|i| flow(1, 0, 50 + i, i * 7)).collect();
        let mut cache = PathCache::new();
        let warm_a = Simulation::new(&Wire).with_cache(&mut cache).run(&flows_a);
        let warm_b = Simulation::new(&Wire).with_cache(&mut cache).run(&flows_b);
        assert_eq!(warm_a, Simulation::new(&Wire).run(&flows_a));
        assert_eq!(warm_b, Simulation::new(&Wire).run(&flows_b));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn obs_counts_cache_and_events() {
        let obs = EngineObs::new();
        let flows: Vec<Flow> = (0..10).map(|i| flow(0, 1, 64, i)).collect();
        let out = Simulation::new(&Wire).with_obs(&obs).run(&flows);
        assert_eq!(obs.runs.get(), 1);
        assert_eq!(obs.flows.get(), 10);
        assert_eq!(obs.cache_misses.get(), 1, "one distinct pair");
        assert_eq!(obs.cache_hits.get(), 9);
        assert_eq!(obs.events.get(), 10, "one hop per flow");
        assert_eq!(obs.unrouted.get(), 0);
        assert_eq!(obs.flow_bytes.count(), 10);
        assert_eq!(obs.timeline.len(), 10);
        // Nine flows queued behind the first; waits are multiples of the
        // 64-byte serialization time.
        assert_eq!(obs.queue_wait_ns.count(), 10);
        assert_eq!(obs.queue_occupancy.count(), 10, "one sample per event");
        assert!(obs.events_per_sec.get() > 0, "throughput gauge set");
        assert_eq!(out.stats.completed, 10);
    }

    #[test]
    fn targeted_invalidation_recomputes_on_next_index() {
        let mut cache = PathCache::new();
        let flows = [flow(0, 1, 64, 0), flow(1, 0, 64, 0)];
        Simulation::new(&Wire).with_cache(&mut cache).run(&flows);
        assert_eq!(cache.cached(0, 1), Some(Some(&[0usize][..])));
        assert_eq!(cache.invalidate_link(0), 1, "only 0→1 crosses link 0");
        assert_eq!(cache.cached(0, 1), None, "stale entries read as absent");
        assert_eq!(cache.cached(1, 0), Some(Some(&[1usize][..])));
        assert_eq!(
            cache.invalidate_node(0, &[0]),
            1,
            "only the still-fresh 1→0 entry is left to evict"
        );
        // A fresh run repopulates the stale slots in place.
        let again = Simulation::new(&Wire).with_cache(&mut cache).run(&flows);
        assert_eq!(again.stats.completed, 2);
        assert_eq!(cache.cached(0, 1), Some(Some(&[0usize][..])));
        assert_eq!(cache.len(), 2, "slots reused, not reallocated");
    }

    #[test]
    fn transient_failure_is_retried_and_delivered() {
        // Link 0 dies before the flow starts and recovers at t = 10 µs;
        // the default policy retries into the recovery window.
        let plan = FaultPlan::builder()
            .fail_link(0, 0)
            .recover_link(10_000, 0)
            .build(&Wire)
            .unwrap();
        let out = Simulation::new(&Wire)
            .with_faults(&plan)
            .detailed()
            .run(&[flow(0, 1, 1000, 5)]);
        let rec = out.records()[0];
        assert!(rec.retries >= 1, "at least one re-admission");
        assert!(!rec.abandoned);
        let end = rec.end_ns.expect("delivered after recovery");
        assert!(end >= 10_000 + 1100, "delivery after the link came back");
        assert_eq!(out.stats.completed, 1);
        assert_eq!(out.stats.total_retries, u64::from(rec.retries));
    }

    #[test]
    fn permanent_failure_abandons_after_budget() {
        let plan = FaultPlan::builder().fail_link(0, 0).build(&Wire).unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 100,
            max_backoff_ns: 1_000,
        };
        let out = Simulation::new(&Wire)
            .with_faults(&plan)
            .with_retry(policy)
            .detailed()
            .run(&[flow(0, 1, 1000, 5), flow(1, 0, 1000, 5)]);
        let dead = out.records()[0];
        assert!(dead.abandoned);
        assert_eq!(dead.end_ns, None);
        assert_eq!(dead.retries, 2, "attempts 2 and 3 were retries");
        let alive = out.records()[1];
        assert_eq!(alive.end_ns, Some(1105), "reverse direction unaffected");
        assert_eq!(out.stats.completed, 1);
        assert_eq!(out.stats.unrouted, 1);
        assert_eq!(out.stats.abandoned, 1);
    }

    #[test]
    fn node_failure_kills_incident_traffic() {
        let plan = FaultPlan::builder().fail_node(0, 0).build(&Wire).unwrap();
        let out = Simulation::new(&Wire)
            .with_faults(&plan)
            .with_retry(RetryPolicy {
                max_attempts: 2,
                base_backoff_ns: 10,
                max_backoff_ns: 10,
            })
            .detailed()
            .run(&[flow(0, 1, 100, 0), flow(1, 0, 100, 0)]);
        // Node 0 is down: it can neither send (0→1) nor receive (1→0).
        assert!(out.records()[0].abandoned);
        assert!(out.records()[1].abandoned, "a dead node cannot receive");
    }

    #[test]
    fn failed_link_blocks_new_admissions() {
        // The first flow claims the link at t = 0, before the failure at
        // t = 50, and sails through. The second admits at t = 60, finds
        // the link down, and retries into the recovery window.
        let obs = EngineObs::new();
        let plan = FaultPlan::builder()
            .fail_link(50, 0)
            .recover_link(5_000, 0)
            .build(&Wire)
            .unwrap();
        let out = Simulation::new(&Wire)
            .with_faults(&plan)
            .with_obs(&obs)
            .detailed()
            .run(&[flow(0, 1, 1000, 0), flow(0, 1, 1000, 60)]);
        assert_eq!(out.records()[0].end_ns, Some(1100), "first flow launched");
        let second = out.records()[1];
        assert!(second.retries >= 1);
        assert!(second.end_ns.unwrap() > 5_000);
        assert_eq!(obs.retries.get(), u64::from(second.retries));
        assert!(obs.faults.get() == 1 && obs.recoveries.get() == 1);
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let flows: Vec<Flow> = (0..30)
            .map(|i| flow(i % 2, (i + 1) % 2, 256 + i as u64, i as u64 * 11))
            .collect();
        let plain = Simulation::new(&Wire).detailed().run(&flows);
        let empty = FaultPlan::default();
        let with_plan = Simulation::new(&Wire)
            .with_faults(&empty)
            .detailed()
            .run(&flows);
        assert_eq!(plain, with_plan);
        assert!(with_plan.reprovisions.is_empty());
    }
}
