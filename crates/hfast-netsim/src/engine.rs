//! The discrete-event core: per-link FIFO serialization of flows.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fabric::Fabric;
use crate::stats::RunStats;
use crate::traffic::Flow;

/// One scheduled simulator event: a flow arriving at hop `hop` of its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_ns: u64,
    /// Tie-break so ordering is fully deterministic.
    seq: u64,
    flow: usize,
    hop: usize,
}

/// Per-flow simulation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Index into the input flow list.
    pub flow: usize,
    /// Injection time.
    pub start_ns: u64,
    /// Delivery time (`None` if the fabric had no route).
    pub end_ns: Option<u64>,
    /// Links traversed.
    pub hops: usize,
}

/// Simulates `flows` over `fabric` and aggregates statistics.
///
/// Model: virtual cut-through. The message *header* advances hop by hop,
/// paying each link's fixed latency and waiting where a link is busy; each
/// link stays occupied for the message's serialization time from the moment
/// the header enters it; the tail arrives one serialization time after the
/// header clears the last link. Uncontended end-to-end latency is therefore
/// `Σ latency + bytes/bandwidth` — pipelined, like real cut-through
/// networks — while shared links still contend FIFO.
pub fn simulate(fabric: &dyn Fabric, flows: &[Flow]) -> RunStats {
    let (stats, _records) = simulate_detailed(fabric, flows);
    stats
}

/// [`simulate`], additionally returning per-flow records.
pub fn simulate_detailed(fabric: &dyn Fabric, flows: &[Flow]) -> (RunStats, Vec<FlowRecord>) {
    let mut paths: Vec<Option<Vec<usize>>> = Vec::with_capacity(flows.len());
    for f in flows {
        assert!(f.src < fabric.nodes() && f.dst < fabric.nodes(), "flow endpoints in range");
        paths.push(fabric.path(f.src, f.dst));
    }

    let mut link_free_at: Vec<u64> = vec![0; fabric.link_count()];
    let mut link_busy_ns: Vec<u64> = vec![0; fabric.link_count()];
    let mut records: Vec<FlowRecord> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| FlowRecord {
            flow: i,
            start_ns: f.start_ns,
            end_ns: None,
            hops: paths[i].as_ref().map_or(0, Vec::len),
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, f) in flows.iter().enumerate() {
        if let Some(p) = &paths[i] {
            if p.is_empty() {
                records[i].end_ns = Some(f.start_ns); // self-delivery
                continue;
            }
            heap.push(Reverse(Event {
                time_ns: f.start_ns,
                seq,
                flow: i,
                hop: 0,
            }));
            seq += 1;
        }
    }

    while let Some(Reverse(ev)) = heap.pop() {
        let path = paths[ev.flow].as_ref().expect("queued flows have paths");
        let link_id = path[ev.hop];
        let spec = fabric.link(link_id);
        let bytes = flows[ev.flow].bytes;
        let start = ev.time_ns.max(link_free_at[link_id]);
        let serialization = spec.serialize_ns(bytes);
        link_free_at[link_id] = start + serialization;
        link_busy_ns[link_id] += serialization;
        // The header clears this link after the fixed latency; the tail
        // follows one serialization time behind.
        let header_out = start + spec.latency_ns;
        if ev.hop + 1 < path.len() {
            heap.push(Reverse(Event {
                time_ns: header_out,
                seq,
                flow: ev.flow,
                hop: ev.hop + 1,
            }));
            seq += 1;
        } else {
            records[ev.flow].end_ns = Some(header_out + serialization);
        }
    }

    let stats = RunStats::from_records(fabric, flows, &records, &link_busy_ns);
    (stats, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{LinkId, LinkSpec};

    /// Two nodes joined by one link each way.
    struct Wire;

    impl Fabric for Wire {
        fn name(&self) -> &str {
            "wire"
        }
        fn nodes(&self) -> usize {
            2
        }
        fn link_count(&self) -> usize {
            2
        }
        fn link(&self, _id: LinkId) -> LinkSpec {
            LinkSpec {
                latency_ns: 100,
                bandwidth: 1.0,
            }
        }
        fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
            if src == dst {
                Some(vec![])
            } else {
                Some(vec![src])
            }
        }
    }

    fn flow(src: usize, dst: usize, bytes: u64, start: u64) -> Flow {
        Flow {
            src,
            dst,
            bytes,
            start_ns: start,
        }
    }

    #[test]
    fn single_flow_latency_is_serialization_plus_latency() {
        let (stats, records) = simulate_detailed(&Wire, &[flow(0, 1, 1000, 0)]);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.max_latency_ns, 1100);
    }

    #[test]
    fn fifo_contention_serializes() {
        // Two flows on the same link: the second waits for the first's
        // serialization (not its latency).
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 0)];
        let (_, records) = simulate_detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(2100));
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let flows = [flow(0, 1, 1000, 0), flow(1, 0, 1000, 0)];
        let (_, records) = simulate_detailed(&Wire, &flows);
        assert_eq!(records[0].end_ns, Some(1100));
        assert_eq!(records[1].end_ns, Some(1100));
    }

    #[test]
    fn self_flow_completes_instantly() {
        let (stats, records) = simulate_detailed(&Wire, &[flow(1, 1, 500, 42)]);
        assert_eq!(records[0].end_ns, Some(42));
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn start_times_are_respected() {
        let flows = [flow(0, 1, 1000, 0), flow(0, 1, 1000, 5000)];
        let (_, records) = simulate_detailed(&Wire, &flows);
        assert_eq!(records[1].end_ns, Some(6100), "no queueing after a gap");
    }

    #[test]
    fn deterministic_across_runs() {
        let flows: Vec<Flow> = (0..50)
            .map(|i| flow(i % 2, (i + 1) % 2, 100 + i as u64, i as u64 * 3))
            .collect();
        let (a, _) = simulate_detailed(&Wire, &flows);
        let (b, _) = simulate_detailed(&Wire, &flows);
        assert_eq!(a, b);
    }
}
